"""E20 (extension) — cost/turnaround trade-off with metered accounting.

"Users want to optimize factors such as application throughput,
turnaround time, or cost" (§1), and hosts may export "the amount charged
per CPU cycle consumed" (§3.1).  A priced market of hosts (fast ones cost
10x) runs the same bag of tasks under the cost-aware Scheduler at several
deadlines, with the Ledger auditing actual spend.  Shape claims: the
deadline knob trades money for makespan monotonically, and audited cost
equals the sum of (cycles consumed x advertised price) exactly.
"""

from conftest import run_once

from repro import Implementation, MachineSpec, Metasystem, ObjectClassRequest
from repro.accounting import CostAwareScheduler, Ledger
from repro.bench import ExperimentTable
from repro.workload import wait_for_completion

N_TASKS = 8
WORK = 200.0


def build():
    meta = Metasystem(seed=20)
    meta.add_domain("d")
    specs = [(1.0, 0.01)] * 4 + [(4.0, 0.10)] * 4
    for i, (speed, price) in enumerate(specs):
        meta.add_unix_host(f"h{i}", "d",
                           MachineSpec(arch="sparc", os_name="SunOS",
                                       speed=speed),
                           slots=4, price=price)
    meta.add_vault("d")
    app = meta.create_class("A", [Implementation("sparc", "SunOS")],
                            work_units=WORK)
    ledger = Ledger(clock=lambda: meta.now)
    ledger.attach_all(meta.hosts)
    return meta, app, ledger


def run_deadline(deadline):
    meta, app, ledger = build()
    sched = CostAwareScheduler(meta.collection, meta.enactor,
                               meta.transport, deadline=deadline,
                               rng=meta.rngs.stream("e20"))
    outcome = sched.run([ObjectClassRequest(app, N_TASKS)])
    assert outcome.ok
    n, last = wait_for_completion(meta, app, outcome.created)
    assert n == N_TASKS
    # audit: ledger total == sum over hosts of cycles x price
    expected = sum(cycles * meta.resolve(h).price
                   for h, cycles in ledger.cycles_by_host().items())
    assert abs(ledger.total - expected) < 1e-9
    return last, ledger.total


def run() -> ExperimentTable:
    table = ExperimentTable(
        f"E20 / §1 cost optimization — {N_TASKS} x {WORK:.0f}-unit tasks "
        f"on a priced market (slow 0.01/cycle, 4x-fast 0.10/cycle)",
        ["deadline (s)", "makespan (s)", "audited cost"])
    rows = []
    for deadline in (1e9, 450.0, 120.0):
        makespan, cost = run_deadline(deadline)
        label = "unbounded" if deadline >= 1e9 else deadline
        table.add(label, makespan, cost)
        rows.append((deadline, makespan, cost))
    table._rows = rows
    return table


def test_e20_cost(benchmark):
    table = run_once(benchmark, run)
    table.print()
    rows = table._rows
    costs = [c for _d, _m, c in rows]
    makespans = [m for _d, m, _c in rows]
    # tighter deadlines cost more and finish sooner
    assert costs[0] < costs[-1]
    assert makespans[0] > makespans[-1]
    # cheapest run pays the all-slow price exactly
    assert costs[0] == ((N_TASKS * WORK * 0.01) if True else None)
