"""E18 (ablations) — the substrate design decisions DESIGN.md section 4
calls out.

(a) **Information staleness**: sweep the hosts' reassessment interval; the
    staler the Collection, the more the Enactor leans on variants and the
    lower first-try success gets — quantifying why the master/variant
    machinery exists at all.
(b) **Wide-area latency**: scale the inter-domain latency distribution and
    measure end-to-end scheduling latency; protocol cost must track the
    network, not Python overheads.
"""

from conftest import run_once

from repro import Implementation, MachineSpec, Metasystem, ObjectClassRequest
from repro.bench import ExperimentTable
from repro.hosts import LoadWalk
from repro.net.latency import MetasystemLatencyModel
from repro.sim.distributions import Clipped, LogNormal
from repro.workload import implementations_for_all_platforms, multi_domain


def staleness_ablation() -> ExperimentTable:
    table = ExperimentTable(
        "E18a — reassessment interval vs placement behaviour "
        "(12 rounds x 3 instances)",
        ["reassess interval (s)", "first-try success",
         "variant attempts", "mean record age (s)"])
    from repro.scheduler import LoadAwareScheduler
    rows = []
    for interval in (10.0, 60.0, 300.0):
        meta = Metasystem(seed=18, reassess_interval=interval)
        meta.add_domain("d")
        for i in range(6):
            meta.add_unix_host(
                f"h{i}", "d", MachineSpec(arch="sparc", os_name="SunOS"),
                slots=2)
        meta.add_vault("d")
        app = meta.create_class("A", [Implementation("sparc", "SunOS")],
                                work_units=400.0)
        # load-aware filters on $host_slots_free — exactly the attribute
        # that goes stale between reassessments
        sched = LoadAwareScheduler(meta.collection, meta.enactor,
                                   meta.transport, n_variants=3,
                                   rng=meta.rngs.stream("e18"))
        sched.sched_try_limit = 1
        sched.enact_try_limit = 1
        first_try = 0
        rounds = 12
        ages = []
        for _ in range(rounds):
            meta.advance(97.0)
            ages.append(meta.collection.mean_staleness())
            outcome = sched.run([ObjectClassRequest(app, 3)],
                                reservation_duration=120.0)
            if outcome.ok:
                first_try += 1
        mean_age = sum(ages) / len(ages)
        rows.append((interval, first_try / rounds,
                     sched.enactor.stats.variant_attempts, mean_age))
        table.add(interval, first_try / rounds,
                  sched.enactor.stats.variant_attempts, mean_age)
    table._rows = rows
    return table


def latency_ablation() -> ExperimentTable:
    table = ExperimentTable(
        "E18b — inter-domain latency scale vs scheduling latency",
        ["latency scale", "virtual scheduling latency (s)"])
    rows = []
    for scale in (1.0, 4.0, 16.0):
        meta = multi_domain(n_domains=3, hosts_per_domain=4, seed=18,
                            dynamics=False)
        base = MetasystemLatencyModel(meta.topology)
        meta.latency_model = MetasystemLatencyModel(
            meta.topology,
            inter=Clipped(LogNormal(mu=-3.7, sigma=0.5), low=5e-3,
                          high=2.0 * scale))
        # scale the median by shifting mu: ln(scale) added
        import math
        meta.latency_model.inter = Clipped(
            LogNormal(mu=-3.7 + math.log(scale), sigma=0.5),
            low=5e-3 * scale, high=2.0 * scale)
        meta.transport.latency_model = meta.latency_model
        meta.place_enactor("dom0")
        meta.place_collection("dom0")
        app = meta.create_class("A", implementations_for_all_platforms(),
                                work_units=10.0)
        sched = meta.make_scheduler("irs", n_schedules=3)
        outcome = sched.run([ObjectClassRequest(app, 6)])
        assert outcome.ok
        rows.append((scale, outcome.elapsed))
        table.add(scale, outcome.elapsed)
    table._rows = rows
    return table


def run():
    return staleness_ablation(), latency_ablation()


def test_e18_ablations(benchmark):
    a, b = run_once(benchmark, run)
    a.print()
    b.print()
    stale_rows = a._rows
    # staler information -> lower first-try success, more variant work
    assert stale_rows[0][1] > stale_rows[-1][1]
    assert stale_rows[0][2] <= stale_rows[-1][2]
    assert stale_rows[0][3] < stale_rows[-1][3]  # record age grows
    lat_rows = b._rows
    # protocol latency tracks the network scale monotonically
    assert lat_rows[0][1] < lat_rows[1][1] < lat_rows[2][1]
