"""E11 — the section-6 promised benchmark: "measure the improvement in
performance as we develop more intelligent Schedulers."

The section-4.3 ocean-simulation workload (4x6 stencil grid) runs under
the whole Scheduler ladder — Random, round-robin, IRS, load-aware, and the
stencil-aware specialist — on the same three-domain testbed.  Shape
claims: smarter placement lowers makespan; the application-specific
Scheduler wins on its own workload class (the paper's entire thesis for
building the substrate).
"""

from conftest import run_once

from repro.bench import ExperimentTable
from repro.scheduler import StencilScheduler
from repro.workload import StencilApplication, multi_domain

ROWS, COLS = 4, 6
ITERS = 40


def run_one(label, factory):
    meta = multi_domain(n_domains=3, hosts_per_domain=10, seed=11,
                        dynamics=False)
    # uneven background load so load awareness matters
    for i, host in enumerate(meta.hosts):
        host.machine.set_background_load(1.0 if i % 3 == 0 else 0.1)
        host.reassess()
    app = StencilApplication(meta, f"ocean-{label}", rows=ROWS, cols=COLS,
                             iterations=ITERS, work_per_iter=2.0,
                             comm_penalty_per_unit=0.20)
    report = app.run(factory(meta))
    return report


def run() -> ExperimentTable:
    table = ExperimentTable(
        f"E11 / section 6 — scheduler ladder on the {ROWS}x{COLS} "
        f"ocean stencil",
        ["scheduler", "ok", "comm cost/iter", "makespan (s)",
         "sched latency (s)"])
    makespans = {}
    ladder = [
        ("random", lambda m: m.make_scheduler("random")),
        ("round-robin", lambda m: m.make_scheduler("round-robin")),
        ("irs", lambda m: m.make_scheduler("irs", n_schedules=4)),
        ("load-aware", lambda m: m.make_scheduler("load")),
        ("mct", lambda m: m.make_scheduler("mct")),
        ("stencil-aware", lambda m: StencilScheduler(
            m.collection, m.enactor, m.transport, rows=ROWS, cols=COLS,
            instances_per_host=1)),
    ]
    for label, factory in ladder:
        report = run_one(label, factory)
        table.add(label, report.ok,
                  report.metrics.get("comm_cost_per_iter", float("nan")),
                  report.makespan, report.scheduling_time)
        makespans[label] = report.makespan
    table._makespans = makespans
    return table


def test_e11_smart_schedulers(benchmark):
    table = run_once(benchmark, run)
    table.print()
    m = table._makespans
    # the specialist wins on its own workload
    assert m["stencil-aware"] == min(m.values())
    # and beats random by a meaningful factor
    assert m["random"] / m["stencil-aware"] > 1.2
