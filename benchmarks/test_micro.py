"""Micro-benchmarks of the substrate hot paths (pytest-benchmark proper:
many iterations, statistical timing).

These guard the simulator's scalability: experiments routinely push
hundreds of thousands of kernel events and tens of thousands of queries.
"""

import pytest

from repro.collection import Collection
from repro.collection.query import evaluate, matches, parse
from repro.hosts import REUSABLE_TIME, ReservationTable
from repro.naming import LOID, LOIDMinter
from repro.sim import Simulator


HOST = LOID(("d", "host", "h"))
VAULT = LOID(("d", "vault", "v"))
CLASS = LOID(("d", "class", "C"))


class TestKernelMicro:
    def test_event_dispatch_throughput(self, benchmark):
        def run_events():
            sim = Simulator()
            for i in range(10_000):
                sim.schedule(float(i % 100), lambda: None)
            sim.run()
            return sim.events_processed

        processed = benchmark(run_events)
        assert processed == 10_000

    def test_process_switch_throughput(self, benchmark):
        def run_processes():
            sim = Simulator()

            def body():
                for _ in range(100):
                    yield 1.0

            for _ in range(20):
                sim.process(body())
            sim.run()
            return sim.events_processed

        benchmark(run_processes)


class TestQueryMicro:
    QUERY = ('($host_arch == "sparc" and $host_os_name == "SunOS") '
             'or match("IRIX", $host_os_name) and $host_load < 2.5')
    RECORD = {"host_arch": "sparc", "host_os_name": "SunOS",
              "host_load": 1.0}

    def test_parse(self, benchmark):
        node = benchmark(parse, self.QUERY)
        assert node is not None

    def test_evaluate(self, benchmark):
        node = parse(self.QUERY)
        result = benchmark(matches, node, self.RECORD)
        assert result is True

    def test_collection_query_1000_records(self, benchmark):
        coll = Collection(LOID(("d", "svc", "c")), require_auth=False)
        for i in range(1000):
            coll.join(LOID(("d", "host", f"h{i}")), {
                "host_arch": "sparc" if i % 2 else "mips",
                "host_os_name": "SunOS" if i % 2 else "IRIX 5.3",
                "host_load": float(i % 5),
            })
        result = benchmark(coll.query, self.QUERY)
        assert len(result) > 0


class TestReservationMicro:
    def test_grant_check_cancel_cycle(self, benchmark):
        table = ReservationTable(HOST, b"secret", slots=64)

        def cycle():
            tok = table.make_reservation(VAULT, CLASS, REUSABLE_TIME,
                                         now=0.0)
            assert table.check_reservation(tok, now=0.0)
            table.cancel_reservation(tok, now=0.0)

        benchmark(cycle)

    def test_token_signature_verify(self, benchmark):
        table = ReservationTable(HOST, b"secret", slots=4)
        tok = table.make_reservation(VAULT, CLASS, REUSABLE_TIME, now=0.0)
        ok = benchmark(tok.verify, b"secret")
        assert ok


class TestNamingMicro:
    def test_loid_parse(self, benchmark):
        text = "loid:legion.class.Ocean.i42"
        loid = benchmark(LOID.parse, text)
        assert str(loid) == text

    def test_instance_minting(self, benchmark):
        minter = LOIDMinter()
        cls = minter.mint("class", "C")
        loid = benchmark(minter.mint_instance, cls)
        assert loid.is_descendant_of(cls)
