"""E9 — Fig. 7: the Random Scheduling Policy characterized.

The paper positions Random as the "90% solution": adequate, simple, and
easily outperformed.  We measure exactly that: placement success rate and
resulting makespan versus system size and background load, plus its
scheduling overhead (Collection queries, virtual latency).
"""

from conftest import run_once

from repro import ObjectClassRequest
from repro.bench import ExperimentTable
from repro.workload import (
    BagOfTasks,
    TestbedSpec,
    build_testbed,
)

N_TASKS = 8
ROUNDS = 5


def run_config(n_hosts, load_mean):
    successes, makespans, queries, latency = 0, [], 0, 0.0
    for round_seed in range(ROUNDS):
        meta = build_testbed(TestbedSpec(
            n_domains=1, hosts_per_domain=n_hosts, platform_mix=2,
            background_load_mean=load_mean, seed=90 + round_seed,
            host_slots=3))
        app = BagOfTasks(meta, "bag", n_tasks=N_TASKS, work_units=120.0)
        sched = meta.make_scheduler("random")
        report = app.run(sched)
        if report.ok and report.completed == N_TASKS:
            successes += 1
            makespans.append(report.makespan)
        queries += report.collection_queries
        latency += report.scheduling_time
    mean_makespan = (sum(makespans) / len(makespans)
                     if makespans else float("nan"))
    return {
        "success": successes / ROUNDS,
        "makespan": mean_makespan,
        "queries": queries / ROUNDS,
        "latency": latency / ROUNDS,
    }


def run() -> ExperimentTable:
    table = ExperimentTable(
        f"E9 / Fig. 7 — Random Scheduler, {N_TASKS} tasks x "
        f"{ROUNDS} rounds",
        ["hosts", "bg load", "success rate", "mean makespan (s)",
         "queries/run", "sched latency (s)"])
    results = {}
    for n_hosts in (4, 8, 16):
        for load in (0.0, 1.5):
            r = run_config(n_hosts, load)
            table.add(n_hosts, load, r["success"], r["makespan"],
                      r["queries"], r["latency"])
            results[(n_hosts, load)] = r
    table._results = results
    return table


def test_e09_random(benchmark):
    table = run_once(benchmark, run)
    table.print()
    r = table._results
    # more hosts -> shorter makespan at equal load (more parallelism)
    assert r[(16, 0.0)]["makespan"] < r[(4, 0.0)]["makespan"]
    # background load lengthens makespan
    assert r[(8, 1.5)]["makespan"] > r[(8, 0.0)]["makespan"]
    # random always found a placement on an unloaded system
    assert r[(16, 0.0)]["success"] == 1.0
