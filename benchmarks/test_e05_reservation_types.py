"""E5 — Table 2: behaviour of the four Legion reservation types.

A contention workload — a stream of reservation requests with overlapping
one-hour windows against a 4-slot host — is run under each (share, reuse)
combination.  Shape claims straight from the semantics:

* unshared (space-sharing) types admit exactly one overlapping reservation;
  shared (timesharing) types admit up to the slot count;
* reusable tokens admit multiple StartObject presentations, one-shot
  tokens exactly one.
"""

from conftest import run_once

from repro import Implementation, MachineSpec, Metasystem
from repro.bench import ExperimentTable
from repro.errors import InvalidReservationError, ReservationDeniedError
from repro.hosts import ALL_TYPES
from repro.objects import LegionObject

N_REQUESTS = 24


def run() -> ExperimentTable:
    table = ExperimentTable(
        f"E5 / Table 2 — reservation types under contention "
        f"({N_REQUESTS} overlapping requests, 4-slot host)",
        ["type", "share", "reuse", "granted", "denied",
         "redeems/token"])
    results = {}
    for rtype in ALL_TYPES:
        meta = Metasystem(seed=5)
        meta.add_domain("d")
        host = meta.add_unix_host(
            "h0", "d", MachineSpec(arch="sparc", os_name="SunOS"),
            slots=4)
        vault = meta.add_vault("d")
        app = meta.create_class(f"A-{rtype.name.replace(' ', '-')}",
                                [Implementation("sparc", "SunOS")])
        granted = []
        denied = 0
        for _ in range(N_REQUESTS):
            try:
                granted.append(host.make_reservation(
                    vault.loid, app.loid, rtype=rtype, duration=3600.0))
            except ReservationDeniedError:
                denied += 1
        # how many StartObject presentations does one token admit?
        redeems = 0
        if granted:
            tok = granted[0]
            for _ in range(3):
                try:
                    host.reservations.redeem(tok, now=meta.now)
                    redeems += 1
                except InvalidReservationError:
                    break
        table.add(rtype.name, int(rtype.share), int(rtype.reuse),
                  len(granted), denied, redeems)
        results[(rtype.share, rtype.reuse)] = (len(granted), redeems)
    table._results = results
    return table


def test_e05_reservation_types(benchmark):
    table = run_once(benchmark, run)
    table.print()
    r = table._results
    # space sharing admits exactly 1 overlapping grant; timesharing: slots
    assert r[(False, False)][0] == 1
    assert r[(False, True)][0] == 1
    assert r[(True, False)][0] == 4
    assert r[(True, True)][0] == 4
    # reuse bit governs redeem count
    assert r[(False, False)][1] == 1
    assert r[(True, False)][1] == 1
    assert r[(False, True)][1] == 3
    assert r[(True, True)][1] == 3
