"""E2 — Fig. 2: the four resource-management layering schemes.

The same placement workload runs through layerings (a)-(d); we report the
message count and virtual latency each costs.  Shape claims: (a) direct
probing costs O(hosts) messages; (b)-(d) replace probing with one
Collection query; each additional separated layer adds hops (and latency)
but none changes what gets placed.
"""

from conftest import run_once

from repro import Implementation, MachineSpec, Metasystem, ObjectClassRequest
from repro.bench import ExperimentTable
from repro.scheduler import (
    AppDoesItAll,
    AppWithRMServices,
    CombinedSchedulerRM,
    SeparateLayers,
)

N_HOSTS = 16
N_INSTANCES = 4


def build():
    meta = Metasystem(seed=2)
    meta.add_domain("d")
    for i in range(N_HOSTS):
        meta.add_unix_host(f"h{i}", "d",
                           MachineSpec(arch="sparc", os_name="SunOS"),
                           slots=8)
    meta.add_vault("d")
    meta.place_collection("d")
    meta.place_enactor("d")
    app = meta.create_class("App", [Implementation("sparc", "SunOS")],
                            work_units=10.0)
    return meta, app


def run() -> ExperimentTable:
    table = ExperimentTable(
        f"E2 / Fig. 2 — layering cost, {N_INSTANCES} instances on "
        f"{N_HOSTS} hosts",
        ["layering", "ok", "messages", "virtual latency (s)"])
    results = {}
    for label, make in [
        ("(a) app does it all", lambda meta, app: AppDoesItAll(
            meta.transport, meta.hosts, rng=meta.rngs.stream("e2", "a"))),
        ("(b) app + RM services", lambda meta, app: AppWithRMServices(
            meta.transport, meta.collection, meta.enactor,
            rng=meta.rngs.stream("e2", "b"))),
        ("(c) combined module", lambda meta, app: CombinedSchedulerRM(
            meta.transport, meta.make_scheduler("random"),
            module_location=meta.topology.add_node("d", "combined-svc"))),
        ("(d) separate layers", lambda meta, app: SeparateLayers(
            meta.transport, meta.make_scheduler("irs"),
            scheduler_location=meta.topology.add_node("d", "sched-svc"),
            enactor_location=meta.enactor.location)),
    ]:
        meta, app = build()
        strategy = make(meta, app)
        outcome = strategy.place([ObjectClassRequest(app, N_INSTANCES)])
        table.add(label, outcome.ok, outcome.messages, outcome.elapsed)
        results[label[:3]] = outcome
    table._results = results  # for assertions
    return table


def test_e02_layering(benchmark):
    table = run_once(benchmark, run)
    table.print()
    r = table._results
    assert all(o.ok for o in r.values())
    # (a) probes every host: strictly more messages than (b)
    assert r["(a)"].messages > r["(b)"].messages
    # every layering placed the same number of objects
    counts = {len(o.created) for o in r.values()}
    assert counts == {4}
