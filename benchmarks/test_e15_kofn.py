"""E15 — section 3.3 future work: "k out of n" scheduling.

The Scheduler names an equivalence class of n interchangeable (Host, Vault)
pairs and asks the Enactor to start k instances.  We compare it against
exact placement (reserve exactly the k hosts you picked) in a metasystem
where a random subset of hosts is *down* and the Collection hasn't noticed
yet — the wide-area reality the mechanism exists for.

Shape claims: as the dead fraction rises, exact placement's first-try
success collapses combinatorially while k-of-n's survives (any k of n live
hosts suffice); k-of-n never starts more than k instances.
"""

from conftest import run_once

from repro import Implementation, MachineSpec, Metasystem, ObjectClassRequest
from repro.bench import ExperimentTable

N_HOSTS = 16
K = 4
TRIALS = 10


def build(seed, dead_fraction):
    meta = Metasystem(seed=seed)
    meta.add_domain("d")
    for i in range(N_HOSTS):
        meta.add_unix_host(f"h{i}", "d",
                           MachineSpec(arch="sparc", os_name="SunOS"),
                           slots=4)
    meta.add_vault("d")
    app = meta.create_class("A", [Implementation("sparc", "SunOS")],
                            work_units=10.0)
    # kill hosts *after* they joined the Collection: records are stale
    rng = meta.rngs.stream("e15", "deaths")
    n_dead = int(round(dead_fraction * N_HOSTS))
    dead = rng.permutation(N_HOSTS)[:n_dead]
    for i in dead:
        meta.hosts[int(i)].machine.fail()
        meta.topology.set_node_down(meta.hosts[int(i)].location)
    return meta, app


def first_try_success(kind, dead_fraction):
    wins, started = 0, []
    for trial in range(TRIALS):
        meta, app = build(seed=1500 + trial, dead_fraction=dead_fraction)
        if kind == "kofn":
            sched = meta.make_scheduler("kofn", overprovision=3.0)
        else:
            sched = meta.make_scheduler("random")
        sched.sched_try_limit = 1   # first try only — isolate the mechanism
        sched.enact_try_limit = 1
        outcome = sched.run([ObjectClassRequest(app, K)])
        if outcome.ok:
            wins += 1
            started.append(len(outcome.created))
    if started:
        assert all(s == K for s in started), "k-of-n must start exactly k"
    return wins / TRIALS


def run() -> ExperimentTable:
    table = ExperimentTable(
        f"E15 / section 3.3 — k-of-n vs exact placement, k={K}, "
        f"n=3k, first-try success over {TRIALS} trials",
        ["dead fraction", "exact placement", "k-of-n"])
    results = {}
    for dead in (0.0, 0.25, 0.5):
        exact = first_try_success("exact", dead)
        kofn = first_try_success("kofn", dead)
        table.add(dead, exact, kofn)
        results[dead] = (exact, kofn)
    table._results = results
    return table


def test_e15_kofn(benchmark):
    table = run_once(benchmark, run)
    table.print()
    r = table._results
    # with no failures both succeed
    assert r[0.0][0] == 1.0 and r[0.0][1] == 1.0
    # under heavy failure, k-of-n dominates exact placement
    assert r[0.5][1] > r[0.5][0]
    # k-of-n is monotonically at least as good at every level
    for dead, (exact, kofn) in r.items():
        assert kofn >= exact, dead
