"""E16 (extension) — section 6 future work: Network Objects.

"We are developing Network Objects to manage communications resources."

A 4-stage cross-domain pipeline (consecutive stages exchange a steady
byte stream) is placed by the plain load-aware Scheduler and by the
bandwidth-aware Scheduler that consults guarded inter-domain links.
Metrics: the communication penalty of the chosen placement (demand over
available link bandwidth) and the admission discipline of the links
themselves (reservations never oversubscribe capacity).
"""

from conftest import run_once

from repro import ObjectClassRequest
from repro.bench import ExperimentTable
from repro.network_objects import (
    BandwidthAwareScheduler,
    LinkRegistry,
    NetworkObject,
)
from repro.scheduler import LoadAwareScheduler
from repro.workload import implementations_for_all_platforms, multi_domain

STAGES = 4
TRAFFIC = 4.0e4  # bytes/second between consecutive stages


def build(seed):
    meta = multi_domain(n_domains=3, hosts_per_domain=6, seed=seed,
                        dynamics=False)
    reg = LinkRegistry()
    domains = [d.name for d in meta.topology.domains()]
    for i, da in enumerate(domains):
        for db in domains[i + 1:]:
            reg.add(NetworkObject(
                meta.minter.mint("svc", f"link-{da}-{db}"), da, db,
                capacity=1.0e5))
    # congest one link so placement-time awareness matters
    hot = reg.between("dom0", "dom1")
    hot.reserve_bandwidth(0.9e5, now=0.0, duration=1e9)
    app = meta.create_class("Pipe", implementations_for_all_platforms(),
                            work_units=50.0)
    host_domains = {h.loid: h.domain for h in meta.hosts}
    return meta, reg, app, host_domains


def run() -> ExperimentTable:
    table = ExperimentTable(
        f"E16 / section 6 ext. — bandwidth-aware placement of a "
        f"{STAGES}-stage pipeline ({TRAFFIC:.0f} B/s per edge)",
        ["scheduler", "ok", "comm penalty", "bandwidth reserved (B/s)"])
    results = {}

    # plain load-aware (bandwidth-blind)
    meta, reg, app, host_domains = build(16)
    blind = LoadAwareScheduler(meta.collection, meta.enactor,
                               meta.transport, n_variants=4,
                               rng=meta.rngs.stream("e16", "blind"))
    aware_eval = BandwidthAwareScheduler(
        meta.collection, meta.enactor, meta.transport, links=reg,
        host_domains=host_domains, pair_traffic=TRAFFIC)
    outcome = blind.run([ObjectClassRequest(app, STAGES)])
    blind_penalty = aware_eval.comm_penalty(
        outcome.feedback.reserved_entries, meta.now) if outcome.ok else \
        float("nan")
    table.add("load-aware (bandwidth-blind)", outcome.ok, blind_penalty, 0)
    results["blind"] = blind_penalty

    # bandwidth-aware with link co-allocation
    meta, reg, app, host_domains = build(16)
    hot = reg.between("dom0", "dom1")
    aware = BandwidthAwareScheduler(
        meta.collection, meta.enactor, meta.transport, links=reg,
        host_domains=host_domains, pair_traffic=TRAFFIC, n_variants=4,
        rng=meta.rngs.stream("e16", "aware"))
    outcome = aware.run([ObjectClassRequest(app, STAGES)])
    aware_penalty = aware.comm_penalty(
        outcome.feedback.reserved_entries, meta.now) if outcome.ok else \
        float("nan")
    reserved = 0.0
    if outcome.ok:
        plan = aware.allocate_bandwidth(outcome.feedback.reserved_entries,
                                        duration=600.0)
        reserved = sum(t.bandwidth for t in plan.tokens)
        # admission invariant: no link oversubscribed
        for link in reg.all_links():
            assert link.allocated_at(meta.now) <= link.capacity + 1e-6
    table.add("bandwidth-aware + link co-allocation", outcome.ok,
              aware_penalty, reserved)
    results["aware"] = aware_penalty
    table._results = results
    return table


def test_e16_network_objects(benchmark):
    table = run_once(benchmark, run)
    table.print()
    r = table._results
    # consulting Network Objects yields placements with no more
    # communication pressure than bandwidth-blind ones
    assert r["aware"] <= r["blind"]
