"""E19 (extension) — metasystem scale: towards "thousands of hosts".

Legion's stated ambition was thousands-to-millions of hosts.  Two scaling
measurements on the information path that gates every placement:

(a) **Collection query cost** vs member count, linear scan (the faithful
    1999 Collection) against :class:`IndexedCollection` — the index keeps
    selective-equality queries flat while the scan grows linearly;
(b) **end-to-end scheduling latency** (compute + reserve + enact) vs
    system size with the indexed Collection — placement cost must stay
    sub-linear in total hosts for fixed request sizes.
"""

import time

from conftest import run_once

from repro import Implementation, MachineSpec, Metasystem, ObjectClassRequest
from repro.bench import ExperimentTable
from repro.collection import Collection, IndexedCollection
from repro.naming import LOID

# a realistic big-system query is *selective*: platform plus the user's
# home site (of which a large metasystem has many)
QUERY = ('$host_arch == "sparc" and $site == "site4" '
         'and $host_up == true and $host_load < 2')


def _fill(coll, n):
    coll.require_auth = False
    archs = [("sparc", "SunOS"), ("mips", "IRIX"), ("x86", "Linux"),
             ("alpha", "OSF1")]
    for i in range(n):
        arch, os_name = archs[i % 4]
        coll.join(LOID(("d", "host", f"h{i}")), {
            "host_arch": arch, "host_os_name": os_name,
            "site": f"site{i % 64}",
            "host_up": True, "host_load": float(i % 4),
        })


def query_scaling() -> ExperimentTable:
    table = ExperimentTable(
        "E19a — query cost vs members: scan vs indexed (wall us/query)",
        ["members", "matching", "scan", "indexed", "speedup"])
    rows = []
    for n in (256, 1024, 4096):
        scan = Collection(LOID(("d", "svc", f"s{n}")))
        idx = IndexedCollection(LOID(("d", "svc", f"i{n}")))
        _fill(scan, n)
        _fill(idx, n)
        matching = len(scan.query(QUERY))
        assert matching == len(idx.query(QUERY))

        def cost(coll, reps=20):
            t0 = time.perf_counter()
            for _ in range(reps):
                coll.query(QUERY)
            return (time.perf_counter() - t0) / reps * 1e6

        scan_us, idx_us = cost(scan), cost(idx)
        table.add(n, matching, scan_us, idx_us, scan_us / idx_us)
        rows.append((n, scan_us, idx_us))
    table._rows = rows
    return table


def scheduling_scaling() -> ExperimentTable:
    table = ExperimentTable(
        "E19b — end-to-end placement latency vs system size "
        "(8 instances, indexed Collection, wall ms)",
        ["hosts", "wall ms/placement", "virtual s"])
    rows = []
    for n in (64, 256, 1024):
        meta = Metasystem(seed=19)
        # swap in the indexed Collection before any host joins
        meta.collection = IndexedCollection(
            meta.minter.mint("svc", "indexed-collection"),
            clock=lambda m=meta: m.sim.now)
        meta._register(meta.collection)
        meta.add_domain("d")
        for i in range(n):
            meta.add_unix_host(f"h{i}", "d",
                               MachineSpec(arch="sparc",
                                           os_name="SunOS"),
                               slots=4, push_to_collection=True)
        meta.add_vault("d")
        app = meta.create_class("A", [Implementation("sparc", "SunOS")],
                                work_units=10.0)
        sched = meta.make_scheduler("irs", n_schedules=3)
        t0 = time.perf_counter()
        v0 = meta.now
        outcome = sched.run([ObjectClassRequest(app, 8)])
        wall_ms = (time.perf_counter() - t0) * 1e3
        assert outcome.ok
        table.add(n, wall_ms, meta.now - v0)
        rows.append((n, wall_ms))
    table._rows = rows
    return table


def run():
    return query_scaling(), scheduling_scaling()


def test_e19_scale(benchmark):
    a, b = run_once(benchmark, run)
    a.print()
    b.print()
    # the index wins decisively at every scale (avoid asserting on exact
    # wall-clock ratios, which jitter)
    rows = a._rows
    for _n, scan_us, idx_us in rows:
        assert idx_us < scan_us / 5.0
    # 1024-host placements complete in interactive wall time
    assert b._rows[-1][1] < 5000.0
