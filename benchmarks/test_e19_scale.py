"""E19 (extension) — metasystem scale: towards "thousands of hosts".

Legion's stated ambition was thousands-to-millions of hosts.  Both
measurements now run through the :mod:`repro.bench.scale` harness — the
same code that regenerates the committed ``BENCH_scale.json`` ledger and
backs the CI ``scale-smoke`` job — so the experiment tables here and the
ledger can never drift apart.  All wall-clock timing inside the harness
uses the monotonic :func:`time.perf_counter`.

(a) **Query engine cost** vs member count: the tree-walking evaluator
    against the compiled closure plan and the inverted-index Collection
    on the selective E19a query — compiled keeps per-record cost flat
    and the index keeps per-query cost flat;
(b) **placement waves** vs system size: seeded testbeds run the ledger's
    fixed wave sequence; placement cost must stay sub-linear in total
    hosts for fixed request sizes, and the viable-hosts cache must
    absorb the burst lookups.
"""

from dataclasses import asdict

from conftest import run_once

from repro.bench import ExperimentTable
from repro.bench.scale import (
    placement_table,
    run_placement_scale,
    run_query_engines,
)


def query_scaling() -> ExperimentTable:
    table = ExperimentTable(
        "E19a — query cost vs members: tree-walk vs compiled vs indexed "
        "(wall us/query)",
        ["members", "matching", "tree-walk", "compiled", "indexed",
         "compiled x", "indexed x"])
    rows = []
    for n in (256, 1024, 4096):
        bench = run_query_engines(members=n, reps=20)
        table.add(n, bench.matching, bench.treewalk_us,
                  bench.compiled_us, bench.indexed_us,
                  bench.compiled_speedup, bench.indexed_speedup)
        rows.append(bench)
    table._rows = rows
    return table


def scheduling_scaling() -> ExperimentTable:
    points = [asdict(p) for p in
              run_placement_scale(sizes=(64, 256, 1024), seed=19)]
    table = placement_table(points)
    table._rows = points
    return table


def run():
    return query_scaling(), scheduling_scaling()


def test_e19_scale(benchmark):
    a, b = run_once(benchmark, run)
    a.print()
    b.print()
    # engine ordering holds at every scale (avoid asserting on exact
    # wall-clock ratios, which jitter; the CI smoke job owns the
    # regression tolerance against the committed ledger)
    for bench in a._rows:
        assert bench.compiled_us < bench.treewalk_us
        assert bench.indexed_us < bench.treewalk_us / 5.0
    # the acceptance floor: compiled is decisively faster at 4096 members
    assert a._rows[-1].compiled_speedup >= 2.0
    for point in b._rows:
        # every wave placed, and the burst lookups ran on the cache
        assert point["placements"] == point["waves"] * 2
        assert point["viable_cache_hits"] >= point["waves"]
        # 1024-host placements complete in interactive wall time
        assert point["wall_s"] < 5.0
