"""E4 — Table 1: the Host Object resource-management interface.

Micro-costs of each interface group (reservation management, process
management, information reporting) in wall-clock microseconds, plus the
reservation-table scaling behaviour (cost of admission checks as the table
grows).
"""

import time

from conftest import run_once

from repro import Implementation, MachineSpec, Metasystem
from repro.bench import ExperimentTable
from repro.hosts import REUSABLE_TIME
from repro.objects import LegionObject


def timed(fn, n=200):
    t0 = time.perf_counter()
    for _ in range(n):
        fn()
    return (time.perf_counter() - t0) / n * 1e6  # us/op


def run() -> ExperimentTable:
    meta = Metasystem(seed=4)
    meta.add_domain("d")
    host = meta.add_unix_host("h0", "d",
                              MachineSpec(arch="sparc", os_name="SunOS"),
                              slots=10_000)
    vault = meta.add_vault("d")
    app = meta.create_class("A", [Implementation("sparc", "SunOS")])

    table = ExperimentTable(
        "E4 / Table 1 — Host interface micro-costs (wall us/op)",
        ["group", "operation", "us/op"])

    # reservation management
    tokens = []

    def make():
        tokens.append(host.make_reservation(vault.loid, app.loid,
                                            rtype=REUSABLE_TIME))
    table.add("reservation", "make_reservation", timed(make))
    tok = tokens[0]
    table.add("reservation", "check_reservation",
              timed(lambda: host.check_reservation(tok)))
    cancel_iter = iter(tokens)
    table.add("reservation", "cancel_reservation",
              timed(lambda: host.cancel_reservation(next(cancel_iter)),
                    n=100))

    # process management
    instances = []

    def start():
        inst = LegionObject(meta.minter.mint_instance(app.loid), app.loid)
        inst.attributes.set("memory_mb", 0.001)
        host.start_object(inst, vault.loid)
        instances.append(inst)
    table.add("process", "startObject", timed(start, n=100))
    kill_iter = iter(list(instances))
    table.add("process", "killObject",
              timed(lambda: host.kill_object(next(kill_iter).loid), n=100))

    # information reporting
    table.add("information", "get_compatible_vaults",
              timed(host.get_compatible_vaults))
    table.add("information", "vault_OK",
              timed(lambda: host.vault_ok(vault.loid)))
    table.add("information", "reassess (attribute repopulation)",
              timed(host.reassess, n=50))

    # reservation-table scaling: admission cost vs live reservations
    scale = ExperimentTable(
        "E4b — reservation-table admission cost vs table size",
        ["live reservations", "us/make+cancel"])
    for target in (10, 100, 1000):
        big = meta.add_unix_host(f"big{target}", "d",
                                 MachineSpec(arch="sparc",
                                             os_name="SunOS"),
                                 slots=target + 10)
        big.add_compatible_vault(vault.loid)
        for _ in range(target):
            big.make_reservation(vault.loid, app.loid,
                                 rtype=REUSABLE_TIME)

        def cycle(h=big):
            t = h.make_reservation(vault.loid, app.loid,
                                   rtype=REUSABLE_TIME)
            h.cancel_reservation(t)
        scale.add(target, timed(cycle, n=50))
    table._scale = scale
    return table


def test_e04_host_interface(benchmark):
    table = run_once(benchmark, run)
    table.print()
    table._scale.print()
    costs = {r["operation"]: float(r["us/op"]) for r in table.as_dicts()}
    # every operation is cheap (well under a millisecond of wall time)
    for op, us in costs.items():
        if op != "reassess (attribute repopulation)":
            assert us < 2000.0, (op, us)
