"""E6 — Fig. 4: the Collection's information-service behaviour.

Two measurements:

* **query cost vs system size** — wall time for a typical viability query
  as the number of member hosts grows (the Collection is a linear scan
  over attribute records, like the 1999 implementation);
* **staleness vs update model** — mean record age under host-push (the
  default), Data-Collection-Daemon sweeps, and on-demand pull, with the
  hosts' periodic reassessment the underlying data source.
"""

import time

from conftest import run_once

from repro.bench import ExperimentTable
from repro.collection import Collection
from repro.naming import LOID
from repro.workload import TestbedSpec, build_testbed


def query_cost() -> ExperimentTable:
    table = ExperimentTable(
        "E6a — query wall cost vs Collection size",
        ["hosts", "matching", "us/query"])
    query = ('($host_arch == "sparc" and $host_os_name == "SunOS") '
             'and $host_up == true and $host_load < 2')
    for n in (32, 128, 512):
        coll = Collection(LOID(("d", "svc", f"c{n}")), require_auth=False)
        for i in range(n):
            coll.join(LOID(("d", "host", f"h{i}")), {
                "host_arch": "sparc" if i % 2 == 0 else "mips",
                "host_os_name": "SunOS" if i % 2 == 0 else "IRIX",
                "host_up": True,
                "host_load": float(i % 4),
            })
        matching = len(coll.query(query))
        t0 = time.perf_counter()
        reps = 50
        for _ in range(reps):
            coll.query(query)
        us = (time.perf_counter() - t0) / reps * 1e6
        table.add(n, matching, us)
    return table


def staleness() -> ExperimentTable:
    table = ExperimentTable(
        "E6b — mean record staleness (s) by update model, "
        "30s host reassessment",
        ["model", "interval (s)", "mean staleness (s)"])
    results = {}

    # host push (wired by default): staleness tracks reassess interval
    meta = build_testbed(TestbedSpec(n_domains=1, hosts_per_domain=16,
                                     background_load_mean=0.5, seed=6,
                                     reassess_interval=30.0))
    meta.advance(617.0)
    push_stale = meta.collection.mean_staleness()
    table.add("host push", 30.0, push_stale)
    results["push"] = push_stale

    # daemon sweeps at 140s: records age up to the sweep period
    meta = build_testbed(TestbedSpec(n_domains=1, hosts_per_domain=16,
                                     background_load_mean=0.5, seed=6,
                                     reassess_interval=30.0))
    for host in meta.hosts:
        host._push_targets.clear()
    daemon = meta.make_daemon(interval=140.0)
    daemon.start()
    meta.advance(617.0)
    daemon_stale = meta.collection.mean_staleness()
    table.add("daemon pull/push", 140.0, daemon_stale)
    results["daemon"] = daemon_stale

    # direct pull right before reading: fresh by construction
    meta = build_testbed(TestbedSpec(n_domains=1, hosts_per_domain=16,
                                     background_load_mean=0.5, seed=6,
                                     reassess_interval=30.0))
    meta.advance(617.0)
    for host in meta.hosts:
        meta.collection.pull_from(host)
    pull_stale = meta.collection.mean_staleness()
    table.add("pull at query time", 0.0, pull_stale)
    results["pull"] = pull_stale
    table._results = results
    return table


def run():
    a = query_cost()
    b = staleness()
    return a, b


def test_e06_collection(benchmark):
    a, b = run_once(benchmark, run)
    a.print()
    b.print()
    rows = a.as_dicts()
    # linear-ish scan: bigger collections cost more to query
    assert float(rows[-1]["us/query"]) > float(rows[0]["us/query"])
    r = b._results
    # freshness ordering: pull < push(30s) < daemon(120s)
    assert r["pull"] <= r["push"] <= r["daemon"]
