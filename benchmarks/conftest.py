"""Shared helpers for the experiment suite.

Each benchmark runs one experiment (deterministic seeds), prints its
ExperimentTable (visible with ``pytest benchmarks/ --benchmark-only -s`` or
in captured output on failure), and asserts the qualitative *shape* the
paper's design implies.  pytest-benchmark records the wall-clock cost of
each experiment; virtual-time results are in the tables.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
