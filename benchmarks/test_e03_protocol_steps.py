"""E3 — Fig. 3: per-step latency breakdown of the 13-step protocol.

One placement is driven through each protocol phase separately, measuring
the virtual time each phase consumes:

  step 1      Collection population (host pushes, amortized — reported as
              the cost of one full daemon sweep);
  steps 2-3   Scheduler queries class + Collection and computes mapping;
  steps 4-6   Enactor obtains reservations (parallel co-allocation);
  steps 7-11  confirmation + instantiation + result codes;
  steps 12-13 Monitor outcall + migration on overload.
"""

from conftest import run_once

from repro import ObjectClassRequest
from repro.bench import ExperimentTable
from repro.workload import implementations_for_all_platforms, multi_domain


def run() -> ExperimentTable:
    meta = multi_domain(n_domains=2, hosts_per_domain=8, seed=3,
                        dynamics=False)
    meta.place_collection("dom0")
    meta.place_enactor("dom0")
    app = meta.create_class("Proto", implementations_for_all_platforms(),
                            work_units=5000.0)
    table = ExperimentTable(
        "E3 / Fig. 3 — protocol step latency (virtual ms)",
        ["phase", "steps", "virtual ms"])

    # step 1: one daemon sweep repopulating the Collection
    daemon = meta.make_daemon(interval=60.0)
    t0 = meta.now
    daemon.sweep()
    table.add("populate Collection", "1", (meta.now - t0) * 1e3)

    # steps 2-3: schedule computation (class + Collection queries)
    sched = meta.make_scheduler("irs", n_schedules=3)
    t0 = meta.now
    request_list = sched.compute_schedule([ObjectClassRequest(app, 4)])
    compute_ms = (meta.now - t0) * 1e3
    table.add("compute mapping", "2-3", compute_ms)

    # steps 4-6: reservations
    t0 = meta.now
    feedback = meta.enactor.make_reservations(request_list)
    reserve_ms = (meta.now - t0) * 1e3
    table.add("obtain reservations", "4-6", reserve_ms)
    assert feedback.ok

    # steps 7-11: enactment
    t0 = meta.now
    result = meta.enactor.enact_schedule(feedback)
    enact_ms = (meta.now - t0) * 1e3
    table.add("instantiate + report", "7-11", enact_ms)
    assert result.ok

    # steps 12-13: overload -> outcall -> migration
    monitor = meta.make_monitor(min_load_advantage=0.5)
    monitor.watch_all(meta.hosts)
    victim_host = meta.resolve(
        app.get_instance(result.created[0]).host_loid)
    t0 = meta.now
    victim_host.machine.set_background_load(40.0)
    victim_host.reassess()
    table.add("monitor outcall + migrate", "12-13", (meta.now - t0) * 1e3)
    table._monitor = monitor
    table._phases = {"compute": compute_ms, "reserve": reserve_ms,
                     "enact": enact_ms}
    return table


def test_e03_protocol_steps(benchmark):
    table = run_once(benchmark, run)
    table.print()
    assert table._monitor.stats.migrations_succeeded >= 1
    # every phase costs real virtual time once services have locations
    for name, ms in table._phases.items():
        assert ms > 0.0, name
