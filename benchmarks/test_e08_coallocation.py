"""E8 — Fig. 6: Enactor co-allocation across administrative domains.

A schedule spanning k domains (one instance per domain) is reserved with
the Enactor's parallel negotiation and with a sequential ablation.  Shape
claims: parallel negotiation's virtual latency grows far slower than
sequential's as k rises (max vs sum of per-domain round trips), and both
obtain identical reservations.
"""

from conftest import run_once

from repro import ObjectClassRequest
from repro.bench import ExperimentTable
from repro.enactor import Enactor
from repro.schedule import MasterSchedule, ScheduleMapping, ScheduleRequestList
from repro.workload import implementations_for_all_platforms, multi_domain


def build(k):
    meta = multi_domain(n_domains=k, hosts_per_domain=3, seed=8,
                        dynamics=False)
    meta.place_enactor("dom0")
    app = meta.create_class("Co", implementations_for_all_platforms(),
                            work_units=10.0)
    vault_of = {v.location.domain: v for v in meta.vaults}
    entries = []
    for d in range(k):
        host = next(h for h in meta.hosts if h.domain == f"dom{d}")
        entries.append(ScheduleMapping(app.loid, host.loid,
                                       vault_of[f"dom{d}"].loid))
    return meta, entries


def negotiate(meta, entries, sequential):
    enactor = Enactor(meta.transport, meta.resolve,
                      location=meta.enactor.location,
                      sequential_coallocation=sequential)
    t0 = meta.now
    feedback = enactor.make_reservations(
        ScheduleRequestList([MasterSchedule(list(entries))]))
    elapsed = meta.now - t0
    assert feedback.ok
    enactor.cancel_reservations(feedback)
    return elapsed


def run() -> ExperimentTable:
    table = ExperimentTable(
        "E8 / Fig. 6 — co-allocation latency across k domains (virtual s)",
        ["domains", "sequential", "parallel", "speedup"])
    pairs = []
    for k in (1, 2, 4, 6):
        meta, entries = build(k)
        seq = negotiate(meta, entries, sequential=True)
        par = negotiate(meta, entries, sequential=False)
        table.add(k, seq, par, seq / par if par > 0 else float("inf"))
        pairs.append((k, seq, par))
    table._pairs = pairs
    return table


def test_e08_coallocation(benchmark):
    table = run_once(benchmark, run)
    table.print()
    pairs = table._pairs
    # for multi-domain negotiations, parallel is strictly faster
    for k, seq, par in pairs:
        if k >= 2:
            assert par < seq, (k, seq, par)
    # sequential latency grows ~linearly in k; parallel much slower growth
    _, seq1, par1 = pairs[0]
    k_last, seq_last, par_last = pairs[-1]
    assert seq_last / seq1 > par_last / par1
