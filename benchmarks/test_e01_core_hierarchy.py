"""E1 — Fig. 1: the Legion core object hierarchy.

Paper artifact: the structural diagram of LegionClass / HostClass /
VaultClass / Hosts / Vaults.  The experiment bootstraps metasystems of
increasing size, verifies every structural property the figure encodes,
and reports bootstrap cost.
"""

import time

from conftest import run_once

from repro import Implementation, Metasystem, MachineSpec
from repro.bench import ExperimentTable
from repro.hosts import HostObject
from repro.vaults import VaultObject


def build(n_hosts: int) -> dict:
    t0 = time.perf_counter()
    meta = Metasystem(seed=1)
    meta.add_domain("d")
    for i in range(n_hosts):
        meta.add_unix_host(f"h{i}", "d",
                           MachineSpec(arch="sparc", os_name="SunOS"))
    meta.add_vault("d")
    app = meta.create_class("A", [Implementation("sparc", "SunOS")])
    wall_ms = (time.perf_counter() - t0) * 1e3

    # -- structural checks from Fig. 1 ------------------------------------
    # every host/vault binding resolves to the right guardian type
    hosts = [meta.resolve(l) for _p, l in meta.context.walk()
             if l.type_tag == "host"]
    vaults = [meta.resolve(l) for _p, l in meta.context.walk()
              if l.type_tag == "vault"]
    assert len(hosts) == n_hosts
    assert all(isinstance(h, HostObject) for h in hosts)
    assert all(isinstance(v, VaultObject) for v in vaults)
    # classes manage instances; instance LOIDs nest under the class
    result = app.create_instance()
    assert result.ok and result.loid.is_descendant_of(app.loid)
    # the class is the instance's manager and final authority
    assert app.get_instance(result.loid).class_loid == app.loid
    return {"hosts": n_hosts, "bindings": len(meta.context),
            "bootstrap_ms": wall_ms}


def run() -> ExperimentTable:
    table = ExperimentTable(
        "E1 / Fig. 1 — core object hierarchy bootstrap",
        ["hosts", "context bindings", "bootstrap wall (ms)"])
    for n in (8, 32, 128):
        row = build(n)
        table.add(row["hosts"], row["bindings"], row["bootstrap_ms"])
    return table


def test_e01_core_hierarchy(benchmark):
    table = run_once(benchmark, run)
    table.print()
    rows = table.as_dicts()
    # bindings grow linearly with hosts (hosts + vault + class + Collection)
    assert int(rows[-1]["context bindings"]) > int(
        rows[0]["context bindings"])
