"""E17 (extension) — section 3.3 future work: implementation selection.

"In the future, this mapping process may also select from among the
available implementations of an object as well."

A class ships a generic binary plus per-platform tuned binaries (2-3x).
The load-aware Scheduler runs with selection off (the Class falls back to
its first matching binary) and on (the mapping pins the fastest).  Metric:
makespan of a bag of tasks.
"""

from conftest import run_once

from repro import Implementation, ObjectClassRequest
from repro.bench import ExperimentTable
from repro.scheduler import LoadAwareScheduler
from repro.workload import TestbedSpec, build_testbed, wait_for_completion

N_TASKS = 8
WORK = 400.0


def implementations():
    # order matters: the generic binary is listed first, so the Class's
    # default choice is the slow one — exactly the situation selection
    # exists to fix
    impls = []
    for arch, os_name in (("sparc", "SunOS"), ("x86", "Linux"),
                          ("mips", "IRIX")):
        impls.append(Implementation(arch, os_name, relative_speed=1.0))
    for arch, os_name, speed in (("sparc", "SunOS", 2.0),
                                 ("x86", "Linux", 3.0),
                                 ("mips", "IRIX", 2.5)):
        impls.append(Implementation(arch, os_name, memory_mb=32.0,
                                    relative_speed=speed))
    return impls


def run_mode(select):
    meta = build_testbed(TestbedSpec(
        n_domains=2, hosts_per_domain=6, platform_mix=3,
        background_load_mean=0.0, seed=17, host_slots=3))
    app = meta.create_class("Tuned", implementations(), work_units=WORK)
    sched = LoadAwareScheduler(meta.collection, meta.enactor,
                               meta.transport,
                               select_implementation=select,
                               rng=meta.rngs.stream("e17"))
    outcome = sched.run([ObjectClassRequest(app, N_TASKS)])
    assert outcome.ok
    start = 0.0
    n, last = wait_for_completion(meta, app, outcome.created)
    assert n == N_TASKS
    pinned = sum(1 for m in outcome.feedback.reserved_entries
                 if m.implementation is not None)
    return last - start, pinned


def run() -> ExperimentTable:
    table = ExperimentTable(
        f"E17 / section 3.3 ext. — implementation selection, "
        f"{N_TASKS} x {WORK:.0f}-unit tasks",
        ["mapping selects implementation", "pinned entries",
         "makespan (s)"])
    off_makespan, off_pinned = run_mode(False)
    on_makespan, on_pinned = run_mode(True)
    table.add("no (Class default binary)", off_pinned, off_makespan)
    table.add("yes (fastest matching binary)", on_pinned, on_makespan)
    table._off, table._on = off_makespan, on_makespan
    return table


def test_e17_impl_selection(benchmark):
    table = run_once(benchmark, run)
    table.print()
    # pinning tuned binaries cuts makespan by roughly the tuning factor
    assert table._on < table._off
    assert table._off / table._on > 1.5
