"""E21 (extension) — §3.1 multi-object StartObject on multiprocessors.

"The StartObject function can create one or more objects; this is
important to support efficient object creation for multiprocessor
systems."

Placing N instances on a pool of SMPs, gang placement (one reservation +
one multi-create per host) is compared against one-entry-per-instance
placement: messages, reservation requests, and virtual placement latency
per instance, across N.
"""

from conftest import run_once

from repro import Implementation, MachineSpec, Metasystem, ObjectClassRequest
from repro.bench import ExperimentTable


def build():
    meta = Metasystem(seed=21)
    meta.add_domain("d")
    for i in range(4):
        meta.add_unix_host(f"smp{i}", "d",
                           MachineSpec(arch="sparc", os_name="SunOS",
                                       cpus=8),
                           slots=16)
    meta.add_vault("d")
    app = meta.create_class("A", [Implementation("sparc", "SunOS")],
                            work_units=10.0)
    return meta, app


def run_mode(kind, n):
    meta, app = build()
    sched = meta.make_scheduler(kind)
    m0 = meta.transport.messages_sent
    r0 = meta.enactor.stats.reservation_requests
    t0 = meta.now
    outcome = sched.run([ObjectClassRequest(app, n)])
    assert outcome.ok and len(outcome.created) == n
    return {
        "messages": meta.transport.messages_sent - m0,
        "reservations": meta.enactor.stats.reservation_requests - r0,
        "latency": meta.now - t0,
    }


def run() -> ExperimentTable:
    table = ExperimentTable(
        "E21 / §3.1 — gang vs single-instance placement on 4 x 8-way SMPs",
        ["instances", "mode", "messages", "reservation reqs",
         "virtual latency (s)"])
    rows = {}
    for n in (8, 16, 32):
        for kind in ("random", "gang"):
            r = run_mode(kind, n)
            table.add(n, "single" if kind == "random" else "gang",
                      r["messages"], r["reservations"], r["latency"])
            rows[(n, kind)] = r
    table._rows = rows
    return table


def test_e21_gang(benchmark):
    table = run_once(benchmark, run)
    table.print()
    rows = table._rows
    for n in (8, 16, 32):
        single, gang = rows[(n, "random")], rows[(n, "gang")]
        assert gang["messages"] < single["messages"]
        assert gang["reservations"] < single["reservations"]
        assert gang["latency"] <= single["latency"]
    # the advantage grows with N (amortization)
    adv8 = rows[(8, "random")]["messages"] / rows[(8, "gang")]["messages"]
    adv32 = (rows[(32, "random")]["messages"]
             / rows[(32, "gang")]["messages"])
    assert adv32 >= adv8
