"""E12 — section 3.5: Monitor-driven rescheduling under load spikes.

Long-running objects are placed; background-load spikes hit a subset of
hosts over time.  With the Monitor registered (steps 12-13), overloaded
hosts' RGE triggers fire and victims migrate to quiet machines.  We
compare completion-time statistics with the Monitor on and off, over
several spike patterns.
"""

from conftest import run_once

import numpy as np

from repro import ObjectClassRequest
from repro.bench import ExperimentTable
from repro.sim import summarize
from repro.workload import (
    implementations_for_all_platforms,
    multi_domain,
    wait_for_completion,
)

WORK = 2500.0
N_OBJECTS = 6
SEEDS = (120, 121, 122)


def run_one(monitor_enabled, seed):
    meta = multi_domain(n_domains=2, hosts_per_domain=5, seed=seed,
                        dynamics=False)
    app = meta.create_class("Long", implementations_for_all_platforms(),
                            work_units=WORK)
    outcome = meta.make_scheduler("load").run(
        [ObjectClassRequest(app, N_OBJECTS)])
    assert outcome.ok

    monitor = meta.make_monitor(min_load_advantage=1.0)
    monitor.enabled = monitor_enabled
    monitor.watch_all(meta.hosts)

    # spikes: every 400s another host running an object gets hammered
    rng = np.random.default_rng(seed)
    victims = list({app.get_instance(l).host_loid
                    for l in outcome.created})
    for i, host_loid in enumerate(victims[:3]):
        host = meta.resolve(host_loid)

        def spike(h=host):
            h.machine.set_background_load(30.0)
            h.reassess()
        meta.sim.schedule(300.0 + 400.0 * i, spike)

    start = meta.now
    n, last = wait_for_completion(meta, app, outcome.created, timeout=1e6)
    times = [float(app.get_instance(l).attributes.get("completed_at",
                                                      float("nan"))) - start
             for l in outcome.created]
    return {
        "completed": n,
        "times": times,
        "migrations": monitor.stats.migrations_succeeded,
        "outcalls": monitor.stats.outcalls_received,
    }


def run() -> ExperimentTable:
    table = ExperimentTable(
        f"E12 / section 3.5 — migration under load spikes "
        f"({N_OBJECTS} x {WORK:.0f}-unit objects, {len(SEEDS)} seeds)",
        ["monitor", "completed", "mean completion (s)",
         "p90 completion (s)", "max completion (s)", "migrations"])
    rows = {}
    for enabled in (False, True):
        all_times, migrations, completed = [], 0, 0
        for seed in SEEDS:
            r = run_one(enabled, seed)
            all_times.extend(r["times"])
            migrations += r["migrations"]
            completed += r["completed"]
        stats = summarize(all_times, percentiles=(90,))
        label = "enabled" if enabled else "disabled"
        table.add(label, completed, stats["mean"], stats["p90"],
                  stats["max"], migrations)
        rows[label] = {"stats": stats, "migrations": migrations}
    table._rows = rows
    return table


def test_e12_migration(benchmark):
    table = run_once(benchmark, run)
    table.print()
    rows = table._rows
    assert rows["enabled"]["migrations"] >= 1
    assert rows["disabled"]["migrations"] == 0
    # migration cuts the tail (spiked objects no longer crawl)
    assert (rows["enabled"]["stats"]["max"]
            < rows["disabled"]["stats"]["max"])
    assert (rows["enabled"]["stats"]["mean"]
            <= rows["disabled"]["stats"]["mean"])
