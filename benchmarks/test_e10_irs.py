"""E10 — Figs. 8-9: IRS versus Random under contention.

The paper's stated improvements: IRS "computes multiple schedules and
accommodates negative feedback from the Enactor" while doing "fewer
lookups in the Collection".  We run identical request sequences under
moderate contention (2-slot hosts, overlapping reservations, stale
records) and measure placement success, Collection lookups, schedule
recomputations, and variant usage, aggregated over three seeds.
"""

from conftest import run_once

from repro import Implementation, MachineSpec, Metasystem, ObjectClassRequest
from repro.bench import ExperimentTable

N_ROUNDS = 12
INSTANCES = 3
SEEDS = (10, 11, 12)


def build(seed):
    meta = Metasystem(seed=seed)
    meta.add_domain("d")
    for i in range(6):
        meta.add_unix_host(f"h{i}", "d",
                           MachineSpec(arch="sparc", os_name="SunOS"),
                           slots=2)
    meta.add_vault("d")
    app = meta.create_class("A", [Implementation("sparc", "SunOS")],
                            work_units=120.0)
    return meta, app


def run_policy(kind, seed):
    meta, app = build(seed)
    if kind == "random":
        sched = meta.make_scheduler("random")
        # match the IRS wrapper's limits so only the policy differs
        sched.sched_try_limit = 3
        sched.enact_try_limit = 2
    else:
        sched = meta.make_scheduler("irs", n_schedules=6,
                                    sched_try_limit=3, enact_try_limit=2)
    successes, tries = 0, 0
    for _ in range(N_ROUNDS):
        outcome = sched.run([ObjectClassRequest(app, INSTANCES)],
                            reservation_duration=120.0)
        if outcome.ok:
            successes += 1
        tries += outcome.schedule_tries
        meta.advance(150.0)
    return {
        "success": successes / N_ROUNDS,
        "queries": sched.collection_queries,
        "tries": tries,
        "variant_attempts": sched.enactor.stats.variant_attempts,
    }


def aggregate(kind):
    rows = [run_policy(kind, s) for s in SEEDS]
    n = len(rows)
    return {
        "success": sum(r["success"] for r in rows) / n,
        "queries": sum(r["queries"] for r in rows),
        "tries": sum(r["tries"] for r in rows),
        "variant_attempts": sum(r["variant_attempts"] for r in rows),
    }


def run() -> ExperimentTable:
    table = ExperimentTable(
        f"E10 / Figs. 8-9 — IRS vs Random, {N_ROUNDS} rounds x "
        f"{INSTANCES} instances, {len(SEEDS)} seeds, 2-slot hosts",
        ["policy", "success rate", "Collection lookups",
         "schedule recomputations", "variant attempts"])
    rows = {}
    for kind in ("random", "irs"):
        r = aggregate(kind)
        table.add(kind, r["success"], r["queries"], r["tries"],
                  r["variant_attempts"])
        rows[kind] = r
    table._rows = rows
    return table


def test_e10_irs(benchmark):
    table = run_once(benchmark, run)
    table.print()
    rows = table._rows
    # IRS succeeds at least as often as Random under contention
    assert rows["irs"]["success"] >= rows["random"]["success"]
    # fewer Collection lookups (one per class per generation, fewer
    # generations because variants absorb Enactor feedback)
    assert rows["irs"]["queries"] <= rows["random"]["queries"]
    # fewer full schedule recomputations
    assert rows["irs"]["tries"] <= rows["random"]["tries"]
    # the variant machinery was actually exercised
    assert rows["irs"]["variant_attempts"] > 0
