"""E13 — section 5: Legion RMI vs the related-work baselines.

A multi-domain workload with *real site autonomy* (domain blacklists,
load ceilings, an off-hours-only site) is scheduled four ways:

* Legion IRS (reservations + variants, the full RMI);
* a Globus-1999-style broker (no reservations, one mapping per task,
  recompute-on-failure);
* a single-site central queue (Condor/LoadLeveler used alone);
* a dictatorial scheduler that ignores autonomy.

Shape claims: the RMI places the full workload under policy friction,
spreading it across domains; the dictator loses the placements autonomy
refuses; the all-or-nothing broker collapses entirely; the central queue
places everything but only ever uses its one site.
"""

from conftest import run_once

from repro import ObjectClassRequest
from repro.baselines import (
    CentralQueueBaseline,
    DictatorialScheduler,
    GlobusStyleBroker,
)
from repro.bench import ExperimentTable
from repro.hosts.policy import DomainBlacklist, LoadCeiling, TimeOfDayWindow
from repro.workload import (
    TestbedSpec,
    build_testbed,
    implementations_for_all_platforms,
    wait_for_completion,
)

N_TASKS = 12


def build():
    meta = build_testbed(TestbedSpec(
        n_domains=3, hosts_per_domain=6, platform_mix=3,
        background_load_mean=0.4, seed=13, host_slots=3,
        batch_clusters={0: "fcfs"}, batch_nodes=6))
    # site autonomy: every domain enforces something.  dom1 refuses
    # requests from dom0 (and anonymous ones); half of dom2 accepts work
    # only during business hours — and the experiment runs at "midnight".
    for host in meta.hosts:
        if host.domain == "dom1":
            host.policy = DomainBlacklist(["", "dom0"])
        elif host.domain == "dom2" and host.machine.name.endswith(
                ("1", "3", "5")):
            host.policy = TimeOfDayWindow(8.0, 18.0)
    # the Legion user schedules from dom0 — dom1 will refuse it too, and
    # the RMI must route around the refusals via variants
    meta.enactor.coallocator.requester_domain = "dom0"
    app_impls = implementations_for_all_platforms()
    return meta, app_impls


def measure(label, runner, meta, app):
    m0 = meta.transport.messages_sent
    t0 = meta.now
    created, ok_flag = runner()
    messages = meta.transport.messages_sent - m0
    n, last = wait_for_completion(meta, app, created, timeout=1e6)
    return {
        "label": label, "ok": ok_flag,
        "placed": len(created), "completed": n,
        "makespan": (last - t0) if created and n == len(created)
        else float("nan"),
        "messages": messages,
    }


def run() -> ExperimentTable:
    table = ExperimentTable(
        f"E13 / section 5 — Legion RMI vs baselines, {N_TASKS} tasks, "
        f"3 domains with site policies",
        ["strategy", "placed", "completed", "makespan (s)", "messages"])
    rows = {}

    # Legion IRS
    meta, impls = build()
    app = meta.create_class("W", impls, work_units=200.0)
    sched = meta.make_scheduler("irs", n_schedules=6)

    def legion():
        created = []
        for _ in range(4):
            outcome = sched.run(
                [ObjectClassRequest(app, N_TASKS - len(created))],
                reservation_duration=400.0)
            if outcome.ok:
                created.extend(outcome.created)
            if len(created) >= N_TASKS:
                break
            meta.advance(60.0)
        return created, len(created) == N_TASKS
    rows["legion"] = measure("legion irs", legion, meta, app)
    legion_domains = {meta.resolve(app.get_instance(l).host_loid).domain
                      if app.get_instance(l).host_loid is not None else "?"
                      for l in app.instances}
    rows["legion"]["domains"] = legion_domains

    # Globus-style broker
    meta, impls = build()
    app = meta.create_class("W", impls, work_units=200.0)
    broker = GlobusStyleBroker(meta.collection, meta.transport,
                               meta.resolve,
                               rng=meta.rngs.stream("e13", "broker"),
                               retry_limit=6)

    def globus():
        outcome = broker.run([ObjectClassRequest(app, N_TASKS)])
        return outcome.created, outcome.ok
    rows["globus"] = measure("globus-style broker", globus, meta, app)

    # central queue
    meta, impls = build()
    app = meta.create_class("W", impls, work_units=200.0)
    cluster = meta.host_by_name("dom0-cluster")
    central = CentralQueueBaseline(cluster, meta.transport)

    def queue_only():
        outcome = central.run([ObjectClassRequest(app, N_TASKS)])
        return outcome.created, outcome.ok
    rows["central"] = measure("central queue only", queue_only, meta, app)

    # dictatorial
    meta, impls = build()
    app = meta.create_class("W", impls, work_units=200.0)
    dictator = DictatorialScheduler(meta.collection, meta.transport,
                                    meta.resolve,
                                    rng=meta.rngs.stream("e13", "dict"))

    def command():
        outcome = dictator.run([ObjectClassRequest(app, N_TASKS)])
        return outcome.created, outcome.ok
    rows["dictator"] = measure("dictatorial (ignores autonomy)", command,
                               meta, app)

    for r in rows.values():
        table.add(r["label"], r["placed"], r["completed"], r["makespan"],
                  r["messages"])
    table._rows = rows
    return table


def test_e13_baselines(benchmark):
    table = run_once(benchmark, run)
    table.print()
    rows = table._rows
    # the full RMI places the whole workload despite site policies
    assert rows["legion"]["placed"] == N_TASKS
    # the dictator loses placements to autonomy
    assert rows["dictator"]["placed"] < N_TASKS
    # the all-or-nothing broker fares no better than the RMI
    assert rows["globus"]["placed"] <= rows["legion"]["placed"]
    # the RMI harnessed several domains; the central queue is single-site
    assert len(rows["legion"]["domains"]) >= 2
