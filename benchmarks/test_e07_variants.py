"""E7 — Fig. 5: master/variant schedules and the anti-thrashing ablation.

Scenario: schedules computed from *stale* Collection data hit hosts whose
slots are already gone; variant schedules rescue the placement.  Three
Enactor configurations are compared on identical request sequences:

* **no variants** — single master (the Random Scheduler's output);
* **variants, naive** — on any failure, cancel everything held and
  re-reserve the whole variant (the thrashing behaviour the paper's
  bitmap + minimal-disturbance design avoids);
* **variants, bitmap** — the paper's design: keep unaffected reservations,
  re-reserve only replaced entries.

Shape claims: variants raise placement success; the bitmap design issues
far fewer reservation requests and cancellations than the naive one and
never remakes a cancelled identical reservation.
"""

from conftest import run_once

from repro import Implementation, MachineSpec, Metasystem, ObjectClassRequest
from repro.bench import ExperimentTable
from repro.enactor import Enactor

N_HOSTS = 8
N_ROUNDS = 12
INSTANCES_PER_ROUND = 4


def build():
    meta = Metasystem(seed=7)
    meta.add_domain("d")
    for i in range(N_HOSTS):
        meta.add_unix_host(f"h{i}", "d",
                           MachineSpec(arch="sparc", os_name="SunOS"),
                           slots=2)
    meta.add_vault("d")
    app = meta.create_class("A", [Implementation("sparc", "SunOS")],
                            work_units=400.0)
    return meta, app


def run_config(label, scheduler_kind, naive):
    meta, app = build()
    enactor = Enactor(meta.transport, meta.resolve,
                      naive_variant_handling=naive)
    if scheduler_kind == "random":
        sched = meta.make_scheduler("random")
    else:
        sched = meta.make_scheduler("irs", n_schedules=6)
    sched.enactor = enactor
    sched.sched_try_limit = 1   # isolate the Enactor's variant machinery
    sched.enact_try_limit = 1
    successes = 0
    for round_no in range(N_ROUNDS):
        outcome = sched.run(
            [ObjectClassRequest(app, INSTANCES_PER_ROUND)],
            reservation_duration=200.0)
        if outcome.ok:
            successes += 1
        meta.advance(60.0)   # stale window: records age between rounds
    return {
        "label": label,
        "success": successes / N_ROUNDS,
        "requests": enactor.stats.reservation_requests,
        "cancellations": enactor.stats.cancellations,
        "thrash": enactor.stats.thrash_count,
        "variant_attempts": enactor.stats.variant_attempts,
    }


def run() -> ExperimentTable:
    table = ExperimentTable(
        f"E7 / Fig. 5 — variant schedules & anti-thrashing "
        f"({N_ROUNDS} rounds x {INSTANCES_PER_ROUND} instances, "
        f"2-slot hosts)",
        ["configuration", "success rate", "reservation reqs",
         "cancellations", "thrash count", "variant attempts"])
    rows = [
        run_config("no variants (random)", "random", naive=False),
        run_config("variants, naive handling", "irs", naive=True),
        run_config("variants, bitmap (paper)", "irs", naive=False),
    ]
    for r in rows:
        table.add(r["label"], r["success"], r["requests"],
                  r["cancellations"], r["thrash"], r["variant_attempts"])
    table._rows = rows
    return table


def test_e07_variants(benchmark):
    table = run_once(benchmark, run)
    table.print()
    none, naive, bitmap = table._rows
    # variants raise success under contention
    assert bitmap["success"] >= none["success"]
    # the bitmap design cancels less and requests less than naive
    assert bitmap["cancellations"] <= naive["cancellations"]
    assert bitmap["requests"] <= naive["requests"]
    # and thrashes less
    assert bitmap["thrash"] <= naive["thrash"]
