"""E14 — section 3.2: function injection + NWS-style load forecasting.

"We plan to extend Collections to support function injection ... This
capability is especially important to users of the Network Weather
Service, which predicts future resource availability."

Scenario engineered so stale information actively misleads: the system has
*good* hosts (base load 0.2) and *bad* hosts (base load 2.0), but good
hosts suffer short transient load bursts (cron jobs, mail delivery — the
1990s workstation experience) that happen to be visible whenever the
Data Collection Daemon sweeps.  A Scheduler trusting the raw snapshot
flees the good hosts exactly when they look busiest; a windowed-median
NWS forecaster injected as ``$predicted_load`` sees through the
transients.  Metric: the realized (true, current) service rate of chosen
hosts.
"""

from conftest import run_once

from repro import Implementation, MachineSpec, Metasystem, ObjectClassRequest
from repro.bench import ExperimentTable
from repro.predict import HostLoadPredictor, SlidingWindowMedian
from repro.scheduler import LoadAwareScheduler

N_GOOD = 5
N_BAD = 5
N_ROUNDS = 10
SWEEP = 120.0


def build(seed):
    meta = Metasystem(seed=seed, reassess_interval=1e9)
    meta.add_domain("d")
    for i in range(N_GOOD):
        meta.add_unix_host(f"good{i}", "d",
                           MachineSpec(arch="sparc", os_name="SunOS"),
                           initial_load=0.2, slots=8,
                           push_to_collection=False)
    for i in range(N_BAD):
        meta.add_unix_host(f"bad{i}", "d",
                           MachineSpec(arch="sparc", os_name="SunOS"),
                           initial_load=2.0, slots=8,
                           push_to_collection=False)
    meta.add_vault("d")
    app = meta.create_class("A", [Implementation("sparc", "SunOS")],
                            work_units=20.0)
    daemon = meta.make_daemon(interval=SWEEP)
    daemon.start()

    # transient bursts on good hosts around every sweep instant
    spike_rng = meta.rngs.stream("e14", "spikes")

    def schedule_bursts(t):
        for host in meta.hosts:
            if not host.machine.name.startswith("good"):
                continue
            if spike_rng.random() < 0.6:
                meta.sim.schedule_at(
                    max(t - 5.0, 0.0),
                    lambda h=host: (h.machine.set_background_load(6.0),
                                    h.reassess()))
                meta.sim.schedule_at(
                    t + 10.0,
                    lambda h=host: (h.machine.set_background_load(0.2),
                                    h.reassess()))
        # plan the next sweep's bursts well before its t-5s lead-in
        meta.sim.schedule_at(t + SWEEP / 2,
                             lambda: schedule_bursts(t + SWEEP))
    schedule_bursts(SWEEP)
    return meta, app, daemon


def realized_rate(meta, entries):
    total = 0.0
    for mapping in entries:
        host = meta.resolve(mapping.host_loid)
        total += (host.machine.spec.speed
                  / (1.0 + host.machine.load_average))
    return total / len(entries)


def run_mode(use_forecast, seed):
    meta, app, daemon = build(seed)
    predictor = HostLoadPredictor(
        factory=lambda: SlidingWindowMedian(window=7))
    if use_forecast:
        meta.collection.inject_attribute("predicted_load",
                                         predictor.computed)
    # NWS sensors sample on their own (faster) cadence, independent of
    # the Collection's sweep times — that independence is what lets the
    # forecaster average out the sweep-correlated transients
    def sense():
        for host in meta.hosts:
            predictor.observe(host.machine.name,
                              host.machine.load_average)
        meta.sim.schedule(30.0, sense)
    meta.sim.schedule(15.0, sense)

    sched = LoadAwareScheduler(
        meta.collection, meta.enactor, meta.transport,
        predicted_load_attr="predicted_load" if use_forecast else "",
        rng=meta.rngs.stream("e14", "sched"))
    meta.advance(SWEEP * 8 + 1.0)  # build up forecast history
    rates = []
    for _ in range(N_ROUNDS):
        meta.advance(45.0)  # mid-gap: bursts are over, records still stale
        outcome = sched.run([ObjectClassRequest(app, 3)],
                            reservation_duration=40.0)
        if outcome.ok:
            rates.append(realized_rate(meta,
                                       outcome.feedback.reserved_entries))
        meta.advance(SWEEP - 45.0)
    return sum(rates) / len(rates) if rates else float("nan")


def run() -> ExperimentTable:
    table = ExperimentTable(
        "E14 / section 3.2 — scheduling on raw vs NWS-forecast load "
        "(records refreshed during transient bursts)",
        ["load source", "mean realized service rate"])
    seeds = (140, 141, 142)
    raw = sum(run_mode(False, s) for s in seeds) / len(seeds)
    forecast = sum(run_mode(True, s) for s in seeds) / len(seeds)
    table.add("raw $host_load (stale snapshot)", raw)
    table.add("injected $predicted_load (NWS median)", forecast)
    table._raw, table._forecast = raw, forecast
    return table


def test_e14_forecasting(benchmark):
    table = run_once(benchmark, run)
    table.print()
    # seeing through transients yields strictly better placements
    assert table._forecast > table._raw
