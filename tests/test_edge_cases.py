"""Edge-case tests across subsystems."""

import pytest

from repro import Implementation, MachineSpec, Metasystem, ObjectClassRequest
from repro.enactor import Enactor
from repro.queues import BackfillQueue, FCFSQueue, JobState, QueueJob
from repro.schedule import (
    MasterSchedule,
    ScheduleMapping,
    ScheduleRequestList,
    VariantSchedule,
)
from repro.sim import Simulator


class TestBackfillMisestimates:
    def test_underestimated_jobs_still_complete(self):
        """Users lie about runtimes; EASY planning degrades but never
        wedges."""
        sim = Simulator()
        queue = BackfillQueue(sim, nodes=4)
        jobs = [QueueJob(work=100.0, nodes=2, estimated_runtime=10.0,
                         name=f"liar{i}") for i in range(4)]
        jobs.append(QueueJob(work=10.0, nodes=4, estimated_runtime=10.0,
                             name="wide"))
        for job in jobs:
            queue.submit(job)
        sim.run()
        assert all(j.state == JobState.DONE for j in jobs)

    def test_overestimates_block_backfill_conservatively(self):
        sim = Simulator()
        queue = BackfillQueue(sim, nodes=2)
        queue.submit(QueueJob(work=50.0, nodes=2, estimated_runtime=1000.0,
                              name="running"))
        queue.submit(QueueJob(work=10.0, nodes=2, estimated_runtime=10.0,
                              name="head"))
        # a 1-node job estimated to outlast the (over-)estimated shadow
        trailing = QueueJob(work=900.0, nodes=1, estimated_runtime=900.0,
                            name="trailing")
        queue.submit(trailing)
        sim.run_until(1.0)
        # nothing is free (running holds both nodes), so queued
        assert trailing.state == JobState.QUEUED
        sim.run()
        assert trailing.state == JobState.DONE


class TestEnactorLimits:
    def build(self, n_hosts=3, slots=1):
        meta = Metasystem(seed=77)
        meta.add_domain("d")
        for i in range(n_hosts):
            meta.add_unix_host(f"h{i}", "d",
                               MachineSpec(arch="sparc", os_name="SunOS"),
                               slots=slots)
        meta.add_vault("d")
        app = meta.create_class("A", [Implementation("sparc", "SunOS")],
                                work_units=10.0)
        return meta, app

    def test_max_variant_attempts_bounds_work(self):
        meta, app = self.build()
        vault = meta.vaults[0]
        full = meta.hosts[0]
        # exhaust the target host
        full.make_reservation(vault.loid, app.loid)
        enactor = Enactor(meta.transport, meta.resolve,
                          max_variant_attempts=1)
        master = MasterSchedule(
            [ScheduleMapping(app.loid, full.loid, vault.loid)])
        # two variants exist, both also targeting the full host
        master.add_variant(VariantSchedule(
            {0: ScheduleMapping(app.loid, full.loid, vault.loid)},
            label="v1"))
        master.add_variant(VariantSchedule(
            {0: ScheduleMapping(app.loid, full.loid, vault.loid)},
            label="v2"))
        feedback = enactor.make_reservations(ScheduleRequestList([master]))
        assert not feedback.ok
        assert enactor.stats.variant_attempts == 1  # capped

    def test_cancel_after_cancel_is_zero(self):
        meta, app = self.build()
        vault = meta.vaults[0]
        master = MasterSchedule(
            [ScheduleMapping(app.loid, meta.hosts[0].loid, vault.loid)])
        feedback = meta.enactor.make_reservations(
            ScheduleRequestList([master]))
        assert feedback.ok
        assert meta.enactor.cancel_reservations(feedback) == 1
        assert meta.enactor.cancel_reservations(feedback) == 0

    def test_enact_after_cancel_creates_nothing(self):
        meta, app = self.build()
        vault = meta.vaults[0]
        master = MasterSchedule(
            [ScheduleMapping(app.loid, meta.hosts[0].loid, vault.loid)])
        feedback = meta.enactor.make_reservations(
            ScheduleRequestList([master]))
        meta.enactor.cancel_reservations(feedback)
        result = meta.enactor.enact_schedule(feedback)
        # holdings were cleared: nothing created, nothing crashed
        assert result.created == []


class TestSchedulerRetryBehaviour:
    def test_wrapper_gives_up_after_limits(self):
        meta = Metasystem(seed=78)
        meta.add_domain("d")
        host = meta.add_unix_host("h0", "d",
                                  MachineSpec(arch="sparc",
                                              os_name="SunOS"),
                                  slots=1)
        meta.add_vault("d")
        app = meta.create_class("A", [Implementation("sparc", "SunOS")],
                                work_units=1e6)
        sched = meta.make_scheduler("random")
        sched.sched_try_limit = 2
        sched.enact_try_limit = 2
        first = sched.run([ObjectClassRequest(app, 1)])
        assert first.ok
        second = sched.run([ObjectClassRequest(app, 1)])
        assert not second.ok
        assert second.schedule_tries == 2
        assert second.enact_tries == 4

    def test_zero_latency_scheduling_is_instant(self):
        from repro.net.latency import ZeroLatencyModel
        meta = Metasystem(seed=79, latency_model=ZeroLatencyModel())
        meta.add_domain("d")
        meta.add_unix_host("h0", "d",
                           MachineSpec(arch="sparc", os_name="SunOS"))
        meta.add_vault("d")
        app = meta.create_class("A", [Implementation("sparc", "SunOS")],
                                work_units=1.0)
        sched = meta.make_scheduler("random")
        t0 = meta.now
        outcome = sched.run([ObjectClassRequest(app, 1)])
        assert outcome.ok
        assert meta.now == t0  # no virtual time consumed


class TestQueueEdgeCases:
    def test_fcfs_cancel_done_job_noop(self):
        sim = Simulator()
        queue = FCFSQueue(sim, nodes=1)
        job = QueueJob(work=1.0)
        queue.submit(job)
        sim.run()
        assert job.state == JobState.DONE
        assert not queue.cancel(job)

    def test_resubmit_vacated_job_counts_progress_once(self):
        sim = Simulator()
        queue = FCFSQueue(sim, nodes=1)
        job = QueueJob(work=100.0)
        queue.submit(job)
        sim.run_until(60.0)
        queue.cancel(job)
        assert job.remaining_work == pytest.approx(40.0)
        job.state = JobState.QUEUED
        queue.submit(job)
        sim.run()
        assert job.finished_at == pytest.approx(100.0)


class TestAttributeEdges:
    def test_record_view_len_and_iter(self, meta):
        meta.collection.inject_attribute("extra", lambda rec: 1)
        record = meta.collection.record_of(meta.hosts[0].loid)
        from repro.collection.collection import _RecordView
        view = _RecordView(record, meta.collection._computed)
        names = list(view)
        assert "loid" in names
        assert "extra" in names
        assert "host_arch" in names
        assert len(view) == len(names)
