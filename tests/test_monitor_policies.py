"""Tests for pluggable Monitor rescheduling policies."""

import pytest

from repro import Implementation, ObjectClassRequest
from repro.accounting import CostAwareScheduler
from repro.monitor import GreedyLeastLoaded, SchedulerBacked
from repro.objects import Placement


@pytest.fixture
def loaded(meta):
    """A long job on host 0, host 0 overloaded, others quiet."""
    app = meta.create_class("Heavy", [Implementation("sparc", "SunOS")],
                            work_units=5000.0)
    host, vault = meta.hosts[0], meta.vaults[0]
    result = app.create_instance(Placement(host.loid, vault.loid))
    host.machine.set_background_load(20.0)
    for h in meta.hosts:
        h.reassess()
    return app, result.loid, host


class TestGreedyPolicy:
    def test_destination_excludes_source(self, meta, loaded):
        app, loid, src = loaded
        policy = GreedyLeastLoaded(meta.collection, meta.resolve,
                                   min_load_advantage=0.5)
        dest = policy.pick_destination(app.loid, src)
        assert dest is not None
        assert dest != src.loid

    def test_respects_advantage_threshold(self, meta, loaded):
        app, loid, src = loaded
        policy = GreedyLeastLoaded(meta.collection, meta.resolve,
                                   min_load_advantage=1e6)
        assert policy.pick_destination(app.loid, src) is None

    def test_victims_limited(self, meta, loaded):
        app, loid, src = loaded
        vault = meta.vaults[0]
        for _ in range(3):
            app.create_instance(Placement(src.loid, vault.loid))
        policy = GreedyLeastLoaded(meta.collection, meta.resolve)
        assert len(policy.pick_victims(src, limit=2)) == 2
        assert len(policy.pick_victims(src, limit=10)) == 4


class TestSchedulerBackedPolicy:
    def test_uses_scheduler_placement(self, meta, loaded):
        app, loid, src = loaded
        sched = meta.make_scheduler("load")
        policy = SchedulerBacked(sched, meta.resolve)
        dest = policy.pick_destination(app.loid, src)
        assert dest is not None and dest != src.loid
        # the load-aware scheduler picks a quiet host
        dest_host = meta.resolve(dest)
        assert dest_host.machine.load_average < src.machine.load_average

    def test_cost_aware_monitor(self, meta, loaded):
        """The Monitor inherits whatever the backing Scheduler optimizes —
        here, price."""
        app, loid, src = loaded
        # make host 3 expensive, others free
        meta.hosts[3].price = 9.99
        for h in meta.hosts:
            h.reassess()
        sched = CostAwareScheduler(meta.collection, meta.enactor,
                                   meta.transport, deadline=1e9)
        policy = SchedulerBacked(sched, meta.resolve)
        monitor = meta.make_monitor(policy=policy,
                                    min_load_advantage=0.1)
        monitor.watch_all(meta.hosts)
        reports = monitor.rebalance_host(src)
        assert len(reports) == 1 and reports[0].ok
        assert reports[0].to_host != meta.hosts[3].loid  # avoided pricey

    def test_end_to_end_via_trigger(self, meta, loaded):
        app, loid, src = loaded
        sched = meta.make_scheduler("load")
        monitor = meta.make_monitor(
            policy=SchedulerBacked(sched, meta.resolve))
        monitor.watch_all(meta.hosts)
        # load is already high; re-fire the trigger cleanly
        src.machine.set_background_load(0.0)
        meta.advance(120.0)
        src.reassess()
        src.machine.set_background_load(25.0)
        meta.advance(120.0)
        src.reassess()
        assert monitor.stats.migrations_succeeded >= 1
        assert app.get_instance(loid).host_loid != src.loid
