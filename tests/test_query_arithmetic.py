"""Tests for arithmetic expressions in the query grammar."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collection import Collection, IndexedCollection, parse, matches
from repro.collection.query import Arith, evaluate, UNDEFINED
from repro.errors import QuerySyntaxError
from repro.naming import LOID

REC = {"host_speed": 2.0, "host_load": 3.0, "cpus": 4, "host_up": True,
       "name": "ws0"}


def q(text, record=REC):
    return matches(parse(text), record)


class TestParsing:
    def test_precedence_mul_over_add(self):
        node = parse("$a + $b * $c == 0")
        assert isinstance(node.left, Arith)
        assert node.left.op == "+"
        assert node.left.right.op == "*"

    def test_parentheses(self):
        node = parse("($a + $b) * $c == 0")
        assert node.left.op == "*"
        assert node.left.left.op == "+"

    def test_left_associativity(self):
        node = parse("$a - $b - $c == 0")
        assert node.left.op == "-"
        assert node.left.left.op == "-"

    def test_arith_below_comparison(self):
        node = parse("$a + 1 < $b * 2")
        assert node.op == "<"
        assert node.left.op == "+"
        assert node.right.op == "*"

    def test_signed_literal_still_works(self):
        assert q("$cpus == -4", {"cpus": -4})

    def test_dangling_operator_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse("$a + ")
        with pytest.raises(QuerySyntaxError):
            parse("* $a")

    def test_unparse_round_trip(self):
        node = parse("$a + $b * 2 - 1 == $c / 4")
        assert parse(node.unparse()) == node


class TestEvaluation:
    def test_basic_ops(self):
        assert q("$cpus + 1 == 5")
        assert q("$cpus - 1 == 3")
        assert q("$cpus * $host_speed == 8")
        assert q("$cpus / 2 == 2")

    def test_effective_rate_expression(self):
        # the canonical scheduling expression, straight in query text
        assert q("$host_speed / (1 + $host_load) > 0.4")
        assert not q("$host_speed / (1 + $host_load) > 0.6")

    def test_undefined_propagates(self):
        assert not q("$missing + 1 == 1")
        assert not q("1 + $missing == 1")
        assert not q("$missing * $missing == 0")

    def test_division_by_zero_is_undefined(self):
        assert not q("$cpus / 0 == 0")
        assert not q("$cpus / ($host_load - 3) > 0")

    def test_string_operand_is_undefined(self):
        assert not q('$name + 1 == 1')
        assert not q('$name * 2 == "ws0ws0"')

    def test_bool_coerces_numeric(self):
        assert q("$host_up + 1 == 2")

    def test_evaluate_returns_value(self):
        assert evaluate(parse("$cpus * 2"), REC) == 8.0
        assert evaluate(parse("$missing * 2"), REC) is UNDEFINED

    def test_mixed_with_boolean_logic(self):
        assert q("$host_up and $cpus * 2 == 8 or $cpus == 0")


class TestWithCollections:
    def fill(self, coll):
        coll.require_auth = False
        for i in range(8):
            coll.join(LOID(("d", "host", f"h{i}")), {
                "host_speed": 1.0 + i, "host_load": float(i),
                "host_arch": "sparc"})

    def test_rate_query_on_collection(self):
        coll = Collection(LOID(("d", "svc", "c")))
        self.fill(coll)
        fast = coll.query("$host_speed / (1 + $host_load) >= 1.0")
        assert len(fast) == 8  # (1+i)/(1+i) == 1 for all

        some = coll.query("$host_speed / (1 + $host_load) > 1.0")
        assert len(some) == 0

    def test_indexed_collection_same_results(self):
        plain = Collection(LOID(("d", "svc", "p")))
        idx = IndexedCollection(LOID(("d", "svc", "i")))
        self.fill(plain)
        self.fill(idx)
        query = '$host_arch == "sparc" and $host_speed - $host_load == 1'
        assert ([r.member for r in plain.query(query)]
                == [r.member for r in idx.query(query)])


arith_ops = st.sampled_from(["+", "-", "*", "/"])
numbers = st.integers(min_value=-20, max_value=20)


class TestArithmeticProperties:
    @given(numbers, numbers, arith_ops)
    @settings(max_examples=100, deadline=None)
    def test_matches_python_semantics(self, a, b, op):
        record = {"a": a, "b": b}
        text = f"$a {op} $b"
        value = evaluate(parse(text), record)
        if op == "/" and b == 0:
            assert value is UNDEFINED
        else:
            expected = {"+": a + b, "-": a - b, "*": a * b,
                        "/": (a / b if b else None)}[op]
            assert value == pytest.approx(expected)
