"""Tests for migration and the execution Monitor (steps 12-13)."""

import pytest

from repro import Implementation, ObjectClassRequest
from repro.hosts import UnixHost
from repro.workload import wait_for_completion


@pytest.fixture
def placed(meta, app_class):
    """One long job placed on host 0."""
    sched = meta.make_scheduler("random",
                                rng=__import__("numpy").random.default_rng(0))
    heavy = meta.create_class("Heavy", [Implementation("sparc", "SunOS")],
                              work_units=1000.0)
    from repro.objects import Placement
    host, vault = meta.hosts[0], meta.vaults[0]
    result = heavy.create_instance(Placement(host.loid, vault.loid))
    assert result.ok
    return heavy, result.loid, host


class TestMigrator:
    def test_migrate_moves_object(self, meta, placed):
        heavy, loid, src = placed
        dst = meta.hosts[1]
        meta.advance(100.0)  # some progress first
        report = meta.migrator.migrate(loid, dst.loid)
        assert report.ok, report.detail
        assert report.from_host == src.loid
        assert report.to_host == dst.loid
        instance = heavy.get_instance(loid)
        assert instance.host_loid == dst.loid
        assert instance.is_active
        assert loid not in src.placed
        assert loid in dst.placed

    def test_migration_preserves_progress(self, meta, placed):
        heavy, loid, src = placed
        meta.advance(400.0)  # ~400 of 1000 units done
        report = meta.migrator.migrate(loid, meta.hosts[1].loid)
        assert report.ok
        instance = heavy.get_instance(loid)
        remaining = instance.attributes.get("work_units")
        assert remaining == pytest.approx(600.0, rel=0.05)
        n, t = wait_for_completion(meta, heavy, [loid])
        assert n == 1
        # total time ~ 1000 units of work + small migration overhead
        assert t == pytest.approx(1000.0, rel=0.1)

    def test_opr_moves_between_vaults(self, meta, placed):
        heavy, loid, src = placed
        v2 = meta.add_vault("uva", name="uva-vault-b")
        report = meta.migrator.migrate(loid, meta.hosts[1].loid,
                                       to_vault_loid=v2.loid)
        assert report.ok
        assert v2.has_opr(loid)
        instance = heavy.get_instance(loid)
        assert instance.vault_loid == v2.loid

    def test_migrate_to_unknown_host_fails(self, meta, placed):
        heavy, loid, _src = placed
        report = meta.migrator.migrate(loid,
                                       meta.minter.mint("host", "ghost"))
        assert not report.ok
        assert meta.migrator.failures == 1
        # object untouched
        assert heavy.get_instance(loid).is_active

    def test_migrate_refused_destination_keeps_object_running(
            self, meta, placed):
        from repro.hosts.policy import LoadCeiling
        heavy, loid, src = placed
        dst = meta.hosts[1]
        dst.policy = LoadCeiling(max_load=-1.0)  # refuses everything
        report = meta.migrator.migrate(loid, dst.loid)
        assert not report.ok
        assert "refused" in report.detail
        assert loid in src.placed  # never deactivated

    def test_migrate_inert_object_fails(self, meta, placed):
        heavy, loid, src = placed
        src.deactivate_object(loid)
        report = meta.migrator.migrate(loid, meta.hosts[1].loid)
        assert not report.ok

    def test_migration_counts(self, meta, placed):
        heavy, loid, _ = placed
        meta.migrator.migrate(loid, meta.hosts[1].loid)
        assert meta.migrator.migrations == 1
        instance = heavy.get_instance(loid)
        assert instance.migration_count == 1


class TestMonitor:
    def test_outcall_triggers_rebalance(self, meta, placed):
        heavy, loid, src = placed
        monitor = meta.make_monitor(min_load_advantage=0.5)
        monitor.watch_all(meta.hosts)
        # overload the source host
        src.machine.set_background_load(20.0)
        src.reassess()
        assert monitor.stats.outcalls_received >= 1
        assert monitor.stats.migrations_succeeded == 1
        instance = heavy.get_instance(loid)
        assert instance.host_loid != src.loid

    def test_disabled_monitor_counts_but_does_not_move(self, meta, placed):
        heavy, loid, src = placed
        monitor = meta.make_monitor(enabled=False)
        monitor.watch_all(meta.hosts)
        src.machine.set_background_load(20.0)
        src.reassess()
        assert monitor.stats.outcalls_received >= 1
        assert monitor.stats.migrations_succeeded == 0
        assert heavy.get_instance(loid).host_loid == src.loid

    def test_no_migration_without_advantage(self, meta, placed):
        heavy, loid, src = placed
        monitor = meta.make_monitor(min_load_advantage=100.0)
        monitor.watch_all(meta.hosts)
        src.machine.set_background_load(20.0)
        src.reassess()
        assert monitor.stats.migrations_succeeded == 0

    def test_victim_selection_prefers_most_remaining(self, meta, app_class):
        from repro.objects import Placement
        host, vault = meta.hosts[0], meta.vaults[0]
        short = meta.create_class("Short",
                                  [Implementation("sparc", "SunOS")],
                                  work_units=10.0)
        long_ = meta.create_class("Long",
                                  [Implementation("sparc", "SunOS")],
                                  work_units=10000.0)
        short.create_instance(Placement(host.loid, vault.loid))
        r_long = long_.create_instance(Placement(host.loid, vault.loid))
        monitor = meta.make_monitor(min_load_advantage=0.5)
        victims = monitor._pick_victims(host)
        assert victims[0] == r_long.loid

    def test_rebalance_updates_collection_view(self, meta, placed):
        heavy, loid, src = placed
        monitor = meta.make_monitor(min_load_advantage=0.5)
        monitor.watch(src, UnixHost.LOAD_EVENT)
        src.machine.set_background_load(20.0)
        src.reassess()
        assert len(monitor.stats.reports) == monitor.stats.reschedules_attempted
