"""Tests for testbeds, application models, and arrival generators."""

import math

import pytest

from repro.sim import Constant, Exponential
from repro.workload import (
    ArrivalProcess,
    BagOfTasks,
    ParameterStudy,
    RequestStream,
    StencilApplication,
    TestbedSpec,
    build_testbed,
    multi_domain,
    small_campus,
)


class TestTestbeds:
    def test_small_campus_shape(self):
        meta = small_campus(seed=1, hosts=6)
        assert len(meta.hosts) == 6
        assert len(meta.vaults) == 1
        assert len(meta.topology.domains()) == 1
        assert len(meta.collection) == 6

    def test_multi_domain_shape(self):
        meta = multi_domain(n_domains=3, hosts_per_domain=4, seed=2)
        assert len(meta.hosts) == 12
        assert len(meta.vaults) == 3
        domains = {h.domain for h in meta.hosts}
        assert len(domains) == 3

    def test_same_seed_same_testbed(self):
        a = multi_domain(seed=7, dynamics=False)
        b = multi_domain(seed=7, dynamics=False)
        sa = [(h.machine.name, h.machine.spec.arch, h.machine.spec.speed)
              for h in a.hosts]
        sb = [(h.machine.name, h.machine.spec.arch, h.machine.spec.speed)
              for h in b.hosts]
        assert sa == sb

    def test_platform_mix(self):
        meta = build_testbed(TestbedSpec(n_domains=1, hosts_per_domain=9,
                                         platform_mix=3,
                                         background_load_mean=0.0))
        archs = {h.machine.spec.arch for h in meta.hosts}
        assert len(archs) == 3

    def test_batch_cluster_spec(self):
        meta = build_testbed(TestbedSpec(
            n_domains=2, hosts_per_domain=2, background_load_mean=0.0,
            batch_clusters={0: "fcfs", 1: "backfill"}))
        from repro.hosts import BatchQueueHost
        clusters = [h for h in meta.hosts if isinstance(h, BatchQueueHost)]
        assert len(clusters) == 2

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            TestbedSpec(n_domains=0)
        with pytest.raises(ValueError):
            TestbedSpec(platform_mix=99)

    def test_spec_xor_kwargs(self):
        with pytest.raises(TypeError):
            build_testbed(TestbedSpec(), n_domains=2)


class TestBagOfTasks:
    def test_run_to_completion(self):
        meta = small_campus(seed=4, dynamics=False)
        app = BagOfTasks(meta, "bag", n_tasks=6, work_units=50.0)
        sched = meta.make_scheduler("random")
        report = app.run(sched)
        assert report.ok
        assert report.scheduled == 6
        assert report.completed == 6
        assert report.makespan > 0
        assert not math.isnan(report.makespan)

    def test_work_distribution_sampled(self):
        meta = small_campus(seed=4, dynamics=False)
        app = BagOfTasks(meta, "varied", n_tasks=5,
                         work_dist=Exponential(100.0))
        sched = meta.make_scheduler("random")
        outcome = sched.run(app.requests())
        works = {app.class_obj.get_instance(l).attributes.get("work_units")
                 for l in outcome.created}
        assert len(works) > 1  # sampled, not constant

    def test_no_wait_mode(self):
        meta = small_campus(seed=4, dynamics=False)
        app = BagOfTasks(meta, "nw", n_tasks=2, work_units=50.0)
        report = app.run(meta.make_scheduler("random"), wait=False)
        assert report.ok and report.completed == 0

    def test_validation(self):
        meta = small_campus(seed=4)
        with pytest.raises(ValueError):
            BagOfTasks(meta, "bad", n_tasks=0)


class TestParameterStudy:
    def test_heavy_tailed_work(self):
        meta = small_campus(seed=5, dynamics=False)
        study = ParameterStudy(meta, "sweep", n_points=12, base_work=10.0,
                               tail_alpha=1.5)
        outcome = meta.make_scheduler("random").run(study.requests())
        assert outcome.ok
        works = [study.class_obj.get_instance(l).attributes["work_units"]
                 for l in outcome.created]
        assert min(works) >= 10.0  # Pareto xm
        assert max(works) > min(works)


class TestStencilApp:
    def test_comm_cost_reported_and_execution_completes(self):
        meta = multi_domain(n_domains=2, hosts_per_domain=6, seed=6,
                            dynamics=False)
        app = StencilApplication(meta, "ocean", rows=3, cols=4,
                                 iterations=10, work_per_iter=1.0)
        from repro.scheduler import StencilScheduler
        sched = StencilScheduler(meta.collection, meta.enactor,
                                 meta.transport, rows=3, cols=4,
                                 instances_per_host=2)
        report = app.run(sched)
        assert report.ok
        assert "comm_cost_per_iter" in report.metrics
        assert report.completed == 12

    def test_stencil_beats_random_on_comm_cost(self):
        meta = multi_domain(n_domains=3, hosts_per_domain=6, seed=7,
                            dynamics=False)
        from repro.scheduler import StencilScheduler
        app1 = StencilApplication(meta, "ocean1", rows=3, cols=4,
                                  iterations=5)
        smart = StencilScheduler(meta.collection, meta.enactor,
                                 meta.transport, rows=3, cols=4,
                                 instances_per_host=1)
        r1 = app1.run(smart, wait=False)
        app2 = StencilApplication(meta, "ocean2", rows=3, cols=4,
                                  iterations=5)
        r2 = app2.run(meta.make_scheduler("random"), wait=False)
        assert r1.ok and r2.ok
        assert (r1.metrics["comm_cost_per_iter"]
                <= r2.metrics["comm_cost_per_iter"])

    def test_grid_validation(self):
        meta = small_campus(seed=8)
        with pytest.raises(ValueError):
            StencilApplication(meta, "bad", rows=0, cols=3)


class TestArrivals:
    def test_arrival_count_bounded(self):
        from repro.sim import Simulator, RngRegistry
        sim = Simulator()
        hits = []
        proc = ArrivalProcess(sim, RngRegistry(1).stream("arr"),
                              Constant(10.0), lambda i: hits.append(sim.now),
                              count=5)
        proc.start()
        sim.run()
        assert len(hits) == 5
        assert hits == [pytest.approx(10.0 * (i + 1)) for i in range(5)]

    def test_stop_time_bounded(self):
        from repro.sim import Simulator, RngRegistry
        sim = Simulator()
        hits = []
        proc = ArrivalProcess(sim, RngRegistry(1).stream("arr"),
                              Constant(10.0), lambda i: hits.append(i),
                              stop_time=35.0)
        proc.start()
        sim.run()
        assert len(hits) == 3

    def test_unbounded_rejected(self):
        from repro.sim import Simulator, RngRegistry
        with pytest.raises(ValueError):
            ArrivalProcess(Simulator(), RngRegistry(1).stream("x"),
                           Constant(1.0), lambda i: None)

    def test_request_stream_records_outcomes(self):
        from repro.scheduler import ObjectClassRequest
        meta = small_campus(seed=9, dynamics=False)
        app = BagOfTasks(meta, "stream", n_tasks=1, work_units=5.0)
        sched = meta.make_scheduler("random")
        stream = RequestStream(meta.sim, sched,
                               [ObjectClassRequest(app.class_obj, 1)],
                               meta.rngs.stream("t", "stream"),
                               mean_interarrival=30.0, count=10)
        stream.start()
        meta.advance(10000.0)
        assert stream.stats.submitted == 10
        assert stream.stats.succeeded + stream.stats.failed == 10
        assert 0.0 <= stream.stats.success_rate <= 1.0
