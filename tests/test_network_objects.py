"""Tests for Network Objects (bandwidth guardians) and bandwidth-aware
scheduling."""

import dataclasses

import pytest

from repro import ObjectClassRequest
from repro.errors import (
    InvalidReservationError,
    PlacementPolicyError,
    ReservationDeniedError,
)
from repro.naming import LOID
from repro.network_objects import (
    BandwidthAwareScheduler,
    LinkRegistry,
    NetworkObject,
)


def make_link(capacity=1000.0, **kw):
    return NetworkObject(LOID(("d", "svc", "link-ab")), "a", "b",
                         capacity=capacity, **kw)


class TestBandwidthReservations:
    def test_grant_within_capacity(self):
        link = make_link(1000.0)
        tok = link.reserve_bandwidth(600.0, now=0.0, duration=100.0)
        assert link.check_bandwidth(tok, now=50.0)
        assert link.available_at(50.0) == pytest.approx(400.0)

    def test_capacity_enforced(self):
        link = make_link(1000.0)
        link.reserve_bandwidth(700.0, now=0.0, duration=100.0)
        with pytest.raises(ReservationDeniedError):
            link.reserve_bandwidth(400.0, now=0.0, duration=100.0)
        # but a smaller request fits
        link.reserve_bandwidth(300.0, now=0.0, duration=100.0)
        assert link.denials == 1

    def test_disjoint_windows_reuse_capacity(self):
        link = make_link(1000.0)
        link.reserve_bandwidth(1000.0, now=0.0, duration=50.0)
        tok = link.reserve_bandwidth(1000.0, now=0.0, duration=50.0,
                                     start=60.0)
        assert tok.start == 60.0

    def test_overlapping_boundary_windows(self):
        link = make_link(1000.0)
        link.reserve_bandwidth(800.0, now=0.0, duration=100.0, start=50.0)
        # window [0, 60) overlaps [50, 150): only 200 free at t=50
        with pytest.raises(ReservationDeniedError):
            link.reserve_bandwidth(300.0, now=0.0, duration=60.0)
        link.reserve_bandwidth(200.0, now=0.0, duration=60.0)

    def test_release_frees_bandwidth(self):
        link = make_link(1000.0)
        tok = link.reserve_bandwidth(1000.0, now=0.0, duration=100.0)
        link.release_bandwidth(tok, now=10.0)
        assert not link.check_bandwidth(tok, now=10.0)
        link.reserve_bandwidth(1000.0, now=10.0, duration=10.0)

    def test_token_forgery_detected(self):
        link = make_link()
        tok = link.reserve_bandwidth(100.0, now=0.0, duration=10.0)
        forged = dataclasses.replace(tok, bandwidth=1e9)
        assert not link.check_bandwidth(forged, now=0.0)
        other = make_link()
        with pytest.raises(InvalidReservationError):
            other.release_bandwidth(tok, now=0.0)

    def test_expiry(self):
        link = make_link()
        tok = link.reserve_bandwidth(100.0, now=0.0, duration=10.0)
        assert link.check_bandwidth(tok, now=9.9)
        assert not link.check_bandwidth(tok, now=10.0)

    def test_policy_refusal(self):
        link = make_link(refused_domains=["evil"])
        with pytest.raises(PlacementPolicyError):
            link.reserve_bandwidth(10.0, now=0.0, duration=10.0,
                                   requester_domain="evil")

    def test_validation(self):
        link = make_link()
        with pytest.raises(ReservationDeniedError):
            link.reserve_bandwidth(0.0, now=0.0, duration=10.0)
        with pytest.raises(ReservationDeniedError):
            link.reserve_bandwidth(10.0, now=5.0, duration=10.0, start=1.0)
        with pytest.raises(ValueError):
            NetworkObject(LOID(("d", "svc", "bad")), "a", "b",
                          capacity=0.0)

    def test_transfer_time_and_shares(self):
        link = make_link(1000.0, base_latency=0.1)
        assert link.transfer_time(900.0, granted=900.0) == pytest.approx(
            1.1)
        link.reserve_bandwidth(600.0, now=0.0, duration=100.0)
        assert link.effective_share(now=0.0, flows=2) == pytest.approx(
            200.0)
        assert link.utilization_at(0.0) == pytest.approx(0.6)


class TestRegistry:
    def test_between_lookup(self):
        ab = NetworkObject(LOID(("d", "svc", "ab")), "a", "b")
        bc = NetworkObject(LOID(("d", "svc", "bc")), "b", "c")
        reg = LinkRegistry([ab, bc])
        assert reg.between("a", "b") is ab
        assert reg.between("b", "a") is ab
        assert reg.between("b", "c") is bc
        assert reg.between("a", "c") is None
        assert reg.between("a", "a") is None


@pytest.fixture
def commworld(multi):
    """Three-domain testbed plus guarded inter-domain links."""
    reg = LinkRegistry()
    domains = [d.name for d in multi.topology.domains()]
    for i, da in enumerate(domains):
        for db in domains[i + 1:]:
            reg.add(NetworkObject(
                multi.minter.mint("svc", f"link-{da}-{db}"), da, db,
                capacity=1.0e5))
    from repro.workload import implementations_for_all_platforms
    app = multi.create_class("Pipe",
                             implementations_for_all_platforms(),
                             work_units=10.0)
    host_domains = {h.loid: h.domain for h in multi.hosts}
    return multi, reg, app, host_domains


class TestBandwidthAwareScheduler:
    def test_prefers_low_comm_placements(self, commworld):
        meta, reg, app, host_domains = commworld
        sched = BandwidthAwareScheduler(
            meta.collection, meta.enactor, meta.transport,
            links=reg, host_domains=host_domains,
            pair_traffic=5.0e4, n_variants=4)
        rl = sched.compute_schedule([ObjectClassRequest(app, 4)])
        entries = rl.masters[0].entries
        chosen_penalty = sched.comm_penalty(entries, meta.now)
        # the chosen candidate is no worse than any retained variant
        for variant in rl.masters[0].variants:
            alt = rl.masters[0].resolve(variant)
            assert chosen_penalty <= sched.comm_penalty(alt, meta.now)

    def test_end_to_end_with_bandwidth_coallocation(self, commworld):
        meta, reg, app, host_domains = commworld
        sched = BandwidthAwareScheduler(
            meta.collection, meta.enactor, meta.transport,
            links=reg, host_domains=host_domains,
            pair_traffic=2.0e4)
        outcome = sched.run([ObjectClassRequest(app, 4)])
        assert outcome.ok
        plan = sched.allocate_bandwidth(
            outcome.feedback.reserved_entries, duration=600.0)
        # demand exists only if the placement crossed domains
        for link_loid, demand in plan.demands.items():
            link = next(l for l in reg.all_links()
                        if l.loid == link_loid)
            assert link.allocated_at(meta.now) >= demand

    def test_allocation_is_all_or_nothing(self, commworld):
        meta, reg, app, host_domains = commworld
        # drain one link so a multi-link plan must fail midway
        sched = BandwidthAwareScheduler(
            meta.collection, meta.enactor, meta.transport,
            links=reg, host_domains=host_domains,
            pair_traffic=6.0e4)
        # forced cross-domain chain over all three domains
        hosts = []
        for d in ("dom0", "dom1", "dom2"):
            hosts.append(next(h for h in meta.hosts if h.domain == d))
        from repro.schedule import ScheduleMapping
        entries = [ScheduleMapping(app.loid, h.loid,
                                   h.get_compatible_vaults()[0])
                   for h in hosts]
        # exhaust the dom1-dom2 link
        link12 = reg.between("dom1", "dom2")
        link12.reserve_bandwidth(link12.capacity, now=meta.now,
                                 duration=1e6)
        with pytest.raises(ReservationDeniedError):
            sched.allocate_bandwidth(entries, duration=100.0)
        # the dom0-dom1 grant was rolled back
        link01 = reg.between("dom0", "dom1")
        assert link01.allocated_at(meta.now) == 0.0

    def test_traffic_matrix_overrides_chain(self, commworld):
        meta, reg, app, host_domains = commworld
        sched = BandwidthAwareScheduler(
            meta.collection, meta.enactor, meta.transport,
            links=reg, host_domains=host_domains,
            traffic_matrix={(0, 3): 1.0e4})
        hosts = [h for h in meta.hosts[:4]]
        from repro.schedule import ScheduleMapping
        entries = [ScheduleMapping(app.loid, h.loid,
                                   h.get_compatible_vaults()[0])
                   for h in hosts]
        pairs = sched._pairs(len(entries))
        assert pairs == {(0, 3): 1.0e4}
