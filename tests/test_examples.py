"""Smoke tests: every shipped example runs to completion and prints its
expected headline."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(
        f"example_{name.removesuffix('.py')}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "4/4 objects completed" in out
        assert "/hosts/uva-ws0" in out

    def test_custom_scheduler(self, capsys):
        out = run_example("custom_scheduler.py", capsys)
        assert "placed: True" in out
        assert "mean price paid" in out

    def test_migration_demo(self, capsys):
        out = run_example("migration_demo.py", capsys)
        assert "enabled" in out and "disabled" in out
        assert "migrations" in out

    def test_ocean_simulation(self, capsys):
        out = run_example("ocean_simulation.py", capsys)
        assert "stencil-aware" in out
        assert "comm cost/iter" in out

    def test_bandwidth_pipeline(self, capsys):
        out = run_example("bandwidth_pipeline.py", capsys)
        assert "bandwidth-aware" in out
        assert "bandwidth tokens" in out

    def test_cost_market(self, capsys):
        out = run_example("cost_market.py", capsys)
        assert "budget+premium" in out
        assert "unbounded" in out

    @pytest.mark.slow
    def test_parameter_study(self, capsys):
        out = run_example("parameter_study.py", capsys)
        assert "central queue only" in out
