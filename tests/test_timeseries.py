"""Unit tests for windowed time-series telemetry (repro.obs.timeseries).

Covers per-kind window semantics (counter delta/rate, gauge-last,
histogram bucket deltas + fresh exemplars), the bounded ring, flush,
byte-stable JSONL export, sparklines, the NullMetricsRegistry parity
contract, and sampler no-ops under NULL_METRICS.
"""

import json

import pytest

from repro.obs import (
    NULL_METRICS,
    MetricsRegistry,
    MetricsSampler,
    NullMetricsRegistry,
    Window,
    series_key,
    sparkline,
    windows_to_jsonl,
)
from repro.sim.kernel import Simulator


def make_sampler(window=10.0, max_windows=256):
    sim = Simulator()
    reg = MetricsRegistry(clock=lambda: sim.now)
    sampler = MetricsSampler(sim, reg, window=window,
                             max_windows=max_windows).start()
    return sim, reg, sampler


class TestSeriesKey:
    def test_bare_name(self):
        assert series_key("m", {}) == "m"

    def test_labels_sorted(self):
        assert series_key("m", {"b": "2", "a": "1"}) == 'm{a="1",b="2"}'


class TestWindowSemantics:
    def test_counter_delta_total_rate(self):
        sim, reg, sampler = make_sampler(window=10.0)
        reg.count("reqs_total", n=3, path="scan")
        sim.run_until(10.0)
        reg.count("reqs_total", n=5, path="scan")
        sim.run_until(20.0)
        rows = [w.get('reqs_total{path="scan"}') for w in sampler.windows]
        assert [r["delta"] for r in rows] == [3.0, 5.0]
        assert [r["total"] for r in rows] == [3.0, 8.0]
        assert rows[1]["rate"] == pytest.approx(0.5)

    def test_gauge_reads_last_value(self):
        sim, reg, sampler = make_sampler(window=10.0)
        reg.set_gauge("depth", 4)
        reg.set_gauge("depth", 9)
        sim.run_until(10.0)
        assert sampler.windows[0].get("depth")["value"] == 9.0

    def test_histogram_bucket_deltas_are_noncumulative(self):
        sim, reg, sampler = make_sampler(window=10.0)
        for x in (0.5, 1.5, 1.5):
            reg.observe("lat", x, buckets=(1.0, 2.0))
        sim.run_until(10.0)
        reg.observe("lat", 0.7, buckets=(1.0, 2.0))
        sim.run_until(20.0)
        first = sampler.windows[0].get("lat")
        second = sampler.windows[1].get("lat")
        assert first["count"] == 3 and first["sum"] == pytest.approx(3.5)
        assert first["buckets"] == [["1.0", 1], ["2.0", 2], ["+Inf", 0]]
        # the second window sees only its own observation
        assert second["count"] == 1
        assert second["buckets"] == [["1.0", 1], ["2.0", 0], ["+Inf", 0]]

    def test_fresh_exemplars_only(self):
        sim, reg, sampler = make_sampler(window=10.0)
        reg.set_exemplar_provider(lambda: "t1")
        reg.observe("lat", 0.5, buckets=(1.0,))
        sim.run_until(10.0)
        sim.run_until(20.0)  # nothing new observed
        reg.set_exemplar_provider(lambda: "t2")
        reg.observe("lat", 0.6, buckets=(1.0,))
        sim.run_until(30.0)
        exemplars = [w.get("lat")["exemplars"] for w in sampler.windows]
        assert exemplars == [["t1"], [], ["t2"]]

    def test_matching_filters_by_label_subset(self):
        window = Window(index=0, start=0.0, end=1.0, series={
            'm{a="1",b="2"}': {"name": "m", "kind": "counter",
                               "labels": {"a": "1", "b": "2"}},
            'm{a="2",b="2"}': {"name": "m", "kind": "counter",
                               "labels": {"a": "2", "b": "2"}},
            "other": {"name": "other", "kind": "counter", "labels": {}},
        })
        assert len(window.matching("m")) == 2
        assert len(window.matching("m", {"a": "1"})) == 1
        assert window.matching("m", {"a": "3"}) == []


class TestSamplerLifecycle:
    def test_ring_is_bounded_and_counts_drops(self):
        sim, reg, sampler = make_sampler(window=1.0, max_windows=3)
        sim.run_until(10.0)
        assert len(sampler) == 3
        assert sampler.dropped == 7
        assert [w.index for w in sampler.windows] == [7, 8, 9]

    def test_flush_closes_partial_window(self):
        sim, reg, sampler = make_sampler(window=10.0)
        sim.run_until(10.0)
        reg.count("c")
        sim.run_until(14.0)
        window = sampler.flush()
        assert window is not None
        assert (window.start, window.end) == (10.0, 14.0)
        assert window.get("c")["delta"] == 1.0
        # flushing again on the same boundary is a no-op
        assert sampler.flush() is None

    def test_stop_halts_sampling(self):
        sim, reg, sampler = make_sampler(window=10.0)
        sim.run_until(10.0)
        sampler.stop()
        sim.run_until(50.0)
        assert len(sampler) == 1

    def test_column_extracts_per_window_values(self):
        sim, reg, sampler = make_sampler(window=10.0)
        reg.count("c", n=2)
        sim.run_until(10.0)
        sim.run_until(20.0)
        reg.count("c", n=6)
        sim.run_until(30.0)
        assert sampler.column("c", "delta") == [2.0, 0.0, 6.0]

    def test_rejects_bad_parameters(self):
        sim = Simulator()
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            MetricsSampler(sim, reg, window=0.0)
        with pytest.raises(ValueError):
            MetricsSampler(sim, reg, max_windows=0)

    def test_jsonl_export_is_byte_stable(self):
        def run():
            sim, reg, sampler = make_sampler(window=5.0)
            reg.count("c", n=2, path="scan")
            reg.observe("lat", 0.5, buckets=(1.0,))
            sim.run_until(12.0)
            sampler.flush()
            return windows_to_jsonl(sampler.windows)

        text = run()
        assert text == run()
        lines = text.strip().split("\n")
        assert len(lines) == 3
        for line in lines:
            json.loads(line)  # every line is valid standalone JSON


class TestSparkline:
    def test_scales_to_max(self):
        line = sparkline([0.0, 1.0, 2.0, 4.0])
        assert len(line) == 4
        assert line[0] == " "          # zero renders as a gap
        assert line[-1] == "@"          # max renders at full height

    def test_width_keeps_most_recent(self):
        assert len(sparkline([1.0] * 10, width=4)) == 4

    def test_degenerate_inputs(self):
        assert sparkline([]) == ""
        assert sparkline([0.0, 0.0]) == "  "


class TestNullRegistryParity:
    def test_every_public_registry_attr_exists_on_null(self):
        """NullMetricsRegistry must be substitutable anywhere a
        MetricsRegistry flows — every public method/attribute of the
        real registry exists (and is callable where callable)."""
        real = MetricsRegistry()
        null = NullMetricsRegistry()
        for attr in dir(real):
            if attr.startswith("_"):
                continue
            assert hasattr(null, attr), (
                f"NullMetricsRegistry lacks {attr!r}")
            if callable(getattr(real, attr)):
                assert callable(getattr(null, attr)), (
                    f"NullMetricsRegistry.{attr} is not callable")

    def test_sampler_over_null_registry_is_a_no_op(self):
        sim = Simulator()
        sampler = MetricsSampler(sim, NULL_METRICS, window=5.0).start()
        NULL_METRICS.count("c", n=5)
        NULL_METRICS.observe("lat", 0.5)
        sim.run_until(20.0)
        sampler.flush()
        assert all(w.series == {} for w in sampler.windows)

    def test_slo_eval_over_null_windows_is_healthy(self):
        from repro.obs import default_legion_slos, evaluate_slos
        sim = Simulator()
        sampler = MetricsSampler(sim, NULL_METRICS, window=5.0).start()
        sim.run_until(20.0)
        results = evaluate_slos(default_legion_slos(), sampler.windows)
        for result in results:
            assert result.total == 0
            assert not result.exhausted
            assert result.compliance == 1.0
            assert result.alerts == []
