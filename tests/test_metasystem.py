"""Tests for the Metasystem facade and the Fig. 1 core-object hierarchy."""

import pytest

from repro import Implementation, MachineSpec, Metasystem, ObjectClassRequest
from repro.errors import UnknownObjectError


class TestBootstrap:
    def test_context_space_bindings(self, meta, app_class):
        assert meta.context.exists("/etc/Collection")
        assert meta.context.exists("/hosts/ws0")
        assert meta.context.exists("/vaults/uva-vault")
        assert meta.context.exists("/classes/App")

    def test_fig1_hierarchy_host_and_vault_guardians(self, meta, app_class):
        # every host/vault/class LOID resolves to a live object
        for path, loid in meta.context.walk():
            assert meta.resolve(loid) is not None, path
        # instance LOIDs nest under their class (Fig. 1 tree shape)
        result = app_class.create_instance()
        assert result.ok
        assert result.loid.is_descendant_of(app_class.loid)

    def test_resolver_strict(self, meta):
        with pytest.raises(UnknownObjectError):
            meta.resolve_strict(meta.minter.mint("host", "ghost"))

    def test_host_by_name(self, meta):
        host = meta.host_by_name("ws0")
        assert host.machine.name == "ws0"

    def test_hosts_joined_collection_at_creation(self, meta):
        assert len(meta.collection) == len(meta.hosts)

    def test_vault_added_after_host_becomes_compatible(self):
        m = Metasystem(seed=1)
        m.add_domain("d")
        host = m.add_unix_host("h0", "d",
                               MachineSpec(arch="sparc", os_name="SunOS"))
        assert host.get_compatible_vaults() == []
        vault = m.add_vault("d")
        assert vault.loid in host.get_compatible_vaults()
        # and the Collection record reflects it immediately
        record = m.collection.record_of(host.loid)
        assert str(vault.loid) in record.attributes["compatible_vaults"]

    def test_unknown_scheduler_kind(self, meta):
        with pytest.raises(ValueError):
            meta.make_scheduler("magic")

    def test_unknown_queue_kind(self, meta):
        with pytest.raises(ValueError):
            meta.add_batch_host("c", "uva", queue_kind="mystery")

    def test_advance_moves_clock(self, meta):
        t0 = meta.now
        meta.advance(123.0)
        assert meta.now == t0 + 123.0

    def test_snapshot_loads(self, meta):
        loads = meta.snapshot_loads()
        assert set(loads) == {"ws0", "ws1", "ws2", "ws3"}


class TestServicePlacement:
    def test_place_collection_charges_queries(self, meta, app_class):
        sched_free = meta.make_scheduler("random")
        t0 = meta.now
        sched_free.viable_hosts(app_class)
        free_cost = meta.now - t0

        meta.place_collection("uva")
        sched = meta.make_scheduler("random")
        t0 = meta.now
        sched.viable_hosts(app_class)
        charged_cost = meta.now - t0
        assert charged_cost > free_cost

    def test_place_enactor(self, meta):
        loc = meta.place_enactor("uva")
        assert meta.enactor.location == loc
        assert meta.enactor.coallocator.src == loc


class TestDeterminism:
    def build_and_run(self, seed):
        m = Metasystem(seed=seed)
        m.add_domain("d")
        for i in range(4):
            m.add_unix_host(f"h{i}", "d",
                            MachineSpec(arch="sparc", os_name="SunOS"))
        m.add_vault("d")
        app = m.create_class("A", [Implementation("sparc", "SunOS")],
                             work_units=100.0)
        sched = m.make_scheduler("random")
        outcome = sched.run([ObjectClassRequest(app, 3)])
        hosts = sorted(str(x) for x in
                       (mp.host_loid for mp in
                        outcome.feedback.reserved_entries))
        return hosts, m.now

    def test_identical_seeds_identical_runs(self):
        assert self.build_and_run(5) == self.build_and_run(5)

    def test_different_seeds_differ(self):
        # times will differ even if the host picks happen to coincide
        a = self.build_and_run(1)
        b = self.build_and_run(2)
        assert a != b
