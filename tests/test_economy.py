"""Tests for the computational-economy layer: budgets, market, auctions,
economic scheduling, and the seeded campaign runner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Implementation, MachineSpec, Metasystem, ObjectClassRequest
from repro.accounting.ledger import ChargeRecord
from repro.economy import (
    Ask,
    BudgetManager,
    SealedBidAuction,
    run_economy,
    run_economy_comparison,
)
from repro.errors import BudgetExceededError
from repro.workload import wait_for_completion


def charge(instance="i0", cls="c0", cycles=10.0, price=0.01):
    return ChargeRecord(time=0.0, host_loid="h0", instance_loid=instance,
                        class_loid=cls, cycles=cycles,
                        price_per_cycle=price)


class TestBudgetManager:
    def test_hold_release_math(self):
        budgets = BudgetManager()
        account = budgets.create_user("a", budget=10.0, deadline=100.0)
        budgets.hold("a", 4.0)
        assert account.committed == pytest.approx(4.0)
        assert account.available == pytest.approx(6.0)
        budgets.release("a", 4.0)
        assert account.committed == pytest.approx(0.0)
        assert account.refunded == pytest.approx(4.0)

    def test_hold_past_budget_rejected(self):
        budgets = BudgetManager()
        budgets.create_user("a", budget=10.0, deadline=100.0)
        budgets.hold("a", 9.0)
        with pytest.raises(BudgetExceededError):
            budgets.hold("a", 2.0)
        assert budgets.rejections == 1
        assert budgets.account("a").committed == pytest.approx(9.0)

    def test_bound_charge_pays_cleared_rate_and_frees_hold(self):
        budgets = BudgetManager()
        account = budgets.create_user("a", budget=10.0, deadline=100.0)
        budgets.hold("a", 2.0)               # rate 0.02 x 100 work
        budgets.bind_instance("i0", "a", rate=0.02, hold=2.0)
        # metered at a *different* host price: the bound rate must win
        budgets.on_charge(charge(instance="i0", cycles=100.0, price=0.05))
        assert account.spent == pytest.approx(2.0)   # 100 x 0.02
        assert account.committed == pytest.approx(0.0)
        assert budgets.binding_of("i0") == ("a", 0.02)

    def test_unbound_charge_attributed_via_class(self):
        budgets = BudgetManager()
        account = budgets.create_user("a", budget=10.0, deadline=100.0)
        budgets.register_class("c0", "a")
        budgets.on_charge(charge(cls="c0", cycles=50.0, price=0.02))
        assert account.spent == pytest.approx(1.0)

    def test_unknown_class_charge_ignored(self):
        budgets = BudgetManager()
        budgets.create_user("a", budget=10.0, deadline=100.0)
        budgets.on_charge(charge(cls="mystery"))
        assert budgets.total_spent == pytest.approx(0.0)

    def test_ensure_is_idempotent(self):
        budgets = BudgetManager()
        first = budgets.ensure("a", budget=10.0, deadline=100.0)
        again = budgets.ensure("a", budget=99.0, deadline=1.0)
        assert again is first
        assert again.budget == pytest.approx(10.0)
        with pytest.raises(ValueError):
            budgets.create_user("a")


class TestAuction:
    def test_second_price_pays_runner_up(self):
        auction = SealedBidAuction(pricing="second")
        result = auction.clear([Ask("h0", 0.01), Ask("h1", 0.03)])
        assert str(result.winner.host_loid) == "h0"
        assert result.clearing_price == pytest.approx(0.03)
        assert result.min_ask == pytest.approx(0.01)

    def test_first_price_pays_own_ask(self):
        auction = SealedBidAuction(pricing="first")
        result = auction.clear([Ask("h0", 0.01), Ask("h1", 0.03)])
        assert result.clearing_price == pytest.approx(0.01)

    def test_single_bidder_pays_own_ask(self):
        auction = SealedBidAuction(pricing="second")
        result = auction.clear([Ask("h0", 0.02)])
        assert result.clearing_price == pytest.approx(0.02)

    def test_ceiling_excludes_and_caps(self):
        auction = SealedBidAuction(pricing="second")
        result = auction.clear([Ask("h0", 0.01), Ask("h1", 0.50)],
                               ceiling=0.10)
        # the runner-up's ask exceeds the ceiling, so it never enters the
        # round: the sole feasible bidder pays its own ask
        assert result.n_asks == 1
        assert result.clearing_price == pytest.approx(0.01)
        empty = auction.clear([Ask("h0", 0.20)], ceiling=0.10)
        assert not empty.cleared

    def test_tie_breaks_by_loid_string(self):
        auction = SealedBidAuction(pricing="second")
        result = auction.clear([Ask("hB", 0.01), Ask("hA", 0.01)])
        assert str(result.winner.host_loid) == "hA"

    def test_efficiency_tracks_second_price_premium(self):
        auction = SealedBidAuction(pricing="second")
        auction.clear([Ask("h0", 0.01), Ask("h1", 0.02)])
        assert auction.efficiency == pytest.approx(0.5)
        assert auction.to_dict()["cleared_rounds"] == 1

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 99),
                              st.floats(0.001, 1.0, allow_nan=False)),
                    min_size=1, max_size=8),
           st.floats(0.001, 2.0, allow_nan=False))
    def test_clearing_is_deterministic_and_bounded(self, raw, ceiling):
        asks = [Ask(f"h{i}", round(p, 6)) for i, p in raw]
        a = SealedBidAuction(pricing="second").clear(asks, ceiling=ceiling)
        b = SealedBidAuction(pricing="second").clear(asks, ceiling=ceiling)
        feasible = [x for x in asks if x.price <= ceiling]
        if not feasible:
            assert not a.cleared and not b.cleared
            return
        best = min(feasible, key=lambda x: x.sort_key)
        assert a.winner.host_loid == b.winner.host_loid \
            == best.host_loid
        assert a.clearing_price == b.clearing_price
        assert best.price <= a.clearing_price <= ceiling + 1e-9


class TestBudgetInvariant:
    @settings(max_examples=60, deadline=None)
    @given(st.floats(1.0, 100.0, allow_nan=False),
           st.lists(st.tuples(st.floats(0.0, 50.0, allow_nan=False),
                              st.floats(0.0, 1.0, allow_nan=False),
                              st.sampled_from(["release", "charge"])),
                    max_size=20))
    def test_spend_plus_holds_never_exceed_budget(self, budget, ops):
        """The economy's money conservation law: however holds, refunds,
        and metered charges interleave, ``spent + committed <= budget``
        as long as metered cycles never exceed the held work."""
        budgets = BudgetManager()
        account = budgets.create_user("u", budget=budget, deadline=1e9)
        work = 100.0
        for i, (hold, cycles_frac, action) in enumerate(ops):
            try:
                budgets.hold("u", hold)
            except BudgetExceededError:
                continue
            if action == "release":
                budgets.release("u", hold)
            else:
                rate = hold / work
                budgets.bind_instance(f"i{i}", "u", rate=rate, hold=hold)
                budgets.on_charge(charge(instance=f"i{i}",
                                         cycles=cycles_frac * work,
                                         price=rate * 3.0))
            assert (account.spent + account.committed
                    <= account.budget + 1e-6)
            assert account.overrun == pytest.approx(0.0)


@pytest.fixture
def econ():
    """Cheap-slow and pricey-fast hosts under a jitter-free market."""
    meta = Metasystem(seed=11)
    meta.add_domain("d")
    for i, speed in enumerate([1.0, 1.0, 4.0, 4.0]):
        meta.add_unix_host(f"h{i}", "d",
                           MachineSpec(arch="sparc", os_name="SunOS",
                                       speed=speed),
                           slots=4)
    meta.add_vault("d")
    suite = meta.enable_economy(repricing_jitter=0.0)
    app = meta.create_class("A", [Implementation("sparc", "SunOS")],
                            work_units=100.0)
    return meta, app, suite


class TestMarket:
    def test_speed_premium_prices_hardware(self, econ):
        meta, _app, suite = econ
        slow, fast = meta.hosts[0], meta.hosts[2]
        assert suite.market.base_ask_for(slow) == pytest.approx(0.01)
        assert suite.market.base_ask_for(fast) == pytest.approx(0.04)
        assert slow.price == pytest.approx(0.01)

    def test_ask_published_into_collection(self, econ):
        meta, _app, _suite = econ
        record = meta.collection.query("$host_ask_price <= 0.01")[0]
        assert record.get("host_ask_price") == pytest.approx(0.01)

    def test_reprice_tracks_load_with_floor(self, econ):
        meta, _app, suite = econ
        host = meta.hosts[0]
        host.machine.load_walk = None
        host.machine.set_background_load(2.0)
        suite.market.reprice()
        # 0.01 x (1 + 0.25 x 2.0), no jitter
        assert host.price == pytest.approx(0.015)
        host.machine.set_background_load(0.0)
        suite.market.reprice()
        assert host.price >= 0.005  # floored at base/2
        assert host.price == pytest.approx(0.01)

    def test_note_award_bumps_ask_not_billing_rate(self, econ):
        meta, _app, suite = econ
        host = meta.hosts[0]
        before = host.price
        suite.market.note_award(host.loid)
        assert host.price == pytest.approx(before)  # metered rate fixed
        assert host.attributes.get("host_ask_price") == \
            pytest.approx(before * 1.25)
        assert suite.market.awards == 1


class TestEconomyScheduler:
    def test_cost_mode_buys_cheapest_feasible(self, econ):
        meta, app, _suite = econ
        sched = meta.make_scheduler("economy", mode="cost", user="alice")
        rl = sched.compute_schedule([ObjectClassRequest(app, 2)])
        cheap = {meta.hosts[0].loid, meta.hosts[1].loid}
        hosts = [m.host_loid for m in rl.masters[0].entries]
        assert set(hosts) <= cheap
        # risk spreading: two awards land on two distinct hosts
        assert len(set(hosts)) == 2

    def test_time_mode_buys_fastest_affordable(self, econ):
        meta, app, _suite = econ
        sched = meta.make_scheduler("economy-time", user="bob")
        rl = sched.compute_schedule([ObjectClassRequest(app, 2)])
        fast = {meta.hosts[2].loid, meta.hosts[3].loid}
        for m in rl.masters[0].entries:
            assert m.host_loid in fast

    def test_tight_deadline_drains_cost_mode_to_fast_hosts(self, econ):
        meta, app, suite = econ
        # 100 units at speed 1 takes 100 s; a 60 s deadline with the
        # default 0.6 safety admits only the 4x hosts (25 s)
        suite.budgets.create_user("carol", budget=100.0, deadline=60.0)
        sched = meta.make_scheduler("economy", mode="cost", user="carol",
                                    deadline_safety=0.6)
        rl = sched.compute_schedule([ObjectClassRequest(app, 1)])
        fast = {meta.hosts[2].loid, meta.hosts[3].loid}
        assert rl.masters[0].entries[0].host_loid in fast

    def test_unaffordable_placement_rejected_and_refunded(self, econ):
        meta, app, suite = econ
        # 0.5 budget / 100 work = 0.005 affordable rate < 0.01 ask
        suite.budgets.create_user("poor", budget=0.5, deadline=1e9)
        sched = meta.make_scheduler("economy", user="poor")
        with pytest.raises(BudgetExceededError):
            sched.compute_schedule([ObjectClassRequest(app, 1)])
        assert suite.budgets.account("poor").committed == \
            pytest.approx(0.0)

    def test_end_to_end_bills_at_cleared_rate(self, econ):
        meta, app, suite = econ
        sched = meta.make_scheduler("economy", mode="cost", user="alice")
        outcome = sched.run([ObjectClassRequest(app, 2)])
        assert outcome.ok
        account = suite.budgets.account("alice")
        assert account.committed > 0  # holds ride until the charge lands
        wait_for_completion(meta, app, outcome.created)
        # reverse-Vickrey: round 1 clears at the other cheap host's 0.01
        # ask; round 2 (risk-spread to the remaining cheap host) pays the
        # fast runner-up's 0.04 — 100 x 0.01 + 100 x 0.04
        assert account.spent == pytest.approx(5.0, rel=1e-3)
        assert account.committed == pytest.approx(0.0)
        assert account.spent <= account.budget

    def test_escalation_raises_ceiling_under_deadline_pressure(self, econ):
        meta, app, suite = econ
        suite.budgets.create_user("dave", budget=100.0, deadline=200.0)
        sched = meta.make_scheduler("economy", user="dave")
        sched.run([ObjectClassRequest(app, 1)])
        assert sched.bid_ceiling_factor() == pytest.approx(1.0 / 1.5)
        meta.advance(150.0)  # past the 0.5 escalation onset
        assert sched.bid_ceiling_factor() > 1.0 / 1.5


class TestCampaign:
    KW = dict(seed=3, users=2, budget=50.0, deadline=600.0, waves=2,
              per_wave=1, work=150.0, wave_interval=60.0, n_domains=2,
              hosts_per_domain=3, platform_mix=2)

    def test_report_is_deterministic(self):
        a = run_economy(**self.KW)
        b = run_economy(**self.KW)
        assert a.to_json() == b.to_json()
        assert a.instances_requested == 4
        assert a.auction is not None

    def test_never_overspends_any_budget(self):
        report = run_economy(**self.KW)
        for user, stats in report.per_user.items():
            assert stats["overrun"] == pytest.approx(0.0)
            assert stats["spent"] <= self.KW["budget"] + 1e-6
        assert report.cost_overrun == pytest.approx(0.0)

    def test_comparison_gate_fields(self):
        cmp = run_economy_comparison(baselines=("random",), **self.KW)
        data = cmp.to_dict()
        assert set(data["reports"]) == {"economy", "random"}
        assert isinstance(data["economy_beats_baselines"], bool)
        assert "random" in data["gate"]
        # baseline runs share the economy's metered world
        assert data["reports"]["random"]["total_cost"] > 0
