"""Tests for implementation selection in mappings (section 3.3 future
work: "this mapping process may also select from among the available
implementations of an object as well")."""

import pytest

from repro import (
    Implementation,
    MachineSpec,
    Metasystem,
    ObjectClassRequest,
    Placement,
)
from repro.scheduler import LoadAwareScheduler
from repro.workload import wait_for_completion


@pytest.fixture
def impl_meta():
    """One platform, two binaries: a generic one and a 3x-tuned one."""
    meta = Metasystem(seed=31)
    meta.add_domain("d")
    for i in range(4):
        meta.add_unix_host(f"h{i}", "d",
                           MachineSpec(arch="sparc", os_name="SunOS"),
                           slots=4)
    meta.add_vault("d")
    generic = Implementation("sparc", "SunOS", relative_speed=1.0)
    tuned = Implementation("sparc", "SunOS", memory_mb=32.0,
                           relative_speed=3.0)
    app = meta.create_class("A", [generic, tuned], work_units=300.0)
    return meta, app, generic, tuned


class TestPinnedImplementation:
    def test_pinned_implementation_speeds_execution(self, impl_meta):
        meta, app, generic, tuned = impl_meta
        host, vault = meta.hosts[0], meta.vaults[0]
        slow = app.create_instance(
            Placement(host.loid, vault.loid, implementation=generic))
        fast = app.create_instance(
            Placement(meta.hosts[1].loid, vault.loid,
                      implementation=tuned))
        assert slow.ok and fast.ok
        n, _ = wait_for_completion(meta, app, [slow.loid, fast.loid])
        assert n == 2
        t_slow = app.get_instance(slow.loid).attributes["completed_at"]
        t_fast = app.get_instance(fast.loid).attributes["completed_at"]
        assert t_fast == pytest.approx(t_slow / 3.0, rel=0.05)

    def test_foreign_implementation_rejected(self, impl_meta):
        meta, app, *_ = impl_meta
        alien_impl = Implementation("sparc", "SunOS", relative_speed=9.0)
        result = app.create_instance(
            Placement(meta.hosts[0].loid, meta.vaults[0].loid,
                      implementation=alien_impl))
        assert not result.ok
        assert "not provided" in result.reason

    def test_platform_mismatch_rejected(self, impl_meta):
        meta, app, generic, _ = impl_meta
        wrong = Implementation("x86", "Linux")
        app.add_implementation(wrong)
        result = app.create_instance(
            Placement(meta.hosts[0].loid, meta.vaults[0].loid,
                      implementation=wrong))
        assert not result.ok
        assert "does not match host platform" in result.reason

    def test_migration_preserves_work_across_speedups(self, impl_meta):
        meta, app, generic, tuned = impl_meta
        host, vault = meta.hosts[0], meta.vaults[0]
        result = app.create_instance(
            Placement(host.loid, vault.loid, implementation=tuned))
        meta.advance(30.0)   # 30s at 3x => 90 of 300 work units done
        report = meta.migrator.migrate(result.loid, meta.hosts[1].loid)
        assert report.ok
        inst = app.get_instance(result.loid)
        # resumed with implementation-neutral remaining work
        assert inst.attributes["work_units"] == pytest.approx(210.0,
                                                              rel=0.05)


class TestSchedulerSelection:
    def test_best_implementation_for(self, impl_meta):
        meta, app, generic, tuned = impl_meta
        sched = meta.make_scheduler("load")
        record = sched.viable_hosts(app)[0]
        best = sched.best_implementation_for(app, record)
        assert best == tuned

    def test_selection_flag_pins_fastest(self, impl_meta):
        meta, app, generic, tuned = impl_meta
        sched = LoadAwareScheduler(meta.collection, meta.enactor,
                                   meta.transport,
                                   select_implementation=True)
        rl = sched.compute_schedule([ObjectClassRequest(app, 2)])
        for mapping in rl.masters[0].entries:
            assert mapping.implementation == tuned

    def test_selection_off_leaves_mapping_unpinned(self, impl_meta):
        meta, app, *_ = impl_meta
        sched = LoadAwareScheduler(meta.collection, meta.enactor,
                                   meta.transport)
        rl = sched.compute_schedule([ObjectClassRequest(app, 2)])
        for mapping in rl.masters[0].entries:
            assert mapping.implementation is None

    def test_end_to_end_selection_beats_default(self, impl_meta):
        meta, app, generic, tuned = impl_meta
        selecting = LoadAwareScheduler(meta.collection, meta.enactor,
                                       meta.transport,
                                       select_implementation=True)
        outcome = selecting.run([ObjectClassRequest(app, 2)])
        assert outcome.ok
        n, t_sel = wait_for_completion(meta, app, outcome.created)
        assert n == 2
        # default path: the Class picks the *first* matching binary
        # (generic); the selecting Scheduler pinned the tuned one
        start = meta.now
        plain = LoadAwareScheduler(meta.collection, meta.enactor,
                                   meta.transport)
        outcome2 = plain.run([ObjectClassRequest(app, 2)])
        assert outcome2.ok
        n2, t_plain = wait_for_completion(meta, app, outcome2.created)
        assert n2 == 2
        assert (t_sel - 0.0) < (t_plain - start)
