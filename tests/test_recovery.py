"""Tests for the recovery layer: request journal, worker leases, the
Supervisor, checkpoint/restore, and game-day campaigns.

The correctness pins from the recovery design:

* journal replay reconstructs the gateway registry and live queue
  byte-identically to a live snapshot, mid-run and at the end;
* a request is owned by at most one lease at any virtual time
  (hypothesis audit over the full interval history), and every
  submitted request reaches exactly one terminal state with exactly
  one ``finish`` journal entry;
* a crashed worker's orphan is re-enqueued exactly once and nothing it
  half-enacted survives as a duplicate placement;
* a cancel that lands after a worker popped the request is honoured at
  claim time instead of being placed anyway (the lazy-cancel race);
* a checkpoint/teardown/restore cycle leaves a seeded game day
  byte-identical to one that never stopped.
"""

import io
import json
from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.faults import make_fault
from repro.chaos.injector import ChaosInjector
from repro.chaos.plan import ChaosPlan
from repro.errors import ChaosError, RecoveryError
from repro.recovery import (
    LeaseTable,
    RecoveryConfig,
    RequestJournal,
    ServiceCheckpoint,
    capture_checkpoint,
    restore_service,
    run_gameday,
    run_gameday_comparison,
)
from repro.recovery.checkpoint import quiescence_blockers
from repro.service import ServiceConfig
from repro.service.request import TERMINAL_STATES
from repro.sim.kernel import grid_delay
from repro.tools import main
from repro.workload.testbed import TestbedSpec, build_testbed


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def build_recovery_service(seed=0, ttl=5.0, heartbeat=2.0, scan=2.0,
                           **cfg):
    """A small testbed with the service tier + recovery layer started."""
    meta = build_testbed(TestbedSpec(
        seed=seed, n_domains=1, hosts_per_domain=3, platform_mix=2,
        background_load_mean=0.2))
    cfg.setdefault("workers", 1)
    cfg.setdefault("queue_cap", 16)
    suite = meta.start_service(
        ServiceConfig(**cfg),
        recovery=RecoveryConfig(lease_ttl=ttl, heartbeat_interval=heartbeat,
                                scan_interval=scan))
    return meta, suite


def journal_events(suite, event, request_id=None):
    return [e for e in suite.journal.entries
            if e.event == event
            and (request_id is None or e.request_id == request_id)]


def assert_states_match(suite):
    """Journal replay must equal the live snapshot byte for byte."""
    live = RequestJournal.snapshot_state(suite.gateway, suite.queue)
    replayed = RequestJournal.replay_state(suite.journal.entries)
    assert json.dumps(live, sort_keys=True) == \
        json.dumps(replayed, sort_keys=True)


class TestGridPhase:
    def test_phase_shifts_grid(self):
        assert grid_delay(0.2, 1.0, phase=0.5) == pytest.approx(0.3)
        assert grid_delay(0.7, 1.0, phase=0.5) == pytest.approx(0.8)

    def test_wakeup_at_phased_point_waits_full_interval(self):
        assert grid_delay(0.5, 1.0, phase=0.5) == pytest.approx(1.0)

    def test_distinct_phases_never_collide(self):
        # the worker-pool stagger: no two workers wake at the same instant
        phases = [(i + 1) * 1.0 / 5 for i in range(4)]
        instants = set()
        for phase in phases:
            t = 0.0
            for _ in range(20):
                t += grid_delay(t, 1.0, phase=phase)
                assert round(t, 9) not in instants
                instants.add(round(t, 9))


class TestJournal:
    def test_unknown_event_rejected(self):
        journal = RequestJournal(lambda: 0.0)
        with pytest.raises(RecoveryError):
            journal.record("vanish", "req-000000")

    def test_replay_unknown_request_raises(self):
        journal = RequestJournal(lambda: 0.0)
        journal.record("enqueue", "req-000009")
        with pytest.raises(RecoveryError):
            RequestJournal.replay(journal.entries)

    def test_replay_matches_live_snapshot_at_every_stage(self):
        meta, suite = build_recovery_service(workers=2)
        for i in range(6):
            suite.gateway.submit(user=f"u{i}", priority=i % 3)
        assert_states_match(suite)  # backlog full, nothing claimed
        meta.advance(1.0)
        assert_states_match(suite)  # some claimed / placing
        meta.advance(90.0)
        assert all(r.terminal for r in suite.gateway.requests.values())
        assert_states_match(suite)  # fully drained

    def test_load_roundtrips_entries(self):
        meta, suite = build_recovery_service()
        suite.gateway.submit(user="u")
        meta.advance(30.0)
        docs = suite.journal.to_dicts()
        fresh = RequestJournal(lambda: 0.0)
        fresh.load(docs)
        assert fresh.to_dicts() == docs


class TestLeaseTable:
    def test_double_grant_raises(self):
        leases = LeaseTable(ttl=5.0)
        leases.grant("req-000000", 0, now=0.0)
        with pytest.raises(RecoveryError):
            leases.grant("req-000000", 1, now=1.0)

    def test_renew_extends_and_stale_renew_is_noop(self):
        leases = LeaseTable(ttl=5.0)
        lease = leases.grant("req-000000", 0, now=0.0)
        leases.renew(lease, now=3.0)
        assert lease.expires_at == pytest.approx(8.0)
        leases.release(lease, now=4.0)
        leases.renew(lease, now=5.0)  # released: must not resurrect
        assert leases.renewals == 1
        assert "req-000000" not in leases.active

    def test_expire_is_identity_guarded(self):
        leases = LeaseTable(ttl=5.0)
        first = leases.grant("req-000000", 0, now=0.0)
        leases.expire(first, now=6.0)
        second = leases.grant("req-000000", 1, now=6.0)
        leases.expire(first, now=7.0)  # stale handle: no-op
        assert leases.active["req-000000"] is second
        assert leases.expirations == 1

    def test_expired_sorted_by_request_id(self):
        leases = LeaseTable(ttl=1.0)
        leases.grant("req-000002", 2, now=0.0)
        leases.grant("req-000001", 1, now=0.0)
        assert [l.request_id for l in leases.expired(now=2.0)] == \
            ["req-000001", "req-000002"]

    def test_late_deposit_queues_for_the_supervisor(self):
        leases = LeaseTable(ttl=1.0)
        lease = leases.grant("req-000000", 0, now=0.0)
        leases.expire(lease, now=2.0)
        outcome = object()
        leases.deposit_effects(lease, outcome)
        assert lease.effects is outcome
        assert leases.late_effects == [lease]

    def test_active_deposit_stays_on_the_lease(self):
        leases = LeaseTable(ttl=10.0)
        lease = leases.grant("req-000000", 0, now=0.0)
        leases.deposit_effects(lease, object())
        assert not leases.late_effects


class TestCancelRace:
    def test_cancel_after_pop_is_honoured_at_claim(self):
        """The lazy-cancel race: a cancel that lands between a worker's
        pop and its claim must finish the request CANCELLED instead of
        being placed anyway."""
        meta, suite = build_recovery_service(workers=1)
        result = suite.gateway.submit(user="u")
        stolen = suite.queue.pop()  # a worker has popped it...
        assert stolen.request_id == result.request_id
        out = suite.gateway.cancel(result.request_id)
        assert out.ok and "cancel pending" in out.detail
        assert stolen.cancel_requested and not stolen.terminal
        assert journal_events(suite, "cancel_flag", result.request_id)
        suite.queue.requeue(stolen)  # hand it back to the real worker
        meta.advance(5.0)
        assert stolen.state == "cancelled"
        assert "cancelled at claim" in stolen.detail

    def test_cancel_while_queued_still_cancels_eagerly(self):
        meta, suite = build_recovery_service(workers=1)
        result = suite.gateway.submit(user="u")
        out = suite.gateway.cancel(result.request_id)
        assert out.ok and out.state == "cancelled"
        assert suite.queue.pop() is None


class TestPerWorkerRetryStreams:
    def test_streams_are_distinct_and_deterministic(self):
        _, first = build_recovery_service(seed=3, workers=2)
        _, second = build_recovery_service(seed=3, workers=2)
        draws_a = [[p.backoff(1) for _ in range(4)]
                   for p in first.pool.retry_policies]
        draws_b = [[p.backoff(1) for _ in range(4)]
                   for p in second.pool.retry_policies]
        assert draws_a == draws_b            # same seed, same traces
        assert draws_a[0] != draws_a[1]      # but per-worker streams
        base = first.pool.config.retry_backoff
        for delay in draws_a[0] + draws_a[1]:
            assert 0.5 * base <= delay < 1.5 * base


class TestOrphanRecovery:
    def test_orphan_recovered_exactly_once(self):
        """Kill the only worker mid-request: the lease expires, the
        Supervisor re-enqueues the orphan exactly once, and the revived
        worker finishes it — nothing lost."""
        meta, suite = build_recovery_service(
            workers=1, ttl=5.0, heartbeat=2.0, scan=2.0)
        # count nobody can place: the request stays in flight through
        # retries, so the kill is guaranteed to land mid-claim
        result = suite.gateway.submit(user="u", count=999)
        rid = result.request_id
        meta.sim.schedule_at(2.0, lambda: suite.pool.kill(0))
        meta.sim.schedule_at(12.0, lambda: suite.pool.revive(0))
        meta.advance(90.0)
        request = suite.gateway.requests[rid]
        assert request.terminal
        assert request.requeues == 1
        assert suite.supervisor.recovered == 1
        assert suite.leases.expirations == 1
        assert suite.pool.abandons == 1
        assert len(journal_events(suite, "expire", rid)) == 1
        assert len(journal_events(suite, "requeue", rid)) == 1
        assert len(journal_events(suite, "finish", rid)) == 1
        assert not suite.leases.active

    def test_cancelled_orphan_finishes_cancelled(self):
        meta, suite = build_recovery_service(
            workers=1, ttl=5.0, heartbeat=2.0, scan=2.0)
        result = suite.gateway.submit(user="u", count=999)
        meta.sim.schedule_at(2.0, lambda: suite.pool.kill(0))
        meta.sim.schedule_at(3.0,
                             lambda: suite.gateway.cancel(result.request_id))
        meta.advance(60.0)
        request = suite.gateway.requests[result.request_id]
        assert request.state == "cancelled"
        assert suite.supervisor.cancelled_on_recovery == 1
        assert suite.supervisor.recovered == 0

    def test_reaper_destroys_deposited_placements(self):
        """Effects a dead worker deposited are destroyed on recovery —
        the zombie instances never survive as duplicates."""
        meta, suite = build_recovery_service(workers=1)
        suite.gateway.submit(user="u")
        meta.advance(30.0)  # one real placement to steal instances from
        loids = list(suite.app.instances)
        assert loids

        class FakeOutcome:
            created = loids

        lease = suite.leases.grant("req-zzz", 0, now=meta.now)
        lease.effects = FakeOutcome()
        reaped = suite.supervisor._reap(lease, meta.now)
        assert reaped == len(loids)
        assert not suite.app.instances
        assert suite.supervisor.duplicates_averted == len(loids)
        assert lease.effects is None


class TestUnackedCreateReap:
    def test_reap_reserved_resolves_token_to_instances(self):
        """The lost-ack half of the create protocol: the Class resolves
        a reservation token to whatever it started under it, so the
        Enactor can roll back an instance it never learned the name of."""
        meta = build_testbed(TestbedSpec(
            seed=0, n_domains=1, hosts_per_domain=2, platform_mix=1))
        from repro.objects.class_object import Placement
        from repro.workload.testbed import implementations_for_all_platforms
        app = meta.create_class("reap-app",
                                implementations_for_all_platforms())
        host, vault = meta.hosts[0], meta.vaults[0]
        token = host.make_reservation(vault.loid, app.loid, now=0.0)
        result = app.create_instance(
            Placement(host.loid, vault.loid, reservation_token=token))
        assert result.ok
        assert result.loid in app.instances
        reaped = app.reap_reserved(token, now=1.0)
        assert reaped == [result.loid]
        assert result.loid not in app.instances
        assert app.reap_reserved(token, now=2.0) == []  # exactly once


class TestWorkerFaults:
    def test_crash_and_revive_via_fault_objects(self):
        meta, suite = build_recovery_service(workers=2)
        crash = make_fault("worker_crash", target="worker-1")
        crash.apply(meta)
        assert suite.pool.dead_workers == [1]
        crash.revert(meta)
        assert suite.pool.dead_workers == []
        suite.pool.kill(0)
        make_fault("worker_revive", target="worker-0").apply(meta)
        assert suite.pool.dead_workers == []

    def test_bad_targets_raise(self):
        meta, suite = build_recovery_service(workers=2)
        with pytest.raises(ChaosError):
            make_fault("worker_crash", target="worker-9").apply(meta)
        with pytest.raises(ChaosError):
            make_fault("worker_crash", target="bogus").apply(meta)
        bare = build_testbed(TestbedSpec(
            seed=0, n_domains=1, hosts_per_domain=2, platform_mix=1))
        with pytest.raises(ChaosError):
            make_fault("worker_crash", target="worker-0").apply(bare)

    def test_dead_worker_is_residual_and_force_repaired(self):
        meta, suite = build_recovery_service(workers=2)
        injector = ChaosInjector(meta, ChaosPlan(events=[],
                                                 horizon=1.0)).arm()
        suite.pool.kill(0)
        assert "service worker dead worker-0" in injector.residual_faults()
        injector.teardown()
        assert suite.pool.dead_workers == []
        assert injector.forced_repairs >= 1


class TestCheckpoint:
    def test_capture_refused_when_not_quiescent(self):
        meta, suite = build_recovery_service()
        suite.gateway.submit(user="u")
        blockers = quiescence_blockers(meta)
        assert any("non-terminal" in b for b in blockers)
        with pytest.raises(RecoveryError):
            capture_checkpoint(meta)

    def test_capture_refused_without_recovery_layer(self):
        meta = build_testbed(TestbedSpec(
            seed=0, n_domains=1, hosts_per_domain=3, platform_mix=2))
        meta.start_service(ServiceConfig())
        assert quiescence_blockers(meta) == \
            ["service tier started without the recovery layer"]

    def test_restore_requires_stopped_tier(self):
        meta, suite = build_recovery_service()
        meta.advance(3.0)  # workers reach their idle grid (quiescent)
        checkpoint = capture_checkpoint(meta)
        with pytest.raises(RecoveryError):
            restore_service(meta, checkpoint, suite.app)

    def test_restore_rejects_app_mismatch(self):
        meta, suite = build_recovery_service()
        meta.advance(3.0)
        checkpoint = capture_checkpoint(meta)
        meta.stop_service()
        from repro.workload.testbed import implementations_for_all_platforms
        other = meta.create_class("other-app",
                                  implementations_for_all_platforms())
        with pytest.raises(RecoveryError):
            restore_service(meta, checkpoint, other)

    def test_roundtrip_restores_registry_and_counters(self):
        meta, suite = build_recovery_service(workers=2)
        for i in range(5):
            suite.gateway.submit(user=f"u{i}")
        meta.advance(90.0)
        before = RequestJournal.snapshot_state(suite.gateway, suite.queue)
        placed = suite.pool.placed
        grants = suite.leases.grants
        checkpoint = ServiceCheckpoint.from_json(
            capture_checkpoint(meta).to_json())
        meta.stop_service()
        assert meta.service is None
        restored = restore_service(meta, checkpoint, suite.app)
        after = RequestJournal.snapshot_state(restored.gateway,
                                              restored.queue)
        assert json.dumps(before, sort_keys=True) == \
            json.dumps(after, sort_keys=True)
        assert restored.pool.placed == placed
        assert restored.leases.grants == grants
        assert restored is meta.service and restored is not suite


GAMEDAY_SMALL = dict(
    users=2000, duration=40.0, workers=2, queue_cap=8,
    requests_per_user_hour=3.6, surge_multiplier=8.0, kills=2,
    lease_ttl=6.0, heartbeat_interval=2.0, scan_interval=2.0,
    n_domains=1, hosts_per_domain=4, platform_mix=2, drain_time=600.0)


class TestGameday:
    def test_headline_comparison_passes(self):
        """The BENCH_gameday acceptance: >= 2 worker kills mid-run, zero
        lost, zero duplicates, at least one recovery, and the restored
        run byte-identical to the uninterrupted one."""
        cmp = run_gameday_comparison(seed=7, duration=120.0)
        assert cmp.straight.worker_kills >= 2
        assert cmp.straight.lost == 0
        assert cmp.straight.duplicates == 0
        assert cmp.straight.recovered > 0
        assert cmp.byte_identical
        assert cmp.passed
        assert cmp.restored.checkpoint is not None

    def test_report_roundtrips_to_json(self):
        report = run_gameday(seed=3, **GAMEDAY_SMALL)
        doc = json.loads(report.to_json())
        assert doc["recovery"]["lost"] == report.lost
        assert doc["passed"] == report.passed

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=5, deadline=None)
    def test_no_request_lost_or_duplicated(self, seed):
        """Ground-truth invariants under arbitrary seeds: every request
        terminal (exactly one state), zero duplicates."""
        report = run_gameday(seed=seed, **GAMEDAY_SMALL)
        assert report.lost == 0
        assert report.duplicates == 0
        by_state = report.requests["by_state"]
        assert set(by_state) <= TERMINAL_STATES
        assert sum(by_state.values()) == report.requests["submitted"]


def assert_leases_never_overlap(intervals):
    """Audit the full ownership history: per request, intervals are
    disjoint and at most one is still open."""
    by_rid = defaultdict(list)
    for rid, _worker, granted, ended, _how in intervals:
        by_rid[rid].append((granted, ended))
    for rid, spans in by_rid.items():
        spans.sort(key=lambda s: (s[0], s[1] is None))
        assert sum(1 for _g, e in spans if e is None) <= 1, rid
        for (g1, e1), (g2, _e2) in zip(spans, spans[1:]):
            assert e1 is not None and g2 >= e1 - 1e-9, \
                f"{rid}: overlapping leases {spans}"


class TestLeaseProperties:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           kill_at=st.floats(min_value=0.5, max_value=10.0))
    @settings(max_examples=5, deadline=None)
    def test_at_most_one_lease_per_request_at_any_time(self, seed,
                                                       kill_at):
        """Every request is owned by <= 1 lease at any virtual time, and
        every submission reaches exactly one terminal state with exactly
        one ``finish`` journal entry — under an arbitrary mid-run crash."""
        meta, suite = build_recovery_service(
            seed=seed, workers=2, ttl=4.0, heartbeat=1.5, scan=2.0)
        for i in range(8):
            suite.gateway.submit(user=f"u{i}", priority=i % 2)
        meta.sim.schedule_at(kill_at, lambda: suite.pool.kill(0))
        meta.sim.schedule_at(kill_at + 8.0,
                             lambda: suite.pool.revive(0))
        meta.advance(120.0)
        assert_leases_never_overlap(suite.leases.intervals())
        for rid, request in suite.gateway.requests.items():
            assert request.state in TERMINAL_STATES, rid
            assert len(journal_events(suite, "finish", rid)) == 1, rid
        assert not suite.leases.active
        assert not suite.leases.late_effects


class TestGamedayCLI:
    def test_single_run_smoke(self):
        code, text = run_cli("gameday", "--seed", "7", "--duration",
                             "120")
        assert code == 0
        assert "verdict:  PASS" in text
        assert "worker_kills=2" in text

    def test_compare_restore_writes_ledger(self, tmp_path):
        out_file = tmp_path / "gameday.json"
        code, text = run_cli("gameday", "--seed", "7", "--duration",
                             "120", "--compare-restore", "--out",
                             str(out_file))
        assert code == 0
        assert "restore byte-identical: yes" in text
        doc = json.loads(out_file.read_text())
        assert doc["passed"] and doc["byte_identical"]
        assert doc["reports"]["restored"]["checkpoint"] is not None

    def test_failed_gate_exits_nonzero(self):
        # kills=0 can never satisfy the >= 2 worker-kill gate
        code, text = run_cli("gameday", "--seed", "7", "--duration",
                             "40", "--kills", "0", "--users", "2000",
                             "--rate", "3.6", "--domains", "1",
                             "--hosts", "4", "--platforms", "2")
        assert code == 1
        assert "FAIL" in text
