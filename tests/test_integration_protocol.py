"""Integration test: the full 13-step object-placement protocol (Fig. 3).

Steps (paper section 3):
 1. the Collection is populated with resource descriptions;
 2-3. the Scheduler acquires application knowledge from the classes;
 4-6. the Enactor obtains reservations from Hosts/Vaults in the mapping;
 7-9. after Scheduler confirmation, the Enactor instantiates objects via
      the class objects;
 10-11. success/failure codes flow back to the Scheduler;
 12-13. during execution a resource outcalls the Monitor and rescheduling
      is performed.
"""

import pytest

from repro import Implementation, ObjectClassRequest
from repro.hosts import UnixHost
from repro.workload import multi_domain, wait_for_completion


class TestThirteenStepFlow:
    def test_full_protocol_end_to_end(self):
        meta = multi_domain(n_domains=2, hosts_per_domain=4, seed=13,
                            dynamics=False)
        from repro.workload import implementations_for_all_platforms
        app = meta.create_class("Proto",
                                implementations_for_all_platforms(),
                                work_units=2000.0)

        # step 1: hosts populated the Collection at bootstrap
        assert len(meta.collection) == len(meta.hosts)

        # steps 2-3: the Scheduler queries class + Collection
        scheduler = meta.make_scheduler("irs", n_schedules=3)
        request = [ObjectClassRequest(app, count=4)]
        request_list = scheduler.compute_schedule(request)
        assert request_list.total_mappings() >= 4

        # steps 4-6: reservations
        feedback = meta.enactor.make_reservations(request_list)
        assert feedback.ok
        assert len(feedback.reserved_entries) == 4

        # steps 7-11: confirmation + instantiation + result codes
        result = meta.enactor.enact_schedule(feedback)
        assert result.ok
        assert len(result.created) == 4
        assert all(r.ok for r in result.entry_results.values())

        # steps 12-13: overload a host; the Monitor reschedules
        monitor = meta.make_monitor(min_load_advantage=0.5)
        monitor.watch_all(meta.hosts)
        victim_host = meta.resolve(
            app.get_instance(result.created[0]).host_loid)
        victim_host.machine.set_background_load(50.0)
        victim_host.reassess()
        assert monitor.stats.outcalls_received >= 1
        assert monitor.stats.migrations_succeeded >= 1

        # the world keeps running: all four objects eventually complete
        n, _t = wait_for_completion(meta, app, result.created,
                                    timeout=1e6)
        assert n == 4

    def test_latency_is_charged_throughout(self):
        meta = multi_domain(n_domains=2, hosts_per_domain=3, seed=14,
                            dynamics=False)
        meta.place_collection("dom0")
        from repro.workload import implementations_for_all_platforms
        app = meta.create_class("Cost",
                                implementations_for_all_platforms(),
                                work_units=1.0)
        sched = meta.make_scheduler("random")
        t0, m0 = meta.now, meta.transport.messages_sent
        outcome = sched.run([ObjectClassRequest(app, 3)])
        assert outcome.ok
        assert meta.now > t0
        assert meta.transport.messages_sent > m0
        # scheduling latency is sub-minute for a small system
        assert outcome.elapsed < 60.0

    def test_reservations_respected_under_contention(self):
        """Two schedulers racing for scarce slots: reservations guarantee
        that enactment never oversubscribes a host."""
        meta = multi_domain(n_domains=1, hosts_per_domain=2, seed=15,
                            dynamics=False)
        from repro.workload import implementations_for_all_platforms
        app = meta.create_class("Race",
                                implementations_for_all_platforms(),
                                work_units=500.0)
        total_slots = sum(h.slots for h in meta.hosts)
        s1 = meta.make_scheduler("irs", n_schedules=4)
        s2 = meta.make_scheduler("irs", n_schedules=4,
                                 rng=meta.rngs.stream("s2"))
        placed = 0
        for sched in (s1, s2, s1, s2):
            outcome = sched.run([ObjectClassRequest(app, 2)])
            if outcome.ok:
                placed += len(outcome.created)
        for host in meta.hosts:
            assert len(host.placed) <= host.slots
        assert placed <= total_slots

    def test_partition_failover_to_variant(self):
        """A domain partition makes its hosts unreachable mid-negotiation;
        variants in the other domain rescue the schedule."""
        meta = multi_domain(n_domains=2, hosts_per_domain=3, seed=16,
                            dynamics=False)
        meta.place_enactor("dom0")
        from repro.workload import implementations_for_all_platforms
        app = meta.create_class("Part",
                                implementations_for_all_platforms(),
                                work_units=10.0)
        # partition dom1 away from the enactor's domain
        meta.topology.partition("dom0", "dom1")
        sched = meta.make_scheduler("irs", n_schedules=8)
        outcome = sched.run([ObjectClassRequest(app, 2)])
        if outcome.ok:
            for m in outcome.feedback.reserved_entries:
                host = meta.resolve(m.host_loid)
                assert host.domain == "dom0"

    def test_object_completion_updates_slots_in_collection(self):
        meta = multi_domain(n_domains=1, hosts_per_domain=1, seed=17,
                            dynamics=False)
        from repro.workload import implementations_for_all_platforms
        app = meta.create_class("Slots",
                                implementations_for_all_platforms(),
                                work_units=50.0)
        sched = meta.make_scheduler("random")
        outcome = sched.run([ObjectClassRequest(app, 1)])
        assert outcome.ok
        host = meta.hosts[0]
        free_during = host.free_slots
        wait_for_completion(meta, app, outcome.created)
        meta.advance(meta.reassess_interval * 2)
        record = meta.collection.record_of(host.loid)
        assert record.attributes["host_slots_free"] == host.slots
        assert host.free_slots == free_during + 1
