"""Tests for reservation tokens and the reservation table (Table 2)."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidReservationError, ReservationDeniedError
from repro.hosts import (
    ALL_TYPES,
    ONE_SHOT_SPACE,
    ONE_SHOT_TIME,
    REUSABLE_SPACE,
    REUSABLE_TIME,
    ReservationTable,
    ReservationType,
)
from repro.hosts.reservations import INSTANTANEOUS
from repro.naming import LOID

HOST = LOID(("d", "host", "h"))
VAULT = LOID(("d", "vault", "v"))
CLASS = LOID(("d", "class", "C"))
SECRET = b"test-secret-0123"


def table(slots=4):
    return ReservationTable(HOST, SECRET, slots=slots)


class TestTypes:
    def test_four_types_table2(self):
        names = {t.name for t in ALL_TYPES}
        assert names == {
            "one-shot space", "reusable space",
            "one-shot timesharing", "reusable timesharing"}

    def test_bits(self):
        assert not ONE_SHOT_SPACE.share and not ONE_SHOT_SPACE.reuse
        assert not REUSABLE_SPACE.share and REUSABLE_SPACE.reuse
        assert ONE_SHOT_TIME.share and not ONE_SHOT_TIME.reuse
        assert REUSABLE_TIME.share and REUSABLE_TIME.reuse


class TestTokenIntegrity:
    def test_signature_verifies(self):
        t = table()
        tok = t.make_reservation(VAULT, CLASS, REUSABLE_TIME, now=0.0)
        assert tok.verify(SECRET)
        assert not tok.verify(b"other-secret")

    def test_forged_field_detected(self):
        t = table()
        tok = t.make_reservation(VAULT, CLASS, REUSABLE_TIME, now=0.0,
                                 duration=10.0)
        forged = dataclasses.replace(tok, duration=1e9)
        assert not t.check_reservation(forged, now=0.0)

    def test_unknown_token_not_honored(self):
        t1, t2 = table(), ReservationTable(HOST, b"another-secret-xx")
        tok = t2.make_reservation(VAULT, CLASS, REUSABLE_TIME, now=0.0)
        assert not t1.check_reservation(tok, now=0.0)

    def test_token_encodes_host_and_vault(self):
        tok = table().make_reservation(VAULT, CLASS, REUSABLE_TIME, now=0.0)
        assert tok.host_loid == HOST
        assert tok.vault_loid == VAULT


class TestGranting:
    def test_shared_up_to_slots(self):
        t = table(slots=3)
        for _ in range(3):
            t.make_reservation(VAULT, CLASS, REUSABLE_TIME, now=0.0)
        with pytest.raises(ReservationDeniedError):
            t.make_reservation(VAULT, CLASS, REUSABLE_TIME, now=0.0)
        assert t.grants == 3 and t.denials == 1

    def test_unshared_excludes_everything(self):
        t = table(slots=4)
        t.make_reservation(VAULT, CLASS, ONE_SHOT_SPACE, now=0.0)
        for rtype in ALL_TYPES:
            with pytest.raises(ReservationDeniedError):
                t.make_reservation(VAULT, CLASS, rtype, now=0.0)

    def test_shared_blocks_unshared(self):
        t = table(slots=4)
        t.make_reservation(VAULT, CLASS, REUSABLE_TIME, now=0.0)
        with pytest.raises(ReservationDeniedError):
            t.make_reservation(VAULT, CLASS, REUSABLE_SPACE, now=0.0)

    def test_disjoint_windows_coexist(self):
        t = table(slots=1)
        t.make_reservation(VAULT, CLASS, ONE_SHOT_SPACE, now=0.0,
                           start_time=100.0, duration=50.0)
        tok = t.make_reservation(VAULT, CLASS, ONE_SHOT_SPACE, now=0.0,
                                 start_time=200.0, duration=50.0)
        assert tok.window() == (200.0, 250.0)

    def test_future_reservation_in_past_rejected(self):
        t = table()
        with pytest.raises(ReservationDeniedError):
            t.make_reservation(VAULT, CLASS, REUSABLE_TIME, now=100.0,
                               start_time=50.0)

    def test_nonpositive_duration_rejected(self):
        t = table()
        with pytest.raises(ReservationDeniedError):
            t.make_reservation(VAULT, CLASS, REUSABLE_TIME, now=0.0,
                               duration=0.0)


class TestRedemption:
    def test_one_shot_single_use(self):
        t = table()
        tok = t.make_reservation(VAULT, CLASS, ONE_SHOT_TIME, now=0.0)
        t.redeem(tok, now=1.0)
        assert not t.check_reservation(tok, now=2.0)
        with pytest.raises(InvalidReservationError):
            t.redeem(tok, now=2.0)

    def test_reusable_multi_use(self):
        t = table()
        tok = t.make_reservation(VAULT, CLASS, REUSABLE_TIME, now=0.0)
        for i in range(5):
            t.redeem(tok, now=float(i))
        assert t.check_reservation(tok, now=5.0)

    def test_future_reservation_cannot_redeem_early(self):
        t = table()
        tok = t.make_reservation(VAULT, CLASS, REUSABLE_TIME, now=0.0,
                                 start_time=100.0, duration=10.0)
        assert not t.check_reservation(tok, now=50.0)
        assert t.check_reservation(tok, now=100.0)
        assert not t.check_reservation(tok, now=111.0)

    def test_confirmation_timeout_expires_unconfirmed(self):
        t = table()
        tok = t.make_reservation(VAULT, CLASS, REUSABLE_TIME, now=0.0,
                                 timeout=30.0, duration=1000.0)
        assert t.check_reservation(tok, now=29.0)
        assert not t.check_reservation(tok, now=31.0)

    def test_confirmation_timeout_stops_after_redeem(self):
        t = table()
        tok = t.make_reservation(VAULT, CLASS, REUSABLE_TIME, now=0.0,
                                 timeout=30.0, duration=1000.0)
        t.redeem(tok, now=10.0)  # implicit confirmation
        assert t.check_reservation(tok, now=500.0)

    def test_expiry_at_window_end(self):
        t = table()
        tok = t.make_reservation(VAULT, CLASS, REUSABLE_TIME, now=0.0,
                                 duration=100.0, timeout=0.0)
        assert t.check_reservation(tok, now=100.0)
        assert not t.check_reservation(tok, now=100.1)


class TestCancellation:
    def test_cancel_frees_slot(self):
        t = table(slots=1)
        tok = t.make_reservation(VAULT, CLASS, REUSABLE_TIME, now=0.0)
        t.cancel_reservation(tok, now=1.0)
        assert not t.check_reservation(tok, now=1.0)
        # slot is free again
        t.make_reservation(VAULT, CLASS, REUSABLE_TIME, now=1.0)
        assert t.cancellations == 1

    def test_cancel_unknown_rejected(self):
        t = table()
        tok = t.make_reservation(VAULT, CLASS, REUSABLE_TIME, now=0.0)
        other = ReservationTable(HOST, b"zz")
        with pytest.raises(InvalidReservationError):
            other.cancel_reservation(tok, now=0.0)

    def test_cancel_idempotent(self):
        t = table()
        tok = t.make_reservation(VAULT, CLASS, REUSABLE_TIME, now=0.0)
        t.cancel_reservation(tok, now=0.0)
        t.cancel_reservation(tok, now=0.0)
        assert t.cancellations == 1


class TestBookkeeping:
    def test_live_count_and_purge(self):
        t = table(slots=8)
        for _ in range(3):
            t.make_reservation(VAULT, CLASS, REUSABLE_TIME, now=0.0,
                               duration=10.0, timeout=0.0)
        assert t.live_count(now=5.0) == 3
        assert t.live_count(now=20.0) == 0
        assert len(t) == 3
        assert t.purge(now=20.0) == 3
        assert len(t) == 0

    def test_active_at(self):
        t = table(slots=8)
        t.make_reservation(VAULT, CLASS, REUSABLE_TIME, now=0.0,
                           start_time=10.0, duration=10.0)
        t.make_reservation(VAULT, CLASS, REUSABLE_TIME, now=0.0,
                           start_time=15.0, duration=10.0)
        assert t.active_at(5.0, now=0.0) == 0
        assert t.active_at(12.0, now=0.0) == 1
        assert t.active_at(17.0, now=0.0) == 2

    def test_slots_validation(self):
        with pytest.raises(ValueError):
            ReservationTable(HOST, SECRET, slots=0)


# ---------------------------------------------------------------------------
# property-based: the capacity invariant under arbitrary grant sequences
# ---------------------------------------------------------------------------

@st.composite
def reservation_requests(draw):
    share = draw(st.booleans())
    reuse = draw(st.booleans())
    start = draw(st.one_of(
        st.just(INSTANTANEOUS),
        st.floats(min_value=0.0, max_value=100.0)))
    duration = draw(st.floats(min_value=1.0, max_value=100.0))
    return (ReservationType(share, reuse), start, duration)


class TestTableInvariants:
    @given(st.lists(reservation_requests(), min_size=1, max_size=30),
           st.integers(min_value=1, max_value=5))
    @settings(max_examples=100, deadline=None)
    def test_capacity_never_exceeded(self, requests, slots):
        """At every instant: no unshared overlap with anything, and at most
        ``slots`` shared reservations overlapping."""
        t = ReservationTable(HOST, SECRET, slots=slots)
        granted = []
        for rtype, start, duration in requests:
            try:
                tok = t.make_reservation(VAULT, CLASS, rtype, now=0.0,
                                         start_time=start,
                                         duration=duration, timeout=0.0)
                granted.append(tok)
            except ReservationDeniedError:
                pass
        # check the invariant at every window boundary
        points = sorted({p for tok in granted for p in tok.window()})
        for p in points:
            active = [tok for tok in granted
                      if tok.window()[0] <= p < tok.window()[1]]
            unshared = [tok for tok in active if not tok.rtype.share]
            shared = [tok for tok in active if tok.rtype.share]
            if unshared:
                assert len(active) == 1, (
                    f"unshared overlap at t={p}: {active}")
            assert len(shared) <= slots
