"""Tests for the object runtime: attributes, lifecycle/OPR, RGE, Classes."""

import pytest

from repro.errors import (
    NoImplementationError,
    ObjectStateError,
    UnknownObjectError,
)
from repro.naming import LOID, LOIDMinter
from repro.objects import (
    AttributeDatabase,
    ClassObject,
    Implementation,
    LegionObject,
    ObjectState,
    Placement,
    Trigger,
    TriggerEngine,
)


class TestAttributeDatabase:
    def test_set_get(self):
        db = AttributeDatabase()
        db.set("host_arch", "sparc")
        assert db["host_arch"] == "sparc"
        assert db.get("missing") is None
        assert db.get("missing", 7) == 7

    def test_initial_values(self):
        db = AttributeDatabase({"a": 1, "b": [1, 2]})
        assert db["a"] == 1 and db["b"] == [1, 2]

    def test_list_values_checked(self):
        db = AttributeDatabase()
        db.set("archs", ["sparc", "x86"])
        with pytest.raises(TypeError):
            db.set("bad", [{"nested": "dict"}])

    def test_unsupported_value_rejected(self):
        db = AttributeDatabase()
        with pytest.raises(TypeError):
            db.set("bad", {"a": 1})

    def test_bad_name_rejected(self):
        db = AttributeDatabase()
        with pytest.raises(TypeError):
            db.set("", 1)
        with pytest.raises(TypeError):
            db.set(123, 1)

    def test_update_and_delete(self):
        db = AttributeDatabase()
        db.update({"x": 1, "y": 2})
        assert len(db) == 2
        db.delete("x")
        assert "x" not in db
        db.delete("x")  # idempotent

    def test_timestamps(self):
        db = AttributeDatabase()
        db.set("a", 1, now=5.0)
        db.set("b", 2, now=9.0)
        assert db.updated_at("a") == 5.0
        assert db.updated_at("missing") == 0.0
        assert db.last_update == 9.0

    def test_snapshot_is_isolated(self):
        db = AttributeDatabase()
        db.set("lst", [1, 2])
        snap = db.snapshot()
        snap["lst"].append(3)
        assert db["lst"] == [1, 2]

    def test_iteration_and_names(self):
        db = AttributeDatabase({"b": 1, "a": 2})
        assert db.names() == ["a", "b"]
        assert set(db) == {"a", "b"}
        assert dict(db.items()) == {"b": 1, "a": 2}


class TestLifecycle:
    def make(self):
        return LegionObject(LOID(("d", "obj", "o1")), LOID(("d", "class",
                                                            "C")))

    def test_starts_active(self):
        obj = self.make()
        assert obj.is_active
        assert obj.state == ObjectState.ACTIVE

    def test_deactivate_produces_opr_and_inert(self):
        obj = self.make()
        opr = obj.deactivate(now=3.0)
        assert obj.state == ObjectState.INERT
        assert opr.loid == obj.loid
        assert opr.saved_at == 3.0
        assert obj.host_loid is None

    def test_double_deactivate_rejected(self):
        obj = self.make()
        obj.deactivate()
        with pytest.raises(ObjectStateError):
            obj.deactivate()

    def test_reactivate_round_trip(self):
        class Stateful(LegionObject):
            def __init__(self, *a):
                super().__init__(*a)
                self.counter = 0

            def save_state(self):
                return {"counter": self.counter}

            def restore_state(self, state):
                self.counter = state["counter"]

        obj = Stateful(LOID(("d", "obj", "s")), LOID(("d", "class", "C")))
        obj.counter = 41
        opr = obj.deactivate()
        obj.counter = 0
        host, vault = LOID(("d", "host", "h")), LOID(("d", "vault", "v"))
        obj.reactivate(opr, host, vault, now=10.0)
        assert obj.counter == 41
        assert obj.is_active
        assert obj.host_loid == host and obj.vault_loid == vault
        assert obj.activation_count == 2

    def test_reactivate_wrong_opr_rejected(self):
        a, b = self.make(), LegionObject(LOID(("d", "obj", "o2")))
        opr = a.deactivate()
        b.deactivate()
        with pytest.raises(ObjectStateError):
            b.reactivate(opr, LOID(("d", "host", "h")),
                         LOID(("d", "vault", "v")))

    def test_reactivate_active_rejected(self):
        obj = self.make()
        opr = obj.make_opr()
        with pytest.raises(ObjectStateError):
            obj.reactivate(opr, LOID(("d", "host", "h")),
                           LOID(("d", "vault", "v")))

    def test_migration_counter(self):
        obj = self.make()
        h1, h2 = LOID(("d", "host", "h1")), LOID(("d", "host", "h2"))
        v = LOID(("d", "vault", "v"))
        obj.host_loid = h1
        opr = obj.deactivate()
        # deactivate clears host_loid, so pre-set it to simulate prior home
        obj.host_loid = h1
        obj.reactivate(opr, h2, v)
        assert obj.migration_count == 1

    def test_kill_is_terminal(self):
        obj = self.make()
        obj.kill()
        assert obj.state == ObjectState.DEAD
        with pytest.raises(ObjectStateError):
            obj.make_opr()
        with pytest.raises(ObjectStateError):
            obj.deactivate()

    def test_opr_versions_increment(self):
        obj = self.make()
        assert obj.make_opr().version == 1
        assert obj.make_opr().version == 2

    def test_opr_clone_is_deep(self):
        obj = self.make()
        opr = obj.make_opr()
        opr.state["k"] = [1]
        clone = opr.clone()
        clone.state["k"].append(2)
        assert opr.state["k"] == [1]

    def test_opr_successor(self):
        obj = self.make()
        opr = obj.make_opr()
        succ = opr.successor({"x": 1}, now=7.0)
        assert succ.version == opr.version + 1
        assert succ.saved_at == 7.0
        assert succ.loid == opr.loid


class TestRGE:
    def test_edge_trigger_fires_once_per_transition(self):
        class Box:
            value = 0
        box = Box()
        engine = TriggerEngine(box)
        engine.define_trigger("high", lambda b: b.value > 5)
        assert engine.poll(0.0) == []
        box.value = 10
        assert len(engine.poll(1.0)) == 1
        assert engine.poll(2.0) == []           # still high: no refire
        box.value = 0
        engine.poll(3.0)
        box.value = 10
        assert len(engine.poll(4.0)) == 1       # re-armed after falling

    def test_level_trigger_fires_every_poll(self):
        class Box:
            value = 10
        engine = TriggerEngine(Box())
        engine.define_trigger("high", lambda b: b.value > 5,
                              edge_triggered=False)
        assert len(engine.poll(0.0)) == 1
        assert len(engine.poll(1.0)) == 1

    def test_min_interval_rate_limits(self):
        class Box:
            value = 10
        engine = TriggerEngine(Box())
        engine.define_trigger("high", lambda b: b.value > 5,
                              edge_triggered=False, min_interval=10.0)
        assert len(engine.poll(0.0)) == 1
        assert len(engine.poll(5.0)) == 0
        assert len(engine.poll(10.0)) == 1

    def test_outcalls_invoked_with_firing(self):
        class Box:
            value = 10
        engine = TriggerEngine(Box())
        engine.define_trigger("high", lambda b: b.value > 5)
        got = []
        engine.register_outcall("high", lambda f: got.append(f))
        engine.poll(2.0, extra="info")
        assert len(got) == 1
        assert got[0].event_name == "high"
        assert got[0].time == 2.0
        assert got[0].details == {"extra": "info"}

    def test_outcall_errors_isolated(self):
        class Box:
            value = 10
        engine = TriggerEngine(Box())
        engine.define_trigger("high", lambda b: b.value > 5)
        good = []
        engine.register_outcall("high", lambda f: 1 / 0)
        engine.register_outcall("high", lambda f: good.append(1))
        engine.poll(0.0)
        assert good == [1]
        assert engine.failed_outcalls == 1

    def test_unregister_outcall(self):
        class Box:
            value = 10
        engine = TriggerEngine(Box())
        engine.define_trigger("high", lambda b: b.value > 5)
        got = []
        cb = lambda f: got.append(1)
        engine.register_outcall("high", cb)
        engine.unregister_outcall("high", cb)
        engine.poll(0.0)
        assert got == []

    def test_guard_must_be_callable(self):
        with pytest.raises(TypeError):
            Trigger("x", "not callable")

    def test_outcall_must_be_callable(self):
        engine = TriggerEngine(object())
        with pytest.raises(TypeError):
            engine.register_outcall("x", 42)

    def test_fire_count(self):
        class Box:
            value = 10
        engine = TriggerEngine(Box())
        trig = engine.define_trigger("high", lambda b: b.value > 5,
                                     edge_triggered=False)
        for t in range(5):
            engine.poll(float(t))
        assert trig.fire_count == 5
        assert len(engine.firings) == 5


class TestImplementation:
    def test_matches(self):
        impl = Implementation("sparc", "SunOS")
        assert impl.matches("sparc", "SunOS")
        assert not impl.matches("x86", "SunOS")
        assert not impl.matches("sparc", "Linux")


class TestClassObject:
    def make_class(self, resolver=lambda loid: None, impls=None,
                   placer=None):
        minter = LOIDMinter()
        return ClassObject(
            minter.mint("class", "C"), "C", minter, resolver,
            implementations=impls or [Implementation("sparc", "SunOS")],
            default_placer=placer)

    def test_implementation_queries(self):
        cls = self.make_class()
        assert len(cls.get_implementations()) == 1
        assert cls.supports_platform("sparc", "SunOS")
        assert not cls.supports_platform("x86", "Linux")
        assert cls.implementation_for("sparc", "SunOS").arch == "sparc"
        with pytest.raises(NoImplementationError):
            cls.implementation_for("vax", "VMS")

    def test_resource_requirements(self):
        cls = self.make_class(impls=[
            Implementation("sparc", "SunOS", memory_mb=64.0),
            Implementation("x86", "Linux", memory_mb=32.0)])
        assert cls.resource_requirements()["memory_mb"] == 32.0

    def test_no_placement_no_placer_fails(self):
        cls = self.make_class()
        result = cls.create_instance()
        assert not result.ok
        assert "default placer" in result.reason
        assert cls.create_failures == 1

    def test_unknown_host_fails(self):
        cls = self.make_class(resolver=lambda loid: None)
        placement = Placement(LOID(("d", "host", "h")),
                              LOID(("d", "vault", "v")))
        result = cls.create_instance(placement)
        assert not result.ok and "unknown host" in result.reason

    def test_platform_mismatch_fails(self):
        class FakeHost:
            def __init__(self):
                from repro.objects import AttributeDatabase
                self.attributes = AttributeDatabase(
                    {"host_arch": "vax", "host_os_name": "VMS"})
        host = FakeHost()
        cls = self.make_class(resolver=lambda loid: host)
        result = cls.create_instance(
            Placement(LOID(("d", "host", "h")), LOID(("d", "vault", "v"))))
        assert not result.ok and "no implementation" in result.reason

    def test_get_instance_unknown(self):
        cls = self.make_class()
        with pytest.raises(UnknownObjectError):
            cls.get_instance(LOID(("d", "class", "C", "i9")))


class TestClassWithRealHost:
    def test_create_and_destroy_on_host(self, meta, app_class):
        host = meta.hosts[0]
        vault = meta.vaults[0]
        placement = Placement(host.loid, vault.loid)
        result = app_class.create_instance(placement)
        assert result.ok
        assert result.loid in app_class.instances
        assert len(host.placed) == 1
        app_class.destroy_instance(result.loid)
        assert result.loid not in app_class.instances
        assert len(host.placed) == 0

    def test_default_placer_used_when_no_placement(self, meta, app_class):
        result = app_class.create_instance()
        assert result.ok
        instance = app_class.get_instance(result.loid)
        assert instance.host_loid is not None

    def test_active_instances(self, meta, app_class):
        host, vault = meta.hosts[0], meta.vaults[0]
        r1 = app_class.create_instance(Placement(host.loid, vault.loid))
        r2 = app_class.create_instance(Placement(host.loid, vault.loid))
        assert len(app_class.active_instances()) == 2
        app_class.get_instance(r1.loid).kill()
        assert len(app_class.active_instances()) == 1
        assert r2.loid in {o.loid for o in app_class.active_instances()}
