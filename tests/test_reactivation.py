"""Tests for implicit reactivation on access (paper section 3.1)."""

import pytest

from repro import Implementation, ObjectClassRequest
from repro.errors import MigrationError, ObjectStateError
from repro.objects import ObjectState
from repro.workload import wait_for_completion


@pytest.fixture
def parked(meta, app_class):
    """An instance deactivated to its Vault (OPR stored), host slot freed."""
    sched = meta.make_scheduler("random")
    outcome = sched.run([ObjectClassRequest(app_class, 1)])
    assert outcome.ok
    loid = outcome.created[0]
    instance = app_class.get_instance(loid)
    host = meta.resolve(instance.host_loid)
    meta.advance(30.0)
    opr, _remaining = host.deactivate_object(loid)
    vault = meta.resolve(instance.vault_loid)
    vault.store_opr(opr)
    return loid, host


class TestEnsureActive:
    def test_access_restarts_inert_object(self, meta, app_class, parked):
        loid, old_host = parked
        assert app_class.get_instance(loid).state == ObjectState.INERT
        instance = app_class.ensure_active(loid, now=meta.now)
        assert instance.is_active
        assert instance.host_loid is not None
        new_host = meta.resolve(instance.host_loid)
        assert loid in new_host.placed
        # progress survived the park: ~70 units remain of 100
        n, t = wait_for_completion(meta, app_class, [loid])
        assert n == 1

    def test_active_object_returned_unchanged(self, meta, app_class):
        result = app_class.create_instance()
        instance = app_class.ensure_active(result.loid)
        assert instance is app_class.get_instance(result.loid)

    def test_dead_object_raises(self, meta, app_class):
        result = app_class.create_instance()
        app_class.get_instance(result.loid).kill()
        with pytest.raises(ObjectStateError):
            app_class.ensure_active(result.loid)

    def test_missing_opr_raises(self, meta, app_class):
        sched = meta.make_scheduler("random")
        outcome = sched.run([ObjectClassRequest(app_class, 1)])
        loid = outcome.created[0]
        instance = app_class.get_instance(loid)
        host = meta.resolve(instance.host_loid)
        host.deactivate_object(loid)  # OPR never stored to the vault
        with pytest.raises(MigrationError):
            app_class.ensure_active(loid)

    def test_reactivation_respects_vault_reachability(self, multi):
        """The chosen host must reach the object's existing vault: parked
        in dom0's vault, the object reactivates on a dom0 host."""
        from repro.workload import implementations_for_all_platforms
        app = multi.create_class("Park",
                                 implementations_for_all_platforms(),
                                 work_units=100.0)
        sched = multi.make_scheduler("random")
        outcome = sched.run([ObjectClassRequest(app, 1)])
        assert outcome.ok
        loid = outcome.created[0]
        instance = app.get_instance(loid)
        vault = multi.resolve(instance.vault_loid)
        host = multi.resolve(instance.host_loid)
        opr, _ = host.deactivate_object(loid)
        vault.store_opr(opr)
        revived = app.ensure_active(loid, now=multi.now)
        new_host = multi.resolve(revived.host_loid)
        assert new_host.vault_ok(instance.vault_loid)
        assert new_host.domain == vault.location.domain
