"""Tests for the chaos subsystem: faults, plans, injector, retry, reports."""

import json
import math
from io import StringIO

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Metasystem
from repro.chaos import (
    ChaosInjector,
    ChaosPlan,
    FaultEvent,
    RetryPolicy,
    generate_campaign,
    run_campaign,
)
from repro.chaos.faults import (
    DomainPartition,
    FederationShardOutage,
    HostCrash,
    LatencySpike,
    LoadSurge,
    MessageLossSpike,
    make_fault,
)
from repro.chaos.plan import PROFILES, CampaignConfig, FaultClassConfig
from repro.errors import (
    ChaosError,
    HostUnreachableError,
    LegionError,
    MessageLostError,
)
from repro.hosts import MachineSpec, SimJob
from repro.tools.cli import main as cli_main
from repro.workload import build_testbed
from repro.workload.testbed import TestbedSpec


def two_domain_meta(seed=0):
    """Two domains x two static hosts — small and fully deterministic."""
    m = Metasystem(seed=seed)
    for d in ("east", "west"):
        m.add_domain(d)
        for i in range(2):
            m.add_unix_host(f"{d}-ws{i}", d,
                            MachineSpec(arch="sparc", os_name="SunOS"),
                            slots=4)
    m.add_vault("east", name="east-vault")
    return m


class TestSatelliteFailurePrimitives:
    """Satellite (a): idempotent fail/recover, Topology.clear_faults."""

    def test_machine_fail_is_idempotent(self, meta):
        machine = meta.host_by_name("ws0").machine
        machine.start_job(SimJob(100.0, 1.0))
        lost = machine.fail()
        assert len(lost) == 1 and not machine.up
        assert machine.failures == 1
        # a second fail is a no-op: no double-counted lost jobs
        assert machine.fail() == []
        assert machine.failures == 1

    def test_machine_recover_is_idempotent(self, meta):
        machine = meta.host_by_name("ws0").machine
        machine.fail()
        machine.recover()
        assert machine.up
        machine.recover()  # no-op, no error
        assert machine.up

    def test_topology_clear_faults(self, meta_two=None):
        meta = two_domain_meta()
        meta.topology.partition("east", "west")
        loc = meta.host_by_name("east-ws0").machine.location
        meta.topology.set_node_down(loc, True)
        assert meta.topology.partitions() == [("east", "west")]
        assert meta.topology.down_nodes() == [loc]
        assert meta.topology.clear_faults() == 2
        assert meta.topology.partitions() == []
        assert meta.topology.down_nodes() == []
        assert meta.topology.clear_faults() == 0

    def test_loss_timeout_factor_is_named(self, meta):
        from repro.net.transport import Transport
        assert Transport.LOSS_TIMEOUT_FACTOR == 4.0
        assert meta.transport.loss_timeout_factor == 4.0

    def test_error_retryability_classification(self):
        assert MessageLostError("x").retryable
        assert not HostUnreachableError("x").retryable
        assert not LegionError("x").retryable


class TestFaults:
    def test_host_crash_apply_and_revert(self, meta):
        machine = meta.host_by_name("ws1").machine
        machine.start_job(SimJob(50.0, 1.0))
        fault = HostCrash(target="ws1")
        fault.apply(meta)
        assert not machine.up
        assert not meta.topology.node_up(machine.location)
        assert fault.info["lost_jobs"] == 1
        assert fault.info["lost_work"] == pytest.approx(50.0)
        fault.revert(meta)
        assert machine.up
        assert meta.topology.node_up(machine.location)

    def test_crashing_a_down_host_is_an_error(self, meta):
        meta.host_by_name("ws1").machine.fail()
        with pytest.raises(ChaosError):
            HostCrash(target="ws1").apply(meta)

    def test_double_apply_and_unapplied_revert_raise(self, meta):
        fault = HostCrash(target="ws0")
        with pytest.raises(ChaosError):
            fault.revert(meta)
        fault.apply(meta)
        with pytest.raises(ChaosError):
            fault.apply(meta)

    def test_unknown_host_raises(self, meta):
        with pytest.raises(ChaosError):
            HostCrash(target="no-such-host").apply(meta)

    def test_domain_partition_round_trip(self):
        meta = two_domain_meta()
        fault = DomainPartition(target="east|west")
        fault.apply(meta)
        assert meta.topology.partitions() == [("east", "west")]
        with pytest.raises(ChaosError):
            DomainPartition(target="west|east").apply(meta)
        fault.revert(meta)
        assert meta.topology.partitions() == []

    def test_loss_spikes_compose_as_max(self, meta):
        t = meta.transport
        a, b = MessageLossSpike(magnitude=0.5), MessageLossSpike(
            magnitude=0.3)
        a.apply(meta)
        b.apply(meta)
        assert t.effective_loss_probability() == pytest.approx(0.5)
        a.revert(meta)  # revert in apply order: survivor still active
        assert t.effective_loss_probability() == pytest.approx(0.3)
        b.revert(meta)
        assert t.effective_loss_probability() == t.loss_probability

    def test_latency_factors_compose_as_product(self, meta):
        t = meta.transport
        LatencySpike(magnitude=2.0).apply(meta)
        LatencySpike(magnitude=3.0).apply(meta)
        assert t._latency_factors == [2.0, 3.0]
        with pytest.raises(ChaosError):
            LatencySpike(magnitude=0.5).apply(meta)

    def test_load_surge_round_trip(self, meta):
        machine = meta.host_by_name("ws2").machine
        before = machine.background_load
        fault = LoadSurge(target="ws2", magnitude=3.0)
        fault.apply(meta)
        assert machine.background_load == pytest.approx(before + 3.0)
        fault.revert(meta)
        assert machine.background_load == pytest.approx(before)
        with pytest.raises(ChaosError):
            LoadSurge(target="ws2", magnitude=0.0).apply(meta)

    def test_shard_outage_requires_federation(self, meta):
        with pytest.raises(ChaosError):
            FederationShardOutage(target="shard0").apply(meta)

    def test_shard_outage_federated(self):
        meta = build_testbed(TestbedSpec(
            n_domains=2, hosts_per_domain=2, background_load_mean=0.0,
            federation_shards=3))
        shard_id = sorted(s.shard_id for s in meta.collection_shards)[0]
        fault = make_fault("shard_outage", shard_id)
        fault.apply(meta)
        assert shard_id not in meta.collection.healthy_shards()
        fault.revert(meta)
        assert shard_id in meta.collection.healthy_shards()

    def test_make_fault_rejects_unknown_kind(self):
        with pytest.raises(ChaosError):
            make_fault("disk_melt")


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0,
                             max_delay=5.0, jitter=0.0)
        assert [policy.backoff(a) for a in (1, 2, 3, 4)] == [
            1.0, 2.0, 4.0, 5.0]

    def test_next_delay_gives_up_correctly(self):
        policy = RetryPolicy(max_attempts=3, jitter=0.0, deadline=100.0)
        lost = MessageLostError("x")
        assert policy.next_delay(lost, 1, 0.0) is not None
        assert policy.next_delay(lost, 3, 0.0) is None  # attempt cap
        assert policy.next_delay(lost, 1, 100.0) is None  # deadline
        assert policy.next_delay(HostUnreachableError("x"), 1, 0.0) is None
        assert policy.next_delay(ValueError("x"), 1, 0.0) is None

    def test_retry_unreachable_knob(self):
        policy = RetryPolicy(retry_unreachable=True, jitter=0.0)
        assert policy.next_delay(HostUnreachableError("x"), 1, 0.0) \
            is not None

    def test_jitter_is_seeded_and_bounded(self, meta):
        rng = meta.rngs.stream("test", "jitter")
        policy = RetryPolicy(base_delay=1.0, jitter=0.5, rng=rng)
        delays = [policy.backoff(1) for _ in range(20)]
        assert all(0.5 <= d <= 1.5 for d in delays)
        assert len(set(delays)) > 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)

    def test_transport_retries_idempotent_calls(self, meta):
        host = meta.hosts[0]
        meta.enable_retries(max_attempts=5, base_delay=0.1, jitter=0.0)
        meta.transport.push_loss_spike(1.0)  # every message is lost
        with pytest.raises(MessageLostError):
            meta.transport.invoke(None, host.location, lambda: 42,
                                  label="probe", idempotent=True)
        assert meta.transport.retries == 4  # max_attempts - 1
        # non-idempotent calls are never retried
        with pytest.raises(MessageLostError):
            meta.transport.invoke(None, host.location, lambda: 42,
                                  label="probe")
        assert meta.transport.retries == 4

    def test_transport_retry_recovers_after_spike_clears(self, meta):
        meta.enable_retries(max_attempts=10, base_delay=5.0, jitter=0.0)
        host = meta.hosts[0]
        meta.transport.push_loss_spike(1.0)
        meta.sim.schedule(12.0,
                          lambda: meta.transport.pop_loss_spike(1.0))
        value = meta.transport.invoke(None, host.location, lambda: 42,
                                      label="probe", idempotent=True)
        assert value == 42
        assert meta.transport.retries >= 1


class TestPlansAndCampaigns:
    def test_plan_sorts_and_derives_horizon(self):
        plan = ChaosPlan(events=[
            FaultEvent(at=50.0, kind="host_crash", target="b",
                       duration=20.0),
            FaultEvent(at=10.0, kind="host_crash", target="a",
                       duration=5.0),
        ])
        assert [e.at for e in plan.events] == [10.0, 50.0]
        assert plan.horizon == 70.0
        assert plan.counts_by_kind() == {"host_crash": 2}

    def test_plan_rejects_unknown_kind_and_negative_times(self):
        with pytest.raises(ChaosError):
            ChaosPlan(events=[FaultEvent(at=0.0, kind="disk_melt")])
        with pytest.raises(ChaosError):
            ChaosPlan(events=[FaultEvent(at=-1.0, kind="host_crash")])

    def test_generate_campaign_is_deterministic(self):
        meta = two_domain_meta()
        config = PROFILES["mixed"]
        a = generate_campaign(meta, config, seed=5)
        b = generate_campaign(meta, config, seed=5)
        assert a.to_dict() == b.to_dict()
        c = generate_campaign(meta, config, seed=6)
        assert a.to_dict() != c.to_dict()

    def test_generation_does_not_touch_metasystem_rngs(self):
        """Campaign generation must not perturb the simulation's RNGs."""
        m1, m2 = two_domain_meta(), two_domain_meta()
        generate_campaign(m1, PROFILES["heavy"], seed=3)
        assert (m1.rngs.stream("net", "latency").random()
                == m2.rngs.stream("net", "latency").random())

    def test_per_target_events_never_overlap(self):
        meta = two_domain_meta()
        config = CampaignConfig(horizon=5000.0, classes={
            "host_crash": FaultClassConfig(mtbf=100.0, mttr=50.0)})
        plan = generate_campaign(meta, config, seed=1)
        by_target = {}
        for event in plan.events:
            by_target.setdefault(event.target, []).append(event)
        assert len(plan) > 10
        for events in by_target.values():
            for prev, nxt in zip(events, events[1:]):
                assert nxt.at >= prev.at + prev.duration


class TestInjector:
    def test_scripted_crash_applies_and_reverts_on_schedule(self, meta):
        plan = ChaosPlan(events=[FaultEvent(
            at=10.0, kind="host_crash", target="ws0", duration=20.0)])
        injector = ChaosInjector(meta, plan).arm()
        machine = meta.host_by_name("ws0").machine
        meta.advance(15.0)
        assert not machine.up and injector.active_count == 1
        meta.advance(20.0)
        assert machine.up and injector.active_count == 0
        record = injector.records[0]
        assert record.applied_at == pytest.approx(10.0)
        assert record.reverted_at == pytest.approx(30.0)
        assert not record.forced

    def test_overlapping_same_target_fault_is_skipped(self, meta):
        plan = ChaosPlan(events=[
            FaultEvent(at=10.0, kind="host_crash", target="ws0",
                       duration=50.0),
            FaultEvent(at=30.0, kind="host_crash", target="ws0",
                       duration=50.0),
        ])
        injector = ChaosInjector(meta, plan).arm()
        meta.advance(40.0)
        assert injector.records[1].skipped
        meta.advance(100.0)
        assert meta.host_by_name("ws0").machine.up
        assert injector.stats()["skipped"] == 1

    def test_teardown_reverts_persistent_faults(self, meta):
        plan = ChaosPlan(events=[
            # duration 0 = persists until teardown
            FaultEvent(at=5.0, kind="host_crash", target="ws1"),
            FaultEvent(at=6.0, kind="message_loss_spike", magnitude=0.9),
        ], horizon=100.0)
        injector = ChaosInjector(meta, plan).arm()
        meta.advance(50.0)
        assert injector.active_count == 2
        injector.teardown()
        assert injector.active_count == 0
        assert injector.residual_faults() == []
        assert injector.forced_repairs == 0
        assert meta.host_by_name("ws1").machine.up
        assert all(r.forced for r in injector.records)

    def test_teardown_cancels_pending_events(self, meta):
        plan = ChaosPlan(events=[FaultEvent(
            at=80.0, kind="host_crash", target="ws0", duration=10.0)])
        injector = ChaosInjector(meta, plan).arm()
        meta.advance(10.0)
        injector.teardown()
        meta.advance(200.0)  # the t=80 apply fires but must no-op
        assert meta.host_by_name("ws0").machine.up
        assert injector.records[0].skipped

    def test_injector_emits_metrics_and_spans(self, meta):
        plan = ChaosPlan(events=[FaultEvent(
            at=10.0, kind="host_crash", target="ws0", duration=20.0)])
        ChaosInjector(meta, plan).arm()
        meta.advance(50.0)
        counter = meta.metrics.get("chaos_faults_injected_total")
        assert counter.labels(kind="host_crash").value == 1.0
        names = [s.name for s in meta.spans.spans]
        assert "chaos:host_crash" in names

    def test_chaos_spans_reach_chrome_trace_export(self, meta):
        from repro.obs.trace_export import chrome_trace_json
        plan = ChaosPlan(events=[FaultEvent(
            at=10.0, kind="host_crash", target="ws0", duration=20.0)])
        ChaosInjector(meta, plan).arm()
        meta.advance(50.0)
        trace = json.loads(chrome_trace_json(meta.spans.spans))
        chaos_events = [e for e in trace["traceEvents"]
                        if "chaos:host_crash" in str(e.get("name", ""))]
        assert chaos_events

    def test_metasystem_start_chaos(self, meta):
        injector = meta.start_chaos(profile="hosts", chaos_seed=2)
        assert meta.chaos is injector
        assert len(injector.plan) > 0
        with pytest.raises(LegionError):
            meta.start_chaos(profile="hosts")

    def test_start_chaos_rejects_unknown_profile(self, meta):
        with pytest.raises(LegionError):
            meta.start_chaos(profile="apocalypse")

    def test_testbed_spec_arms_chaos(self):
        meta = build_testbed(TestbedSpec(
            n_domains=2, hosts_per_domain=2, background_load_mean=0.0,
            chaos_profile="hosts", chaos_seed=1, chaos_horizon=300.0))
        assert meta.chaos is not None
        assert meta.chaos.plan.horizon == 300.0


# the hypothesis-generated campaign shapes below: any mix of fault
# kinds, targets, start times, and durations on the two_domain_meta
_HOSTS = ["east-ws0", "east-ws1", "west-ws0", "west-ws1"]
_EVENT_STRATEGY = st.one_of(
    st.tuples(st.just("host_crash"), st.sampled_from(_HOSTS),
              st.just(0.0)),
    st.tuples(st.just("load_surge"), st.sampled_from(_HOSTS),
              st.floats(min_value=0.5, max_value=8.0)),
    st.tuples(st.just("domain_partition"), st.just("east|west"),
              st.just(0.0)),
    st.tuples(st.just("message_loss_spike"), st.just(""),
              st.floats(min_value=0.05, max_value=1.0)),
    st.tuples(st.just("latency_spike"), st.just(""),
              st.floats(min_value=1.5, max_value=10.0)),
)


class TestRevertGuarantee:
    @given(st.lists(
        st.tuples(_EVENT_STRATEGY,
                  st.floats(min_value=0.0, max_value=120.0),
                  st.floats(min_value=0.0, max_value=60.0)),
        min_size=1, max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_every_applied_fault_is_reverted(self, shapes):
        """Whatever the campaign shape, teardown leaves zero residual
        faults and every applied fault carries a revert timestamp."""
        meta = two_domain_meta()
        events = [FaultEvent(at=at, kind=kind, target=target,
                             duration=duration, magnitude=magnitude)
                  for (kind, target, magnitude), at, duration in shapes]
        injector = ChaosInjector(meta, ChaosPlan(events=events)).arm()
        meta.advance(90.0)  # stop mid-campaign: some faults still active
        injector.teardown()
        assert injector.residual_faults() == []
        assert injector.active_count == 0
        for record in injector.records:
            if record.applied_at is not None:
                assert record.reverted_at is not None
        # the world is fully serviceable again
        assert all(h.machine.up for h in meta.hosts)
        assert meta.topology.partitions() == []
        assert meta.transport.effective_loss_probability() \
            == meta.transport.loss_probability


class TestCampaigns:
    def test_same_seed_reports_are_identical(self):
        kwargs = dict(waves=3, per_wave=2, profile="mixed", chaos_seed=3)
        a = run_campaign(**kwargs)
        b = run_campaign(**kwargs)
        assert a.to_json() == b.to_json()
        assert a.placements == b.placements
        assert a.residual_faults == []

    def test_retry_strictly_improves_survival_under_loss(self):
        """Acceptance criterion: with the identical fault timeline, the
        retry layer yields strictly more successful placements."""
        kwargs = dict(waves=6, per_wave=3, profile="lossy", chaos_seed=9)
        base = run_campaign(retry=False, **kwargs)
        with_retry = run_campaign(retry=True, **kwargs)
        assert base.residual_faults == []
        assert with_retry.residual_faults == []
        assert with_retry.transport_retries \
            + with_retry.reservation_retries > 0
        assert (with_retry.placement_successes
                > base.placement_successes)
        assert (with_retry.placement_success_rate
                > base.placement_success_rate)

    def test_report_json_round_trip(self):
        report = run_campaign(waves=2, per_wave=2, profile="light",
                              chaos_seed=1)
        data = json.loads(report.to_json())
        assert data["profile"] == "light"
        assert data["faults"]["residual_faults"] == []
        assert data["placement"]["attempts"] == 2
        assert len(data["events"]) == report.faults_planned
        assert "campaign" in report.summary()


class TestChaosCli:
    def test_chaos_subcommand_runs_and_writes_report(self, tmp_path):
        out = StringIO()
        path = tmp_path / "report.json"
        rc = cli_main(["chaos", "--profile", "light", "--waves", "2",
                       "--count", "2", "--chaos-seed", "1",
                       "--out", str(path)], out=out)
        assert rc == 0
        text = out.getvalue()
        assert "chaos campaign 'light'" in text
        assert "residual faults    0" in text
        data = json.loads(path.read_text())
        assert data["faults"]["residual_faults"] == []

    def test_compare_retry_flag(self):
        out = StringIO()
        rc = cli_main(["chaos", "--profile", "light", "--waves", "2",
                       "--count", "2", "--compare-retry"], out=out)
        assert rc == 0
        assert "retry benefit" in out.getvalue()

    def test_run_subcommand_with_chaos_profile(self):
        out = StringIO()
        rc = cli_main(["run", "--count", "2", "--chaos-profile", "hosts",
                       "--chaos-seed", "7", "--wait"], out=out)
        assert rc == 0
        assert "residual after teardown" in out.getvalue()

    def test_unknown_profile_fails_cleanly(self):
        out = StringIO()
        rc = cli_main(["chaos", "--profile", "apocalypse",
                       "--waves", "1"], out=out)
        assert rc == 2
        assert "chaos error" in out.getvalue()
