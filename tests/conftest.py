"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import Implementation, MachineSpec, Metasystem
from repro.workload import small_campus


@pytest.fixture
def meta():
    """A minimal single-domain metasystem with 4 homogeneous hosts, one
    vault, and no background-load dynamics (fully deterministic)."""
    m = Metasystem(seed=7)
    m.add_domain("uva")
    for i in range(4):
        m.add_unix_host(f"ws{i}", "uva",
                        MachineSpec(arch="sparc", os_name="SunOS"),
                        slots=4)
    m.add_vault("uva", name="uva-vault")
    return m


@pytest.fixture
def app_class(meta):
    """A class with 100-unit jobs runnable on the meta fixture's hosts."""
    return meta.create_class(
        "App", [Implementation("sparc", "SunOS")], work_units=100.0)


@pytest.fixture
def campus():
    """A livelier testbed: 8 hosts, 2 platforms, load dynamics."""
    return small_campus(seed=3)


@pytest.fixture
def multi():
    """Three domains with heterogeneity and a vault each."""
    from repro.workload import multi_domain
    return multi_domain(n_domains=3, hosts_per_domain=4, seed=5,
                        dynamics=False)
