"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import ProcessError, SimTimeError
from repro.sim import AllOf, AnyOf, Event, Interrupt, Simulator, Timeout


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_and_step(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(sim.now))
        assert sim.step()
        assert fired == [5.0]
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimTimeError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run()
        with pytest.raises(SimTimeError):
            sim.schedule_at(5.0, lambda: None)

    def test_fifo_order_for_simultaneous_events(self):
        sim = Simulator()
        order = []
        for i in range(10):
            sim.schedule(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == list(range(10))

    def test_priority_breaks_ties(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: order.append("low"), priority=5)
        sim.schedule(1.0, lambda: order.append("high"), priority=-5)
        sim.run()
        assert order == ["high", "low"]

    def test_time_ordering(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append(3))
        sim.schedule(1.0, lambda: order.append(1))
        sim.schedule(2.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2, 3]

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run_until(42.0)
        assert sim.now == 42.0

    def test_run_until_is_noop_for_past(self):
        sim = Simulator()
        sim.run_until(10.0)
        sim.run_until(5.0)
        assert sim.now == 10.0

    def test_run_until_processes_boundary_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(True))
        sim.run_until(5.0)
        assert fired == [True]

    def test_run_until_defers_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(True))
        sim.run_until(4.999)
        assert fired == []
        assert sim.peek() == 5.0

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(7):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 7

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []

        def outer():
            times.append(sim.now)
            sim.schedule(2.0, inner)

        def inner():
            times.append(sim.now)

        sim.schedule(1.0, outer)
        sim.run()
        assert times == [1.0, 3.0]


class TestEvents:
    def test_succeed_delivers_value(self):
        sim = Simulator()
        ev = sim.event("e")
        got = []
        ev._add_waiter(lambda e: got.append(e.value))
        ev.succeed(42)
        sim.run()
        assert got == [42]

    def test_double_resolution_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(ProcessError):
            ev.succeed()
        with pytest.raises(ProcessError):
            ev.fail(RuntimeError("x"))

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_waiting_on_resolved_event_fires_immediately(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("v")
        got = []
        ev._add_waiter(lambda e: got.append(e.value))
        sim.run()
        assert got == ["v"]

    def test_timeout_resolves_at_deadline(self):
        sim = Simulator()
        t = sim.timeout(3.5, value="done")
        sim.run()
        assert sim.now == 3.5
        assert t.ok and t.value == "done"

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(SimTimeError):
            sim.timeout(-0.5)


class TestConditions:
    def test_all_of_waits_for_all(self):
        sim = Simulator()
        t1, t2 = sim.timeout(1.0), sim.timeout(5.0)
        cond = sim.all_of([t1, t2])
        sim.run()
        assert cond.ok
        assert sim.now == 5.0

    def test_all_of_fails_on_child_failure(self):
        sim = Simulator()
        ev = sim.event()
        cond = sim.all_of([ev, sim.timeout(1.0)])
        ev.fail(RuntimeError("boom"))
        sim.run()
        assert cond.state == Event.FAILED

    def test_any_of_resolves_on_first(self):
        sim = Simulator()
        cond = sim.any_of([sim.timeout(10.0), sim.timeout(2.0)])

        def proc():
            yield cond
            return sim.now

        p = sim.process(proc())
        sim.run()
        assert p.value == 2.0

    def test_empty_all_of_is_vacuous(self):
        sim = Simulator()
        cond = sim.all_of([])
        assert cond.ok


class TestProcesses:
    def test_process_runs_and_returns(self):
        sim = Simulator()

        def body():
            yield 1.0
            yield 2.0
            return "result"

        p = sim.process(body())
        sim.run()
        assert p.ok and p.value == "result"
        assert sim.now == 3.0

    def test_numeric_yield_becomes_timeout(self):
        sim = Simulator()

        def body():
            yield 4
        sim.process(body())
        sim.run()
        assert sim.now == 4.0

    def test_process_waits_on_event_value(self):
        sim = Simulator()
        ev = sim.event()

        def body():
            value = yield ev
            return value

        p = sim.process(body())
        sim.schedule(2.0, lambda: ev.succeed("payload"))
        sim.run()
        assert p.value == "payload"

    def test_process_exception_fails_it(self):
        sim = Simulator()

        def body():
            yield 1.0
            raise ValueError("inner")

        p = sim.process(body())
        sim.run()
        assert p.state == Event.FAILED
        assert isinstance(p.value, ValueError)

    def test_failed_event_raises_inside_process(self):
        sim = Simulator()
        ev = sim.event()

        def body():
            try:
                yield ev
            except RuntimeError as e:
                return f"caught {e}"

        p = sim.process(body())
        sim.schedule(1.0, lambda: ev.fail(RuntimeError("bad")))
        sim.run()
        assert p.value == "caught bad"

    def test_non_waitable_yield_fails_process(self):
        sim = Simulator()

        def body():
            yield "nonsense"

        p = sim.process(body())
        sim.run()
        assert p.state == Event.FAILED
        assert isinstance(p.value, ProcessError)

    def test_non_generator_rejected(self):
        sim = Simulator()
        with pytest.raises(ProcessError):
            sim.process(lambda: None)

    def test_interrupt_is_catchable(self):
        sim = Simulator()

        def body():
            try:
                yield 100.0
            except Interrupt as i:
                return (sim.now, f"interrupted: {i.cause}")

        p = sim.process(body())
        sim.schedule(1.0, lambda: p.interrupt("overload"))
        sim.run()
        when, message = p.value
        assert message == "interrupted: overload"
        assert when == 1.0  # resumed at interrupt time, not the timeout

    def test_uncaught_interrupt_fails_process(self):
        sim = Simulator()

        def body():
            yield 100.0

        p = sim.process(body())
        sim.schedule(1.0, lambda: p.interrupt())
        sim.run()
        assert p.state == Event.FAILED

    def test_waiting_on_another_process(self):
        sim = Simulator()

        def child():
            yield 3.0
            return 21

        def parent():
            c = sim.process(child())
            value = yield c
            return value * 2

        p = sim.process(parent())
        sim.run()
        assert p.value == 42

    def test_stale_wakeup_after_interrupt_ignored(self):
        sim = Simulator()
        hits = []

        def body():
            try:
                yield 5.0
            except Interrupt:
                yield 10.0  # new wait; old timeout must not wake us early
            hits.append(sim.now)

        p = sim.process(body())
        sim.schedule(1.0, lambda: p.interrupt())
        sim.run()
        assert hits == [11.0]
