"""Tests for the trace-to-sequence-diagram renderer."""

import pytest

from repro.bench import protocol_trace, render_sequence
from repro.sim.tracing import TraceRecord, Tracer


def rec(src, dst, label, rtt=0.001, t=0.0):
    return TraceRecord(t, "net", "invoke",
                       {"src": src, "dst": dst, "label": label,
                        "rtt": rtt})


class TestRenderSequence:
    def test_empty(self):
        assert "no invocations" in render_sequence([])

    def test_parties_in_first_appearance_order(self):
        out = render_sequence([rec("a/x", "b/y", "ping"),
                               rec("b/y", "c/z", "pong")])
        header = out.splitlines()[0]
        assert header.index("a/x") < header.index("b/y") < header.index(
            "c/z")

    def test_arrow_direction(self):
        out = render_sequence([rec("a/x", "b/y", "go")])
        assert ">" in out
        back = render_sequence([rec("a/x", "b/y", "go"),
                                rec("b/y", "a/x", "back")])
        assert "<" in back

    def test_label_and_rtt_present(self):
        out = render_sequence([rec("a/x", "b/y", "make_reservation")],
                              column_width=40)
        assert "make_reservation" in out
        assert "ms)" in out

    def test_none_src_renders_client(self):
        out = render_sequence([rec("None", "b/y", "call")])
        assert "client" in out.splitlines()[0]

    def test_long_label_truncated_not_crashed(self):
        out = render_sequence(
            [rec("a/x", "b/y", "a-very-long-label-indeed-it-is")],
            column_width=10)
        assert "~" in out  # ellipsis marker

    def test_self_call(self):
        out = render_sequence([rec("a/x", "a/x", "local")])
        assert "local" in out

    def test_non_invoke_records_ignored(self):
        tracer = Tracer()
        tracer.emit("net", "transfer", src="a", dst="b")
        assert "no invocations" in protocol_trace(tracer)

    def test_protocol_trace_since_and_limit(self):
        tracer = Tracer()
        records = [rec("a/x", "b/y", f"m{i}", t=float(i))
                   for i in range(5)]
        tracer.records.extend(records)
        out = protocol_trace(tracer, since=2.0, limit=2)
        assert "m2" in out and "m3" in out
        assert "m0" not in out and "m4" not in out


class TestEndToEnd:
    def test_real_protocol_renders(self, meta, app_class):
        from repro import ObjectClassRequest
        meta.place_collection("uva")
        sched = meta.make_scheduler("random")
        outcome = sched.run([ObjectClassRequest(app_class, 2)])
        assert outcome.ok
        diagram = protocol_trace(meta.tracer)
        assert "QueryCollection" in diagram or "create" in diagram
        assert "collection-svc" in diagram.splitlines()[0]

    def test_cli_trace_flag(self):
        import io
        from repro.tools import main
        out = io.StringIO()
        code = main(["run", "--count", "2", "--load", "0",
                     "--trace", "5"], out=out)
        assert code == 0
        # with no placed services the trace may be sparse but must render
        assert ("create_instance" in out.getvalue()
                or "no invocations" in out.getvalue())
