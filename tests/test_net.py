"""Tests for topology, latency models, and the RPC transport."""

import pytest

from repro.errors import HostUnreachableError, MessageLostError, NetworkError
from repro.net import (
    AdministrativeDomain,
    Call,
    MetasystemLatencyModel,
    NetLocation,
    Topology,
    Transport,
    ZeroLatencyModel,
)
from repro.sim import RngRegistry, Simulator


@pytest.fixture
def topo():
    t = Topology()
    t.add_domain(AdministrativeDomain("uva", distance=1.0))
    t.add_domain(AdministrativeDomain("sdsc", distance=3.0))
    t.add_node("uva", "a")
    t.add_node("uva", "b")
    t.add_node("sdsc", "c")
    return t


def make_transport(topo, loss=0.0, zero=False):
    sim = Simulator()
    rngs = RngRegistry(1)
    model = ZeroLatencyModel() if zero else MetasystemLatencyModel(topo)
    return Transport(sim, topo, model, rngs, loss_probability=loss)


class TestTopology:
    def test_duplicate_domain_rejected(self, topo):
        with pytest.raises(NetworkError):
            topo.add_domain(AdministrativeDomain("uva"))

    def test_duplicate_node_rejected(self, topo):
        with pytest.raises(NetworkError):
            topo.add_node("uva", "a")

    def test_node_in_unknown_domain_rejected(self, topo):
        with pytest.raises(NetworkError):
            topo.add_node("mit", "x")

    def test_nodes_in(self, topo):
        assert [n.node_id for n in topo.nodes_in("uva")] == ["a", "b"]

    def test_domain_distance(self, topo):
        assert topo.domain_distance("uva", "uva") == 0.0
        assert topo.domain_distance("uva", "sdsc") == 4.0

    def test_reachability_basics(self, topo):
        a = NetLocation("uva", "a")
        c = NetLocation("sdsc", "c")
        assert topo.reachable(a, c)
        assert topo.reachable(None, c)

    def test_partition_and_heal(self, topo):
        a, c = NetLocation("uva", "a"), NetLocation("sdsc", "c")
        topo.partition("uva", "sdsc")
        assert not topo.reachable(a, c)
        assert not topo.reachable(c, a)
        # intra-domain unaffected
        assert topo.reachable(a, NetLocation("uva", "b"))
        # src=None service endpoints bypass domain partitions
        assert topo.reachable(None, c)
        topo.heal("uva", "sdsc")
        assert topo.reachable(a, c)

    def test_node_down(self, topo):
        a, b = NetLocation("uva", "a"), NetLocation("uva", "b")
        topo.set_node_down(a)
        assert not topo.node_up(a)
        assert not topo.reachable(b, a)
        assert not topo.reachable(a, b)
        topo.set_node_down(a, down=False)
        assert topo.reachable(b, a)

    def test_unknown_node_down_rejected(self, topo):
        with pytest.raises(NetworkError):
            topo.set_node_down(NetLocation("uva", "zzz"))

    def test_all_nodes_sorted(self, topo):
        names = [str(n) for n in topo.all_nodes()]
        assert names == ["sdsc/c", "uva/a", "uva/b"]


class TestLatencyModel:
    def test_ordering_local_intra_inter(self, topo):
        import numpy as np
        rng = np.random.default_rng(0)
        model = MetasystemLatencyModel(topo)
        a, b = NetLocation("uva", "a"), NetLocation("uva", "b")
        c = NetLocation("sdsc", "c")
        local = model.sample_latency(rng, a, a)
        intra = [model.sample_latency(rng, a, b) for _ in range(50)]
        inter = [model.sample_latency(rng, a, c) for _ in range(50)]
        assert local < min(intra)
        assert sum(intra) / 50 < sum(inter) / 50

    def test_transfer_time_scales_with_bytes(self, topo):
        import numpy as np
        rng = np.random.default_rng(0)
        model = MetasystemLatencyModel(topo)
        a, c = NetLocation("uva", "a"), NetLocation("sdsc", "c")
        small = model.transfer_time(rng, 1e3, a, c)
        big = model.transfer_time(rng, 1e7, a, c)
        assert big > small
        assert big > 1e7 / model.inter_bandwidth  # at least the wire time

    def test_zero_model(self, topo):
        import numpy as np
        rng = np.random.default_rng(0)
        model = ZeroLatencyModel()
        a = NetLocation("uva", "a")
        assert model.sample_latency(rng, None, a) == 0.0
        assert model.transfer_time(rng, 1e9, None, a) == 0.0


class TestTransport:
    def test_invoke_returns_result_and_advances_clock(self, topo):
        tr = make_transport(topo)
        a, c = NetLocation("uva", "a"), NetLocation("sdsc", "c")
        result = tr.invoke(a, c, lambda x: x * 2, 21)
        assert result == 42
        assert tr.sim.now > 0.0
        assert tr.messages_sent == 2  # request + reply

    def test_invoke_unreachable_raises(self, topo):
        tr = make_transport(topo)
        a, c = NetLocation("uva", "a"), NetLocation("sdsc", "c")
        topo.partition("uva", "sdsc")
        with pytest.raises(HostUnreachableError):
            tr.invoke(a, c, lambda: None)

    def test_invoke_propagates_callee_exception(self, topo):
        tr = make_transport(topo)
        a, b = NetLocation("uva", "a"), NetLocation("uva", "b")

        def boom():
            raise ValueError("callee failed")
        with pytest.raises(ValueError):
            tr.invoke(a, b, boom)
        # error reply still charged
        assert tr.messages_sent == 2

    def test_message_loss(self, topo):
        tr = make_transport(topo, loss=1.0)
        a, b = NetLocation("uva", "a"), NetLocation("uva", "b")
        with pytest.raises(MessageLostError):
            tr.invoke(a, b, lambda: None)
        assert tr.messages_lost == 1

    def test_loss_probability_validation(self, topo):
        with pytest.raises(ValueError):
            make_transport(topo, loss=1.5)

    def test_world_events_drain_during_invoke(self, topo):
        tr = make_transport(topo)
        fired = []
        tr.sim.schedule(1e-9, lambda: fired.append(tr.sim.now))
        a, b = NetLocation("uva", "a"), NetLocation("uva", "b")
        tr.invoke(a, b, lambda: None)
        assert fired  # the world event ran before/within the call

    def test_parallel_invoke_max_not_sum(self, topo):
        tr = make_transport(topo)
        a = NetLocation("uva", "a")
        b = NetLocation("uva", "b")
        c = NetLocation("sdsc", "c")
        # sequential baseline
        tr2 = make_transport(topo)
        for dst in (b, c, c, b):
            tr2.invoke(a, dst, lambda: None)
        sequential = tr2.sim.now
        calls = [Call(a, dst, lambda: 1) for dst in (b, c, c, b)]
        outcomes = tr.parallel_invoke(calls)
        assert all(o.ok for o in outcomes)
        assert tr.sim.now < sequential

    def test_parallel_invoke_captures_failures_per_slot(self, topo):
        tr = make_transport(topo, zero=True)
        a, b = NetLocation("uva", "a"), NetLocation("uva", "b")

        def boom():
            raise RuntimeError("x")
        outcomes = tr.parallel_invoke([
            Call(a, b, lambda: "ok"),
            Call(a, b, boom),
        ])
        assert outcomes[0].ok and outcomes[0].value == "ok"
        assert not outcomes[1].ok
        assert isinstance(outcomes[1].error, RuntimeError)

    def test_parallel_invoke_unreachable_slot(self, topo):
        tr = make_transport(topo, zero=True)
        a = NetLocation("uva", "a")
        c = NetLocation("sdsc", "c")
        topo.partition("uva", "sdsc")
        outcomes = tr.parallel_invoke([Call(a, c, lambda: 1)])
        assert not outcomes[0].ok
        assert isinstance(outcomes[0].error, HostUnreachableError)

    def test_parallel_invoke_empty(self, topo):
        tr = make_transport(topo)
        assert tr.parallel_invoke([]) == []

    def test_parallel_results_in_input_order(self, topo):
        tr = make_transport(topo)
        a, b = NetLocation("uva", "a"), NetLocation("uva", "b")
        calls = [Call(a, b, lambda i=i: i) for i in range(10)]
        outcomes = tr.parallel_invoke(calls)
        assert [o.value for o in outcomes] == list(range(10))

    def test_transfer_charges_time(self, topo):
        tr = make_transport(topo)
        a, c = NetLocation("uva", "a"), NetLocation("sdsc", "c")
        elapsed = tr.transfer(a, c, nbytes=1e6)
        assert elapsed > 0
        assert tr.sim.now >= elapsed

    def test_transfer_unreachable(self, topo):
        tr = make_transport(topo)
        a, c = NetLocation("uva", "a"), NetLocation("sdsc", "c")
        topo.partition("uva", "sdsc")
        with pytest.raises(HostUnreachableError):
            tr.transfer(a, c, 1e3)
