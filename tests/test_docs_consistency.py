"""Documentation-integrity tests: DESIGN.md's experiment index and module
inventory must reference things that actually exist."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def read(name):
    return (ROOT / name).read_text(encoding="utf-8")


class TestDesignDoc:
    def test_every_bench_target_exists(self):
        targets = re.findall(r"`(benchmarks/test_[a-z0-9_]+\.py)`",
                             read("DESIGN.md"))
        assert targets, "DESIGN.md lists no bench targets?"
        for target in targets:
            assert (ROOT / target).exists(), target

    def test_every_bench_file_is_indexed(self):
        design = read("DESIGN.md")
        for path in sorted((ROOT / "benchmarks").glob("test_e*.py")):
            assert f"benchmarks/{path.name}" in design, path.name

    def test_module_paths_exist(self):
        design = read("DESIGN.md")
        for mod in re.findall(r"`repro/([a-z_/]+\.py)`", design):
            assert (ROOT / "src" / "repro" / mod).exists(), mod
        for pkg in re.findall(r"`repro/([a-z_]+)/`", design):
            assert (ROOT / "src" / "repro" / pkg).is_dir(), pkg

    def test_experiment_ids_continuous(self):
        design = read("DESIGN.md")
        ids = sorted({int(m) for m in re.findall(r"\| E(\d+) \|", design)})
        assert ids == list(range(1, ids[-1] + 1))


class TestExperimentsDoc:
    def test_every_design_experiment_has_a_record(self):
        design = read("DESIGN.md")
        experiments = read("EXPERIMENTS.md")
        ids = {int(m) for m in re.findall(r"\| E(\d+) \|", design)}
        for exp_id in ids:
            assert f"## E{exp_id} " in experiments, f"E{exp_id}"

    def test_verdict_per_experiment(self):
        experiments = read("EXPERIMENTS.md")
        sections = re.split(r"^## ", experiments, flags=re.M)[1:]
        for section in sections:
            if section.startswith("E"):
                assert "Verdict" in section, section.splitlines()[0]


class TestReadme:
    def test_architecture_listing_matches_packages(self):
        readme = read("README.md")
        pkg_dir = ROOT / "src" / "repro"
        for pkg in sorted(p.name for p in pkg_dir.iterdir()
                          if p.is_dir() and p.name != "__pycache__"):
            assert f"{pkg}/" in readme, pkg

    def test_examples_exist(self):
        readme = read("README.md")
        for example in re.findall(r"`examples/([a-z_]+\.py)`", readme):
            assert (ROOT / "examples" / example).exists(), example

    def test_docs_exist(self):
        for doc in ("architecture.md", "protocol.md", "query_language.md",
                    "extending.md"):
            assert (ROOT / "docs" / doc).exists(), doc
