"""Tests for the SmartNet-style Min-Completion-Time Scheduler."""

import pytest

from repro import Implementation, MachineSpec, Metasystem, ObjectClassRequest
from repro.errors import SchedulingError
from repro.scheduler import MCTScheduler
from repro.workload import wait_for_completion


@pytest.fixture
def hetero():
    """Heterogeneous speeds: h0 is 4x faster than h3."""
    meta = Metasystem(seed=21)
    meta.add_domain("d")
    for i, speed in enumerate((4.0, 2.0, 1.0, 1.0)):
        meta.add_unix_host(f"h{i}", "d",
                           MachineSpec(arch="sparc", os_name="SunOS",
                                       speed=speed),
                           slots=8)
    meta.add_vault("d")
    app = meta.create_class("A", [Implementation("sparc", "SunOS")],
                            work_units=100.0)
    return meta, app


class TestMCT:
    def test_single_task_goes_to_fastest(self, hetero):
        meta, app = hetero
        sched = meta.make_scheduler("mct")
        rl = sched.compute_schedule([ObjectClassRequest(app, 1)])
        assert rl.masters[0].entries[0].host_loid == meta.hosts[0].loid

    def test_assignments_balance_completion_times(self, hetero):
        meta, app = hetero
        sched = meta.make_scheduler("mct")
        rl = sched.compute_schedule([ObjectClassRequest(app, 8)])
        counts = {}
        for m in rl.masters[0].entries:
            counts[m.host_loid] = counts.get(m.host_loid, 0) + 1
        # the 4x host should receive more tasks than the 1x hosts
        assert counts[meta.hosts[0].loid] > counts.get(
            meta.hosts[3].loid, 0)
        # per-host completion estimates are roughly balanced: the greedy
        # MCT ready times differ by at most one task's runtime
        speeds = {h.loid: h.machine.spec.speed for h in meta.hosts}
        finish = {loid: counts.get(loid, 0) * 100.0 / speeds[loid]
                  for loid in speeds}
        spread = max(finish.values()) - min(finish.values())
        assert spread <= 100.0 / min(speeds.values()) + 1e-9

    def test_produces_variants(self, hetero):
        meta, app = hetero
        sched = meta.make_scheduler("mct")
        rl = sched.compute_schedule([ObjectClassRequest(app, 4)])
        assert len(rl.masters[0].variants) >= 1

    def test_beats_random_makespan_on_heterogeneous_pool(self, hetero):
        meta, app = hetero
        mct = meta.make_scheduler("mct")
        out = mct.run([ObjectClassRequest(app, 8)])
        assert out.ok
        n, t_mct = wait_for_completion(meta, app, out.created)
        assert n == 8

        # fresh identical world for random
        meta2 = Metasystem(seed=21)
        meta2.add_domain("d")
        for i, speed in enumerate((4.0, 2.0, 1.0, 1.0)):
            meta2.add_unix_host(f"h{i}",
                                "d", MachineSpec(arch="sparc",
                                                 os_name="SunOS",
                                                 speed=speed), slots=8)
        meta2.add_vault("d")
        app2 = meta2.create_class("A", [Implementation("sparc", "SunOS")],
                                  work_units=100.0)
        rand = meta2.make_scheduler("random")
        out2 = rand.run([ObjectClassRequest(app2, 8)])
        assert out2.ok
        n2, t_rand = wait_for_completion(meta2, app2, out2.created)
        assert n2 == 8
        assert t_mct <= t_rand

    def test_uses_class_work_attribute(self, hetero):
        meta, app = hetero
        sched = meta.make_scheduler("mct")
        req = ObjectClassRequest(app, 1)
        assert sched._work_of(req) == 100.0
        bare = meta.create_class("Bare", [Implementation("sparc",
                                                         "SunOS")])
        assert sched._work_of(ObjectClassRequest(bare, 1)) == \
            sched.default_work

    def test_no_viable_hosts(self, hetero):
        meta, _ = hetero
        alien = meta.create_class("Alien", [Implementation("vax", "VMS")])
        sched = meta.make_scheduler("mct")
        with pytest.raises(SchedulingError):
            sched.compute_schedule([ObjectClassRequest(alien, 1)])
