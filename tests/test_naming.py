"""Tests for LOIDs and the context space."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BindingError, InvalidLOIDError
from repro.naming import LOID, ContextSpace, LOIDMinter

field_st = st.text(
    alphabet=st.characters(whitelist_categories=(),
                           whitelist_characters="abcdefghijklmnopqrstuvwxyz"
                                                "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
                                                "0123456789_-"),
    min_size=1, max_size=12)


class TestLOID:
    def test_str_round_trip(self):
        loid = LOID(("legion", "host", "ws1"))
        assert LOID.parse(str(loid)) == loid

    def test_equality_and_hash(self):
        a = LOID(("d", "host", "x"))
        b = LOID(("d", "host", "x"))
        c = LOID(("d", "host", "y"))
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2

    def test_ordering_is_lexicographic_on_fields(self):
        assert LOID(("a", "b")) < LOID(("a", "c"))
        assert sorted([LOID(("z",)), LOID(("a",))])[0] == LOID(("a",))

    def test_empty_rejected(self):
        with pytest.raises(InvalidLOIDError):
            LOID(())

    @pytest.mark.parametrize("bad", ["", "has space", "dot.dot", "semi;",
                                     "slash/"])
    def test_invalid_fields_rejected(self, bad):
        with pytest.raises(InvalidLOIDError):
            LOID(("ok", bad))

    @pytest.mark.parametrize("text", ["", "noprefix", "loid:",
                                      "LOID:a.b", "loid:a..b"])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(InvalidLOIDError):
            LOID.parse(text)

    def test_domain_and_type_tag(self):
        loid = LOID(("legion", "vault", "v1"))
        assert loid.domain == "legion"
        assert loid.type_tag == "vault"
        assert LOID(("only",)).type_tag == ""

    def test_child_and_descendant(self):
        parent = LOID(("d", "class", "C"))
        kid = parent.child("i0")
        assert kid.is_descendant_of(parent)
        assert not parent.is_descendant_of(kid)
        assert not parent.is_descendant_of(parent)

    def test_class_loid_strips_serial(self):
        cls = LOID(("d", "class", "C"))
        inst = cls.child("i3")
        assert inst.class_loid() == cls

    def test_class_loid_requires_depth(self):
        with pytest.raises(InvalidLOIDError):
            LOID(("solo",)).class_loid()

    @given(st.lists(field_st, min_size=1, max_size=6))
    @settings(max_examples=100, deadline=None)
    def test_property_parse_str_round_trip(self, fields):
        loid = LOID(fields)
        assert LOID.parse(str(loid)) == loid
        assert LOID.parse(str(loid)).fields == tuple(fields)


class TestMinter:
    def test_mint_named(self):
        m = LOIDMinter("legion")
        loid = m.mint("host", "ws1")
        assert loid.fields == ("legion", "host", "ws1")

    def test_mint_anonymous_unique(self):
        m = LOIDMinter()
        a, b = m.mint("class"), m.mint("class")
        assert a != b

    def test_instance_minting_nests_under_class(self):
        m = LOIDMinter()
        cls = m.mint("class", "C")
        i0, i1 = m.mint_instance(cls), m.mint_instance(cls)
        assert i0 != i1
        assert i0.is_descendant_of(cls)
        assert i0.class_loid() == cls

    def test_instance_counters_per_class(self):
        m = LOIDMinter()
        c1, c2 = m.mint("class", "A"), m.mint("class", "B")
        assert m.mint_instance(c1).fields[-1] == "i0"
        assert m.mint_instance(c2).fields[-1] == "i0"

    def test_bad_domain_rejected(self):
        with pytest.raises(InvalidLOIDError):
            LOIDMinter("bad domain")


class TestContextSpace:
    def test_bind_lookup(self):
        ctx = ContextSpace()
        loid = LOID(("d", "host", "x"))
        ctx.bind("/hosts/x", loid)
        assert ctx.lookup("/hosts/x") == loid
        assert "/hosts/x" in ctx
        assert len(ctx) == 1

    def test_relative_path_rejected(self):
        ctx = ContextSpace()
        with pytest.raises(BindingError):
            ctx.bind("hosts/x", LOID(("d",)))

    def test_dotdot_rejected(self):
        ctx = ContextSpace()
        with pytest.raises(BindingError):
            ctx.lookup("/a/../b")

    def test_double_bind_requires_replace(self):
        ctx = ContextSpace()
        a, b = LOID(("a",)), LOID(("b",))
        ctx.bind("/x", a)
        with pytest.raises(BindingError):
            ctx.bind("/x", b)
        ctx.bind("/x", b, replace=True)
        assert ctx.lookup("/x") == b
        assert len(ctx) == 1

    def test_unbind(self):
        ctx = ContextSpace()
        loid = LOID(("a",))
        ctx.bind("/x", loid)
        assert ctx.unbind("/x") == loid
        assert not ctx.exists("/x")
        with pytest.raises(BindingError):
            ctx.unbind("/x")

    def test_lookup_missing_raises_get_defaults(self):
        ctx = ContextSpace()
        with pytest.raises(BindingError):
            ctx.lookup("/nope")
        assert ctx.get("/nope") is None
        sentinel = LOID(("s",))
        assert ctx.get("/nope", sentinel) == sentinel

    def test_interior_context_not_a_binding(self):
        ctx = ContextSpace()
        ctx.bind("/a/b/c", LOID(("x",)))
        assert not ctx.exists("/a/b")
        assert ctx.list("/a") == ["b"]

    def test_list_root_and_missing(self):
        ctx = ContextSpace()
        ctx.bind("/hosts/h1", LOID(("a",)))
        ctx.bind("/vaults/v1", LOID(("b",)))
        assert ctx.list("/") == ["hosts", "vaults"]
        with pytest.raises(BindingError):
            ctx.list("/nothing")

    def test_walk_sorted(self):
        ctx = ContextSpace()
        ctx.bind("/b", LOID(("b",)))
        ctx.bind("/a/x", LOID(("ax",)))
        paths = [p for p, _ in ctx.walk()]
        assert paths == ["/a/x", "/b"]

    def test_binding_must_be_loid(self):
        ctx = ContextSpace()
        with pytest.raises(BindingError):
            ctx.bind("/x", "not-a-loid")

    def test_node_can_be_context_and_binding(self):
        ctx = ContextSpace()
        ctx.bind("/a", LOID(("a",)))
        ctx.bind("/a/b", LOID(("ab",)))
        assert ctx.lookup("/a") == LOID(("a",))
        assert ctx.lookup("/a/b") == LOID(("ab",))
        assert len(ctx) == 2
