"""Tests for the queue-management system simulators."""

import pytest

from repro.errors import ReservationDeniedError
from repro.queues import (
    BackfillQueue,
    CondorPool,
    FCFSQueue,
    JobState,
    QueueJob,
)
from repro.sim import RngRegistry, Simulator


def job(work, nodes=1, estimate=None, name=""):
    return QueueJob(work=work, nodes=nodes, estimated_runtime=estimate,
                    name=name)


class TestQueueJob:
    def test_validation(self):
        with pytest.raises(ValueError):
            QueueJob(work=-1.0)
        with pytest.raises(ValueError):
            QueueJob(work=1.0, nodes=0)

    def test_wait_and_turnaround(self):
        sim = Simulator()
        q = FCFSQueue(sim, nodes=1)
        a, b = job(100.0), job(50.0)
        q.submit(a)
        q.submit(b)
        sim.run()
        assert a.wait_time == 0.0
        assert a.turnaround == pytest.approx(100.0)
        assert b.wait_time == pytest.approx(100.0)
        assert b.turnaround == pytest.approx(150.0)


class TestFCFS:
    def test_runs_in_order(self):
        sim = Simulator()
        q = FCFSQueue(sim, nodes=1)
        finished = []
        for i in range(3):
            j = job(10.0, name=f"j{i}")
            j.on_complete = lambda jj: finished.append(jj.name)
            q.submit(j)
        sim.run()
        assert finished == ["j0", "j1", "j2"]

    def test_parallel_jobs_use_multiple_nodes(self):
        sim = Simulator()
        q = FCFSQueue(sim, nodes=4)
        a, b = job(100.0, nodes=2), job(100.0, nodes=2)
        q.submit(a)
        q.submit(b)
        sim.run_until(1.0)
        assert a.state == JobState.RUNNING
        assert b.state == JobState.RUNNING
        assert q.free_nodes == 0

    def test_head_of_line_blocking(self):
        sim = Simulator()
        q = FCFSQueue(sim, nodes=4)
        q.submit(job(100.0, nodes=4, name="wide"))
        blocked = job(10.0, nodes=1, name="small")
        q.submit(job(100.0, nodes=3, name="head"))
        q.submit(blocked)
        sim.run_until(1.0)
        # head needs 3 nodes (0 free) so small stays queued behind it
        assert blocked.state == JobState.QUEUED

    def test_node_speed_scales_runtime(self):
        sim = Simulator()
        q = FCFSQueue(sim, nodes=1, node_speed=2.0)
        a = job(100.0)
        q.submit(a)
        sim.run()
        assert a.finished_at == pytest.approx(50.0)

    def test_cancel_queued(self):
        sim = Simulator()
        q = FCFSQueue(sim, nodes=1)
        q.submit(job(100.0))
        b = job(10.0)
        q.submit(b)
        assert q.cancel(b)
        sim.run()
        assert b.state == JobState.CANCELLED
        assert b.finished_at is None

    def test_cancel_running_frees_node(self):
        sim = Simulator()
        q = FCFSQueue(sim, nodes=1)
        a, b = job(1000.0), job(10.0)
        q.submit(a)
        q.submit(b)
        sim.run_until(5.0)
        q.cancel(a)
        sim.run()
        assert a.state == JobState.CANCELLED
        assert b.state == JobState.DONE
        assert b.finished_at == pytest.approx(15.0)

    def test_utilization_snapshot(self):
        sim = Simulator()
        q = FCFSQueue(sim, nodes=4)
        q.submit(job(100.0, nodes=2))
        assert q.utilization_snapshot() == pytest.approx(0.5)

    def test_needs_at_least_one_node(self):
        from repro.errors import ResourceError
        with pytest.raises(ResourceError):
            FCFSQueue(Simulator(), nodes=0)


class TestBackfill:
    def test_backfill_fills_holes(self):
        sim = Simulator()
        q = BackfillQueue(sim, nodes=4)
        q.submit(job(100.0, nodes=3, estimate=100.0, name="running"))
        q.submit(job(100.0, nodes=4, estimate=100.0, name="head"))
        small = job(50.0, nodes=1, estimate=50.0, name="small")
        q.submit(small)
        sim.run_until(1.0)
        # small fits in the free node and finishes before the head's shadow
        assert small.state == JobState.RUNNING
        assert q.backfilled_jobs == 1

    def test_backfill_never_delays_head(self):
        sim = Simulator()
        q = BackfillQueue(sim, nodes=4)
        q.submit(job(100.0, nodes=3, estimate=100.0, name="running"))
        head = job(100.0, nodes=4, estimate=100.0, name="head")
        q.submit(head)
        # this job would run past the shadow time AND needs the head's node
        late = job(500.0, nodes=1, estimate=500.0, name="late")
        q.submit(late)
        sim.run_until(1.0)
        assert late.state == JobState.QUEUED
        sim.run()
        # head starts exactly when the running job ends
        assert head.started_at == pytest.approx(100.0)

    def test_fcfs_order_without_contention(self):
        sim = Simulator()
        q = BackfillQueue(sim, nodes=8)
        jobs = [job(10.0, nodes=1, name=f"j{i}") for i in range(4)]
        for j in jobs:
            q.submit(j)
        sim.run()
        assert all(j.state == JobState.DONE for j in jobs)

    def test_reserve_and_deny(self):
        sim = Simulator()
        q = BackfillQueue(sim, nodes=4)
        q.reserve(nodes=3, start=100.0, duration=50.0)
        with pytest.raises(ReservationDeniedError):
            q.reserve(nodes=2, start=120.0, duration=10.0)
        # non-overlapping window is fine
        q.reserve(nodes=4, start=200.0, duration=10.0)

    def test_reserve_validation(self):
        sim = Simulator()
        q = BackfillQueue(sim, nodes=4)
        with pytest.raises(ReservationDeniedError):
            q.reserve(nodes=5, start=0.0, duration=10.0)
        with pytest.raises(ReservationDeniedError):
            q.reserve(nodes=1, start=0.0, duration=0.0)

    def test_jobs_do_not_collide_with_reservation(self):
        sim = Simulator()
        q = BackfillQueue(sim, nodes=2)
        q.reserve(nodes=2, start=0.0, duration=1000.0)
        j = job(10.0, nodes=1, estimate=10.0)
        q.submit(j)
        sim.run_until(5.0)
        # the whole machine is reserved: the job must wait
        assert j.state == JobState.QUEUED

    def test_claim_runs_job_in_window(self):
        sim = Simulator()
        q = BackfillQueue(sim, nodes=2)
        res = q.reserve(nodes=1, start=0.0, duration=1000.0)
        j = job(10.0, nodes=1)
        assert q.claim(res, j)
        sim.run()
        assert j.state == JobState.DONE

    def test_claim_outside_window_fails(self):
        sim = Simulator()
        q = BackfillQueue(sim, nodes=2)
        res = q.reserve(nodes=1, start=100.0, duration=10.0)
        assert not q.claim(res, job(1.0))

    def test_release_unblocks(self):
        sim = Simulator()
        q = BackfillQueue(sim, nodes=1)
        res = q.reserve(nodes=1, start=0.0, duration=1000.0)
        j = job(10.0, nodes=1, estimate=10.0)
        q.submit(j)
        sim.run_until(1.0)
        assert j.state == JobState.QUEUED
        q.release(res)
        sim.run()
        assert j.state == JobState.DONE


class TestCondor:
    def make_pool(self, nodes=4, busy_frac=0.0, **kw):
        sim = Simulator()
        pool = CondorPool(sim, nodes, RngRegistry(5),
                          initially_busy_fraction=busy_frac, **kw)
        return sim, pool

    def test_jobs_run_on_idle_stations(self):
        sim, pool = self.make_pool(nodes=2, mean_idle=1e9, mean_busy=1e9)
        a = job(50.0)
        pool.submit(a)
        sim.run_until(60.0)
        assert a.state == JobState.DONE

    def test_all_busy_queues_jobs(self):
        sim, pool = self.make_pool(nodes=2, busy_frac=1.0,
                                   mean_idle=1e9, mean_busy=1e9)
        a = job(10.0)
        pool.submit(a)
        sim.run_until(100.0)
        assert a.state == JobState.QUEUED
        assert pool.idle_station_count() == 0

    def test_owner_return_vacates_and_requeues(self):
        sim, pool = self.make_pool(nodes=1, busy_frac=0.0,
                                   mean_idle=30.0, mean_busy=30.0)
        a = job(1e5)  # much longer than any idle period
        pool.submit(a)
        sim.run_until(3000.0)
        assert pool.vacations > 0
        assert a.preemptions > 0

    def test_vacated_job_preserves_progress(self):
        sim, pool = self.make_pool(nodes=1, busy_frac=0.0,
                                   mean_idle=50.0, mean_busy=50.0)
        a = job(200.0)
        pool.submit(a)
        # run until it eventually completes across vacations
        sim.run_until(50000.0)
        assert a.state == JobState.DONE
        # it must have completed exactly its work (progress preserved)
        assert a.remaining_work == 0.0

    def test_multinode_jobs_not_matched(self):
        sim, pool = self.make_pool(nodes=4, mean_idle=1e9, mean_busy=1e9)
        wide = job(10.0, nodes=2)
        pool.submit(wide)
        sim.run_until(100.0)
        assert wide.state == JobState.QUEUED
