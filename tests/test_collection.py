"""Tests for the Collection (Fig. 4 interface), push/pull, auth, daemon,
and function injection."""

import pytest

from repro.collection import Collection, DataCollectionDaemon
from repro.errors import AuthenticationError, NotAMemberError
from repro.naming import LOID
from repro.sim import Simulator


def loid(name):
    return LOID(("d", "host", name))


@pytest.fixture
def coll():
    return Collection(LOID(("d", "svc", "coll")), require_auth=True,
                      clock=lambda: 100.0)


class TestJoinLeave:
    def test_join_with_initial_attributes(self, coll):
        cred = coll.join(loid("h1"), {"host_arch": "sparc"})
        assert loid("h1") in coll
        assert len(coll) == 1
        record = coll.record_of(loid("h1"))
        assert record.attributes["host_arch"] == "sparc"
        assert record.joined_at == 100.0
        assert cred.member == loid("h1")

    def test_join_without_attributes(self, coll):
        coll.join(loid("h2"))
        assert coll.record_of(loid("h2")).attributes == {}

    def test_rejoin_refreshes(self, coll):
        coll.join(loid("h1"), {"a": 1})
        coll.join(loid("h1"), {"b": 2})
        record = coll.record_of(loid("h1"))
        assert record.attributes == {"a": 1, "b": 2}
        assert len(coll) == 1

    def test_leave(self, coll):
        cred = coll.join(loid("h1"))
        coll.leave(loid("h1"), cred)
        assert loid("h1") not in coll

    def test_leave_nonmember(self, coll):
        with pytest.raises(NotAMemberError):
            coll.leave(loid("ghost"))

    def test_members_sorted(self, coll):
        for name in ("z", "a", "m"):
            coll.join(loid(name))
        assert coll.members() == sorted(coll.members())


class TestAuth:
    def test_update_requires_credential(self, coll):
        coll.join(loid("h1"))
        with pytest.raises(AuthenticationError):
            coll.update_entry(loid("h1"), {"x": 1})
        assert coll.auth_failures == 1

    def test_update_with_wrong_member_credential(self, coll):
        coll.join(loid("h1"))
        other_cred = coll.join(loid("h2"))
        with pytest.raises(AuthenticationError):
            coll.update_entry(loid("h1"), {"x": 1}, other_cred)

    def test_update_with_valid_credential(self, coll):
        cred = coll.join(loid("h1"))
        coll.update_entry(loid("h1"), {"x": 1}, cred)
        assert coll.record_of(loid("h1")).attributes["x"] == 1
        assert coll.updates_applied == 1

    def test_foreign_collection_credential_rejected(self, coll):
        other = Collection(LOID(("d", "svc", "other")))
        cred = other.join(loid("h1"))
        coll.join(loid("h1"))
        with pytest.raises(AuthenticationError):
            coll.update_entry(loid("h1"), {"x": 1}, cred)

    def test_no_auth_mode(self):
        c = Collection(LOID(("d", "svc", "open")), require_auth=False)
        c.join(loid("h1"))
        c.update_entry(loid("h1"), {"x": 1})  # no credential needed
        assert c.record_of(loid("h1")).attributes["x"] == 1

    def test_update_nonmember(self, coll):
        with pytest.raises(NotAMemberError):
            coll.update_entry(loid("ghost"), {"x": 1})


class TestQuery:
    def fill(self, coll):
        coll.require_auth = False
        coll.join(loid("sun1"), {"host_arch": "sparc",
                                 "host_os_name": "SunOS",
                                 "host_load": 0.5, "host_up": True})
        coll.join(loid("sgi1"), {"host_arch": "mips",
                                 "host_os_name": "IRIX 5.3",
                                 "host_load": 2.0, "host_up": True})
        coll.join(loid("sgi2"), {"host_arch": "mips",
                                 "host_os_name": "IRIX 6.5",
                                 "host_load": 0.1, "host_up": False})

    def test_query_filters(self, coll):
        self.fill(coll)
        assert len(coll.query('$host_arch == "mips"')) == 2
        assert len(coll.query('$host_arch == "mips" and $host_up')) == 1
        assert coll.queries_served == 2

    def test_paper_irix5_query(self, coll):
        self.fill(coll)
        result = coll.query('match($host_os_name, "IRIX") and '
                            'match("5\\..*", $host_os_name)')
        assert [r.member for r in result] == [loid("sgi1")]

    def test_query_loids(self, coll):
        self.fill(coll)
        assert loid("sun1") in coll.query_loids("$host_load < 1.0")

    def test_results_deterministic_order(self, coll):
        self.fill(coll)
        a = [r.member for r in coll.query("true")]
        b = [r.member for r in coll.query("true")]
        assert a == b == sorted(a)

    def test_implicit_loid_attribute(self, coll):
        self.fill(coll)
        result = coll.query('match("sun1", $loid)')
        assert [r.member for r in result] == [loid("sun1")]

    def test_ast_cache_reused(self, coll):
        self.fill(coll)
        coll.query("$host_load < 1")
        coll.query("$host_load < 1")
        assert len(coll._ast_cache) == 1


class TestPullModel:
    def test_pull_from_object(self, meta):
        host = meta.hosts[0]
        fresh = Collection(LOID(("d", "svc", "c2")),
                           clock=lambda: meta.now)
        fresh.pull_from(host)
        assert host.loid in fresh
        record = fresh.record_of(host.loid)
        assert record.attributes["host_arch"] == "sparc"

    def test_pull_refreshes_existing(self, meta):
        host = meta.hosts[0]
        c = Collection(LOID(("d", "svc", "c3")), clock=lambda: meta.now)
        c.pull_from(host)
        host.machine.set_background_load(3.0)
        host.reassess()
        c.pull_from(host)
        assert c.record_of(host.loid).attributes["host_load"] >= 3.0


class TestStaleness:
    def test_record_staleness(self, coll):
        coll.join(loid("h1"))
        record = coll.record_of(loid("h1"))
        assert record.staleness(150.0) == 50.0
        assert record.staleness(50.0) == 0.0  # clamped

    def test_mean_staleness(self, coll):
        coll.join(loid("h1"))
        coll.join(loid("h2"))
        assert coll.mean_staleness(now=110.0) == pytest.approx(10.0)

    def test_mean_staleness_empty_is_nan(self, coll):
        import math
        assert math.isnan(coll.mean_staleness())


class TestInjection:
    def test_injected_function_usable_in_query(self, coll):
        coll.require_auth = False
        coll.join(loid("h1"), {"host_load": 4.0, "host_speed": 2.0})
        coll.inject_function(
            "effective_rate",
            lambda args, rec: rec.get("host_speed", 1.0)
            / (1.0 + rec.get("host_load", 0.0)))
        assert len(coll.query("effective_rate() > 0.3")) == 1
        assert len(coll.query("effective_rate() > 0.5")) == 0

    def test_computed_attribute(self, coll):
        coll.require_auth = False
        coll.join(loid("h1"), {"host_load": 4.0})
        coll.inject_attribute("predicted_load",
                              lambda rec: rec.get("host_load", 0.0) * 0.5)
        assert len(coll.query("$predicted_load == 2.0")) == 1

    def test_real_attribute_shadows_computed(self, coll):
        coll.require_auth = False
        coll.join(loid("h1"), {"x": 1})
        coll.inject_attribute("x", lambda rec: 99)
        assert len(coll.query("$x == 1")) == 1

    def test_computed_attr_requires_callable(self, coll):
        with pytest.raises(TypeError):
            coll.inject_attribute("bad", 42)


class TestDaemon:
    def test_daemon_sweeps_push_updates(self, meta):
        daemon = meta.make_daemon(interval=10.0)
        host = meta.hosts[0]
        record = meta.collection.record_of(host.loid)
        host._push_targets.clear()   # host no longer pushes on its own
        host.machine.set_background_load(5.0)
        host.reassess()              # refreshes local attributes only
        daemon.sweep()               # the daemon ferries them over
        assert record.attributes["host_load"] >= 5.0
        assert daemon.sweeps == 1

    def test_daemon_periodic_on_simulator(self, meta):
        daemon = meta.make_daemon(interval=10.0)
        daemon.start()
        meta.advance(35.0)
        assert daemon.sweeps == 3
        daemon.stop()
        meta.advance(100.0)
        assert daemon.sweeps == 3

    def test_daemon_start_idempotent(self, meta):
        daemon = meta.make_daemon(interval=10.0)
        daemon.start()
        daemon.start()
        meta.advance(10.5)
        assert daemon.sweeps == 1

    def test_daemon_watch_joins_new_source(self, meta):
        c2 = Collection(LOID(("d", "svc", "second")),
                        clock=lambda: meta.now)
        daemon = DataCollectionDaemon(meta.sim, [c2], interval=5.0)
        daemon.watch(meta.hosts[0])
        assert meta.hosts[0].loid in c2

    def test_daemon_interval_validation(self, meta):
        with pytest.raises(ValueError):
            DataCollectionDaemon(meta.sim, [meta.collection], interval=0.0)
