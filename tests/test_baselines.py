"""Tests for the related-work baselines (section 5)."""

import pytest

from repro import Implementation, ObjectClassRequest
from repro.baselines import (
    CentralQueueBaseline,
    DictatorialScheduler,
    GlobusStyleBroker,
)
from repro.hosts.policy import DomainBlacklist, LoadCeiling


class TestGlobusBroker:
    def broker(self, meta, **kw):
        return GlobusStyleBroker(meta.collection, meta.transport,
                                 meta.resolve,
                                 rng=meta.rngs.stream("t", "broker"), **kw)

    def test_places_without_reservations(self, meta, app_class):
        broker = self.broker(meta)
        outcome = broker.run([ObjectClassRequest(app_class, 2)])
        assert outcome.ok and len(outcome.created) == 2
        # no reservations were ever requested
        assert all(h.reservations.grants == 0 for h in meta.hosts)

    def test_retries_from_scratch(self, meta, app_class):
        # make every host refuse: the broker retries then gives up
        for host in meta.hosts:
            host.policy = LoadCeiling(max_load=-1.0)
        broker = self.broker(meta, retry_limit=3)
        outcome = broker.run([ObjectClassRequest(app_class, 1)])
        assert not outcome.ok
        assert outcome.attempts == 3

    def test_no_partial_placements_survive_failure(self, meta, app_class):
        # 3 hosts fine, one poisoned: with several tasks the broker will
        # eventually hit the poisoned host and roll everything back
        meta.hosts[0].policy = LoadCeiling(max_load=-1.0)
        broker = self.broker(meta, retry_limit=1)
        outcome = broker.run([ObjectClassRequest(app_class, 8)])
        if not outcome.ok:
            assert outcome.created == []
            assert len(app_class.instances) == 0

    def test_unviable_class(self, meta):
        alien = meta.create_class("Alien", [Implementation("vax", "VMS")])
        broker = self.broker(meta)
        outcome = broker.run([ObjectClassRequest(alien, 1)])
        assert not outcome.ok


class TestCentralQueue:
    def test_submits_to_single_cluster(self, multi):
        cluster = multi.add_batch_host("cluster", "dom0",
                                       queue_kind="fcfs", nodes=4)
        from repro.workload import implementations_for_all_platforms
        app = multi.create_class("Sweep",
                                 implementations_for_all_platforms(),
                                 work_units=10.0)
        baseline = CentralQueueBaseline(cluster, multi.transport)
        outcome = baseline.run([ObjectClassRequest(app, 6)])
        assert outcome.ok and len(outcome.created) == 6
        # everything landed on the one cluster
        for loid in outcome.created:
            assert app.get_instance(loid).host_loid == cluster.loid

    def test_rejects_incompatible_class(self, multi):
        cluster = multi.add_batch_host("cluster", "dom0",
                                       queue_kind="fcfs", nodes=4)
        alien = multi.create_class("Alien", [Implementation("vax", "VMS")])
        baseline = CentralQueueBaseline(cluster, multi.transport)
        outcome = baseline.run([ObjectClassRequest(alien, 1)])
        assert not outcome.ok
        assert "no implementation" in outcome.detail


class TestDictatorial:
    def test_succeeds_in_policy_free_world(self, meta, app_class):
        dictator = DictatorialScheduler(
            meta.collection, meta.transport, meta.resolve,
            rng=meta.rngs.stream("t", "dict"))
        outcome = dictator.run([ObjectClassRequest(app_class, 2)])
        assert outcome.ok

    def test_autonomy_defeats_dictator(self, meta, app_class):
        # every host enforces a policy the dictator ignores
        for host in meta.hosts:
            host.policy = DomainBlacklist([""])  # refuses empty domain
            host.reassess()
        dictator = DictatorialScheduler(
            meta.collection, meta.transport, meta.resolve,
            rng=meta.rngs.stream("t", "dict2"))
        outcome = dictator.run([ObjectClassRequest(app_class, 4)])
        assert not outcome.ok
        assert outcome.refused == 4
        assert outcome.created == []
