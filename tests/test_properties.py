"""Cross-cutting property-based tests on core invariants."""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.hosts import MachineSpec, SimJob, SimMachine
from repro.net import AdministrativeDomain, NetLocation, Topology
from repro.queues import BackfillQueue, FCFSQueue, JobState, QueueJob
from repro.sim import RngRegistry, Simulator


def fresh_machine(cpus=1, speed=1.0, memory=1e9):
    sim = Simulator()
    topo = Topology()
    topo.add_domain(AdministrativeDomain("d"))
    loc = topo.add_node("d", "m")
    machine = SimMachine("m", MachineSpec(cpus=cpus, speed=speed,
                                          memory_mb=memory),
                         loc, sim, RngRegistry(0))
    return sim, machine


class TestProcessorSharingProperties:
    @given(st.lists(st.floats(min_value=1.0, max_value=500.0),
                    min_size=1, max_size=8),
           st.integers(min_value=1, max_value=4),
           st.floats(min_value=0.25, max_value=4.0))
    @settings(max_examples=60, deadline=None)
    def test_work_conservation(self, works, cpus, speed):
        """Every job completes exactly its work; total work done equals
        the sum of submitted work."""
        sim, machine = fresh_machine(cpus=cpus, speed=speed)
        jobs = [SimJob(w, 1.0) for w in works]
        for job in jobs:
            machine.start_job(job)
        sim.run()
        assert all(j.done for j in jobs)
        assert machine.total_work_done == pytest.approx(sum(works))

    @given(st.lists(st.floats(min_value=1.0, max_value=500.0),
                    min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_makespan_bounds(self, works):
        """Single-CPU PS makespan equals total work / speed; no job
        finishes before its own work / speed."""
        sim, machine = fresh_machine(cpus=1, speed=1.0)
        jobs = [SimJob(w, 1.0) for w in works]
        for job in jobs:
            machine.start_job(job)
        sim.run()
        last = max(j.finished_at for j in jobs)
        assert last == pytest.approx(sum(works))
        for job in jobs:
            assert job.finished_at >= job.work - 1e-6

    @given(st.lists(st.floats(min_value=1.0, max_value=100.0),
                    min_size=2, max_size=6),
           st.floats(min_value=1.0, max_value=50.0))
    @settings(max_examples=40, deadline=None)
    def test_preemption_preserves_remaining_work(self, works, when):
        """Removing a job at any time leaves work+done = original."""
        sim, machine = fresh_machine()
        jobs = [SimJob(w, 1.0) for w in works]
        for job in jobs:
            machine.start_job(job)
        sim.run_until(when)
        victim = jobs[0]
        if victim.done:
            return
        done_before = machine.total_work_done
        remaining = machine.remove_job(victim)
        assert 0.0 <= remaining <= victim.work + 1e-9
        sim.run()
        total = machine.total_work_done
        expected = sum(w for w in works) - remaining
        assert total == pytest.approx(expected)


class TestQueueProperties:
    @given(st.lists(st.tuples(
        st.floats(min_value=1.0, max_value=200.0),    # work
        st.integers(min_value=1, max_value=4)),       # nodes
        min_size=1, max_size=10),
        st.integers(min_value=4, max_value=8))
    @settings(max_examples=40, deadline=None)
    def test_fcfs_all_complete_and_capacity_respected(self, specs, nodes):
        sim = Simulator()
        queue = FCFSQueue(sim, nodes=nodes)
        jobs = [QueueJob(work=w, nodes=n) for w, n in specs]
        # track peak usage via a monitor event after every sim step
        for job in jobs:
            queue.submit(job)
        while sim.step():
            assert queue._busy_nodes <= nodes
            assert queue._busy_nodes >= 0
        assert all(j.state == JobState.DONE for j in jobs)

    @given(st.lists(st.tuples(
        st.floats(min_value=1.0, max_value=200.0),
        st.integers(min_value=1, max_value=4)),
        min_size=2, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_fcfs_starts_in_submission_order(self, specs):
        sim = Simulator()
        queue = FCFSQueue(sim, nodes=4)
        jobs = [QueueJob(work=w, nodes=n) for w, n in specs]
        for job in jobs:
            queue.submit(job)
        sim.run()
        starts = [j.started_at for j in jobs]
        assert starts == sorted(starts)

    @given(st.lists(st.tuples(
        st.floats(min_value=1.0, max_value=100.0),
        st.integers(min_value=1, max_value=4)),
        min_size=2, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_backfill_never_beats_fcfs_for_the_head(self, specs):
        """EASY guarantee: the queue-head's start time under backfill is
        never later than under plain FCFS (with truthful estimates)."""
        def run(cls):
            sim = Simulator()
            queue = cls(sim, nodes=4)
            jobs = [QueueJob(work=w, nodes=n, estimated_runtime=w)
                    for w, n in specs]
            for job in jobs:
                queue.submit(job)
            sim.run()
            return jobs

        fcfs_jobs = run(FCFSQueue)
        bf_jobs = run(BackfillQueue)
        for fj, bj in zip(fcfs_jobs, bf_jobs):
            assert bj.state == JobState.DONE
            # overall completion never suffers by more than numerics
        # head job specifically: started no later under backfill
        assert bf_jobs[0].started_at <= fcfs_jobs[0].started_at + 1e-9


class TestKernelProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(st.lists(st.floats(min_value=0.1, max_value=50.0),
                    min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_process_resume_times_exact(self, waits):
        sim = Simulator()
        times = []

        def body():
            for w in waits:
                yield w
                times.append(sim.now)

        sim.process(body())
        sim.run()
        expected = []
        acc = 0.0
        for w in waits:
            acc += w
            expected.append(acc)
        assert times == pytest.approx(expected)


class TestTransportDeterminism:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_same_seed_same_latencies(self, seed):
        from repro.net import MetasystemLatencyModel, Transport

        def sample():
            sim = Simulator()
            topo = Topology()
            topo.add_domain(AdministrativeDomain("a"))
            topo.add_domain(AdministrativeDomain("b", distance=2.0))
            x = topo.add_node("a", "x")
            y = topo.add_node("b", "y")
            tr = Transport(sim, topo, MetasystemLatencyModel(topo),
                           RngRegistry(seed))
            for _ in range(5):
                tr.invoke(x, y, lambda: None)
            return sim.now

        assert sample() == sample()
