"""Tests for the live service tier: gateway, placement queue, worker
pool, traffic generator, and the serve campaign/CLI.

The backpressure-correctness pins from the service design:

* the bounded queue never exceeds its cap (hypothesis property);
* shed/rejected requests are *counted, not lost* — ``status`` answers
  for them forever and every submit lands in exactly one terminal or
  live state;
* a saturated→drained campaign cycle serializes byte-identically
  across reruns of the same seed.
"""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AdmissionRejected
from repro.service import (
    PlacementQueue,
    ServiceConfig,
    TrafficModel,
    run_service,
    run_service_comparison,
)
from repro.service.gateway import ServiceAdmission
from repro.service.request import ServiceRequest, TERMINAL_STATES
from repro.tools import main
from repro.workload.testbed import TestbedSpec, build_testbed


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def make_request(i, priority=0):
    return ServiceRequest(f"r{i:04d}", user="u", priority=priority)


def build_service(seed=0, **cfg):
    """A small testbed with the service tier started."""
    meta = build_testbed(TestbedSpec(
        seed=seed, n_domains=1, hosts_per_domain=3, platform_mix=2,
        background_load_mean=0.2))
    suite = meta.start_service(ServiceConfig(**cfg))
    return meta, suite


class TestServiceConfig:
    def test_defaults_valid(self):
        config = ServiceConfig()
        assert config.shedding_enabled
        assert config.backpressure == "shed"

    def test_unbounded_disables_shedding(self):
        assert not ServiceConfig(queue_cap=0).shedding_enabled

    @pytest.mark.parametrize("kwargs", [
        {"workers": 0},
        {"queue_cap": -1},
        {"backpressure": "drop"},
        {"defer_delay": 0.0},
        {"max_attempts": 0},
        {"work": -1.0},
        {"load_limit": 0.0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)


class TestPlacementQueue:
    def test_priority_then_fifo_order(self):
        q = PlacementQueue(cap=0)
        a, b, c, d = (make_request(0, 0), make_request(1, 2),
                      make_request(2, 2), make_request(3, 1))
        for r in (a, b, c, d):
            assert q.offer(r) == "enqueued"
        assert [q.pop() for _ in range(4)] == [b, c, d, a]

    def test_shed_at_cap(self):
        q = PlacementQueue(cap=2, backpressure="shed")
        assert q.offer(make_request(0)) == "enqueued"
        assert q.offer(make_request(1)) == "enqueued"
        assert q.offer(make_request(2)) == "shed"
        assert q.depth == 2 and q.shed == 1

    def test_reject_at_cap(self):
        q = PlacementQueue(cap=1, backpressure="reject")
        q.offer(make_request(0))
        assert q.offer(make_request(1)) == "rejected"

    def test_defer_downgrades_to_shed_when_final(self):
        q = PlacementQueue(cap=1, backpressure="defer")
        q.offer(make_request(0))
        assert q.offer(make_request(1)) == "deferred"
        assert q.offer(make_request(2), final=True) == "shed"

    def test_cancel_is_lazy_and_skipped_by_pop(self):
        q = PlacementQueue(cap=0)
        a, b = make_request(0), make_request(1)
        q.offer(a)
        q.offer(b)
        assert q.cancel(a.request_id)
        assert not q.cancel(a.request_id)  # only once
        assert q.depth == 1
        assert q.pop() is b
        assert q.pop() is None

    def test_pop_frees_a_slot(self):
        q = PlacementQueue(cap=1)
        q.offer(make_request(0))
        assert q.full
        q.pop()
        assert q.offer(make_request(1)) == "enqueued"

    @given(cap=st.integers(min_value=1, max_value=6),
           mode=st.sampled_from(["shed", "reject", "defer"]),
           ops=st.lists(st.tuples(
               st.sampled_from(["offer", "pop", "cancel"]),
               st.integers(min_value=0, max_value=3)), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_invariants_under_random_ops(self, cap, mode, ops):
        """depth <= cap always; every offer accounted for exactly once."""
        q = PlacementQueue(cap=cap, backpressure=mode)
        n = 0
        live = []  # enqueued, not yet popped or cancelled
        for op, x in ops:
            if op == "offer":
                r = make_request(n, priority=x)
                n += 1
                if q.offer(r) == "enqueued":
                    live.append(r.request_id)
            elif op == "pop":
                r = q.pop()
                if r is None:
                    assert not live
                else:
                    live.remove(r.request_id)
            elif live:
                target = live[x % len(live)]
                assert q.cancel(target)
                live.remove(target)
            else:
                assert not q.cancel(f"junk-{x}")
            assert q.depth <= cap
            assert q.depth == len(live)
            assert q.peak_depth <= cap
            assert q.enqueued == q.popped + q.cancelled + q.depth
            assert q.offered == (q.enqueued + q.shed + q.rejected
                                 + q.deferred)


class TestGatewayBackpressure:
    def test_shed_requests_are_counted_not_lost(self):
        meta, suite = build_service(queue_cap=2, backpressure="shed")
        suite.pool.stop()  # keep the backlog saturated
        results = [suite.gateway.submit(user=f"u{i}") for i in range(5)]
        assert [r.state for r in results] == ["queued", "queued",
                                              "shed", "shed", "shed"]
        # every submission still answers on the status route
        for r in results:
            status = suite.gateway.status(r.request_id)
            assert status.ok
            assert status.snapshot["request_id"] == r.request_id
        shed = suite.gateway.status(results[-1].request_id)
        assert shed.state == "shed"
        health = suite.gateway.health()
        assert health["submitted"] == 5
        assert health["requests_by_state"] == {"queued": 2, "shed": 3}
        assert health["queue"]["shed"] == 3

    def test_reject_mode(self):
        meta, suite = build_service(queue_cap=1, backpressure="reject")
        suite.pool.stop()
        suite.gateway.submit(user="a")
        result = suite.gateway.submit(user="b")
        assert not result.ok and result.state == "rejected"

    def test_defer_reoffers_then_sheds_after_max_defers(self):
        meta, suite = build_service(queue_cap=1, backpressure="defer",
                                    defer_delay=5.0, max_defers=2)
        suite.pool.stop()
        suite.gateway.submit(user="a")  # fills the backlog
        result = suite.gateway.submit(user="b")
        assert result.ok and result.state == "deferred"
        request = suite.gateway.requests[result.request_id]
        meta.advance(4.0)  # before the first re-offer
        assert request.state == "deferred" and request.defers == 1
        meta.advance(20.0)  # re-offer twice against a still-full backlog
        assert request.state == "shed"
        assert "after 2 defers" in request.detail

    def test_deferred_request_enqueues_when_space_frees(self):
        meta, suite = build_service(queue_cap=1, backpressure="defer",
                                    defer_delay=5.0, max_defers=3)
        suite.pool.stop()
        first = suite.gateway.submit(user="a")
        second = suite.gateway.submit(user="b")
        assert second.state == "deferred"
        suite.gateway.cancel(first.request_id)  # frees the only slot
        meta.advance(6.0)
        assert suite.gateway.requests[second.request_id].state == "queued"

    def test_cancel_semantics(self):
        meta, suite = build_service(queue_cap=4)
        suite.pool.stop()
        r = suite.gateway.submit(user="a")
        cancelled = suite.gateway.cancel(r.request_id)
        assert cancelled.ok and cancelled.state == "cancelled"
        again = suite.gateway.cancel(r.request_id)
        assert not again.ok and "not cancellable" in again.detail
        unknown = suite.gateway.cancel("req-999999")
        assert not unknown.ok and unknown.detail == "unknown request"
        assert suite.queue.pop() is None  # cancelled entry skipped

    def test_status_unknown_request(self):
        meta, suite = build_service()
        result = suite.gateway.status("nope")
        assert not result.ok and result.detail == "unknown request"

    def test_front_door_admission_rejects_on_load(self):
        meta, suite = build_service(load_limit=0.001)
        result = suite.gateway.submit(user="a")
        assert not result.ok and result.state == "rejected"
        assert suite.gateway.admission.rejections == 1
        assert "exceeds limit" in result.detail

    def test_admission_raises_like_guardrails(self):
        admission = ServiceAdmission(load_limit=0.001)

        class FakeHost:
            class machine:
                load_average = 5.0

        with pytest.raises(AdmissionRejected):
            admission.check([FakeHost()], now=0.0)

    def test_request_ids_minted_in_submit_order(self):
        meta, suite = build_service()
        suite.pool.stop()
        ids = [suite.gateway.submit(user="u").request_id
               for _ in range(3)]
        assert ids == ["req-000000", "req-000001", "req-000002"]


class TestWorkerPool:
    def test_workers_drain_queue_into_placements(self):
        meta, suite = build_service(workers=2, queue_cap=8)
        results = [suite.gateway.submit(user=f"u{i}") for i in range(4)]
        meta.advance(60.0)
        states = [suite.gateway.requests[r.request_id].state
                  for r in results]
        assert states == ["placed"] * 4
        assert suite.pool.placed == 4
        placed = suite.gateway.requests[results[0].request_id]
        assert placed.worker in (0, 1)
        assert placed.created  # instance LOIDs recorded
        assert placed.e2e_latency > 0

    def test_request_spans_recorded(self):
        meta, suite = build_service(workers=1, queue_cap=4)
        suite.gateway.submit(user="u")
        meta.advance(30.0)
        names = [s.name for s in meta.spans.spans]
        assert "service.request" in names
        assert "service.worker" in names

    def test_metrics_registered(self):
        meta, suite = build_service()
        suite.gateway.submit(user="u")
        meta.advance(30.0)
        names = set(meta.metrics.names())
        for name in ("service_requests_total",
                     "service_request_outcomes_total",
                     "service_e2e_seconds", "service_queue_depth",
                     "service_workers_busy"):
            assert name in names, name


class TestMetasystemWiring:
    def test_start_service_idempotent(self):
        meta, suite = build_service()
        assert meta.start_service() is suite
        assert meta.service is suite

    def test_testbed_spec_service_knob(self):
        meta = build_testbed(TestbedSpec(
            n_domains=1, hosts_per_domain=2, platform_mix=1,
            service=ServiceConfig(workers=1, queue_cap=4)))
        assert meta.service is not None
        assert meta.service.config.workers == 1

    def test_testbed_spec_service_true_uses_defaults(self):
        meta = build_testbed(TestbedSpec(
            n_domains=1, hosts_per_domain=2, platform_mix=1,
            service=True))
        assert meta.service.config == ServiceConfig()


class TestTrafficModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficModel(users=0)
        with pytest.raises(ValueError):
            TrafficModel(diurnal_amplitude=1.5)

    def test_peak_rate_bounds_rate(self):
        model = TrafficModel(users=1000, requests_per_user_hour=3.6,
                             surge_start=100.0, surge_length=50.0,
                             surge_multiplier=5.0)
        peak = model.peak_rate
        for t in (0.0, 60.0, 120.0, 250.0, 86000.0):
            assert model.rate(t, bursting=True) <= peak + 1e-12


CAMPAIGN_KWARGS = dict(
    seed=11, users=2000, duration=30.0, workers=2, queue_cap=8,
    requests_per_user_hour=3.6, surge_multiplier=8.0,
    n_domains=1, hosts_per_domain=4, platform_mix=2, host_slots=8,
    drain_time=300.0)


class TestServiceCampaign:
    def test_small_campaign_places_and_accounts_for_everything(self):
        report = run_service(**CAMPAIGN_KWARGS)
        assert report.placed > 0
        by_state = report.requests["by_state"]
        assert sum(by_state.values()) == report.requests["submitted"]
        assert set(by_state) <= TERMINAL_STATES  # fully drained
        assert report.pending == 0
        assert report.latency["count"] == report.placed
        assert report.slo is not None

    def test_saturated_drained_cycle_is_byte_identical(self):
        first = run_service(**CAMPAIGN_KWARGS)
        second = run_service(**CAMPAIGN_KWARGS)
        assert first.queue["peak_depth"] == CAMPAIGN_KWARGS["queue_cap"]
        assert first.shed > 0  # the surge saturated the backlog
        assert first.to_json() == second.to_json()

    def test_comparison_requires_bounded_cap(self):
        with pytest.raises(ValueError):
            run_service_comparison(queue_cap=0)


class TestServeCLI:
    def test_serve_smoke(self):
        code, text = run_cli(
            "serve", "--seed", "11", "--users", "2000", "--duration",
            "30", "--workers", "2", "--queue-cap", "8", "--rate", "3.6",
            "--surge", "8", "--domains", "1", "--hosts", "4",
            "--platforms", "2", "--slo-threshold", "60")
        assert code == 0
        assert "service campaign:" in text
        assert "outcomes:" in text

    def test_serve_writes_report(self, tmp_path):
        out_file = tmp_path / "service.json"
        code, text = run_cli(
            "serve", "--seed", "11", "--users", "2000", "--duration",
            "30", "--workers", "2", "--queue-cap", "8", "--rate", "3.6",
            "--surge", "8", "--domains", "1", "--hosts", "4",
            "--platforms", "2", "--slo-threshold", "60",
            "--out", str(out_file))
        assert code == 0
        assert out_file.exists()
        assert '"p99_within_slo"' in out_file.read_text()

    def test_serve_rejects_bad_backpressure(self):
        with pytest.raises(SystemExit):
            run_cli("serve", "--backpressure", "drop")
