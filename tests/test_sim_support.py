"""Tests for RNG streams, distributions, statistics, and tracing."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    Clipped,
    Constant,
    Empirical,
    Exponential,
    Histogram,
    LogNormal,
    Normal,
    NullTracer,
    Pareto,
    RngRegistry,
    RunningStats,
    Shifted,
    TimeWeightedStats,
    Tracer,
    Uniform,
    Weibull,
    derive_seed,
    summarize,
)


class TestRng:
    def test_same_path_same_stream_object(self):
        rngs = RngRegistry(1)
        assert rngs.stream("a", "b") is rngs.stream("a", "b")

    def test_different_paths_independent(self):
        rngs = RngRegistry(1)
        a = rngs.stream("a").random(5)
        b = rngs.stream("b").random(5)
        assert not np.allclose(a, b)

    def test_reproducible_across_registries(self):
        x = RngRegistry(42).stream("machine", "m1").random(3)
        y = RngRegistry(42).stream("machine", "m1").random(3)
        assert np.allclose(x, y)

    def test_seed_changes_stream(self):
        x = RngRegistry(1).stream("s").random(3)
        y = RngRegistry(2).stream("s").random(3)
        assert not np.allclose(x, y)

    def test_derive_seed_deterministic_and_distinct(self):
        assert derive_seed(5, "a") == derive_seed(5, "a")
        assert derive_seed(5, "a") != derive_seed(5, "b")
        assert derive_seed(5, "a", "b") != derive_seed(5, "ab")

    def test_fork_is_deterministic(self):
        a = RngRegistry(9).fork("child").stream("x").random(2)
        b = RngRegistry(9).fork("child").stream("x").random(2)
        assert np.allclose(a, b)

    def test_reset_rewinds_stream(self):
        rngs = RngRegistry(3)
        first = rngs.stream("s").random(4)
        rngs.reset("s")
        again = rngs.stream("s").random(4)
        assert np.allclose(first, again)


class TestDistributions:
    rng = np.random.default_rng(0)

    @pytest.mark.parametrize("dist,expected_mean", [
        (Constant(5.0), 5.0),
        (Uniform(2.0, 4.0), 3.0),
        (Exponential(10.0), 10.0),
        (Normal(1.0, 2.0), 1.0),
        (Pareto(3.0, 2.0), 3.0),
    ])
    def test_analytic_means(self, dist, expected_mean):
        assert dist.mean == pytest.approx(expected_mean)

    @pytest.mark.parametrize("dist", [
        Constant(2.0), Uniform(0.0, 1.0), Exponential(3.0),
        Normal(0.0, 1.0), LogNormal(0.0, 0.5), Pareto(2.5),
        Weibull(1.5, 2.0),
    ])
    def test_sample_n_matches_scalar_type(self, dist):
        rng = np.random.default_rng(1)
        arr = dist.sample_n(rng, 100)
        assert arr.shape == (100,)
        assert isinstance(dist.sample(rng), float)

    def test_empirical_mean_converges(self):
        dist = Empirical([1.0, 2.0, 3.0])
        rng = np.random.default_rng(2)
        samples = dist.sample_n(rng, 5000)
        assert samples.mean() == pytest.approx(2.0, abs=0.1)
        assert set(np.unique(samples)) <= {1.0, 2.0, 3.0}

    def test_empirical_rejects_empty(self):
        with pytest.raises(ValueError):
            Empirical([])

    def test_uniform_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Uniform(5.0, 1.0)

    def test_exponential_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            Exponential(0.0)

    def test_shifted(self):
        dist = Shifted(Constant(1.0), 0.5)
        assert dist.sample(self.rng) == 1.5
        assert dist.mean == 1.5

    def test_clipped_bounds(self):
        dist = Clipped(Normal(0.0, 100.0), low=-1.0, high=1.0)
        rng = np.random.default_rng(3)
        samples = dist.sample_n(rng, 200)
        assert samples.min() >= -1.0 and samples.max() <= 1.0

    def test_clipped_rejects_inverted(self):
        with pytest.raises(ValueError):
            Clipped(Constant(0.0), low=1.0, high=0.0)

    def test_pareto_infinite_mean_below_one(self):
        assert Pareto(0.9).mean == float("inf")

    def test_lognormal_mean_formula(self):
        dist = LogNormal(0.0, 1.0)
        assert dist.mean == pytest.approx(math.exp(0.5))

    def test_sampling_respects_seed(self):
        d = Exponential(1.0)
        a = d.sample_n(np.random.default_rng(7), 10)
        b = d.sample_n(np.random.default_rng(7), 10)
        assert np.allclose(a, b)


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.n == 0
        assert math.isnan(s.mean)
        assert math.isnan(s.variance)

    def test_matches_numpy(self):
        data = np.random.default_rng(0).random(500)
        s = RunningStats()
        s.extend(data)
        assert s.mean == pytest.approx(data.mean())
        assert s.variance == pytest.approx(data.var(ddof=1))
        assert s.minimum == data.min()
        assert s.maximum == data.max()

    def test_merge_equals_combined(self):
        rng = np.random.default_rng(1)
        a, b = rng.random(100), rng.random(70) + 3
        sa, sb = RunningStats(), RunningStats()
        sa.extend(a)
        sb.extend(b)
        merged = sa.merge(sb)
        both = np.concatenate([a, b])
        assert merged.n == 170
        assert merged.mean == pytest.approx(both.mean())
        assert merged.variance == pytest.approx(both.var(ddof=1))

    def test_merge_with_empty(self):
        s = RunningStats()
        s.add(1.0)
        merged = s.merge(RunningStats())
        assert merged.n == 1 and merged.mean == 1.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=2, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_property_mean_within_bounds(self, xs):
        s = RunningStats()
        s.extend(xs)
        assert s.minimum - 1e-6 <= s.mean <= s.maximum + 1e-6
        assert s.variance >= -1e-9


class TestTimeWeighted:
    def test_average_weighted_by_duration(self):
        tw = TimeWeightedStats(start_time=0.0, initial=0.0)
        tw.update(10.0, 4.0)   # value 0 for 10s
        tw.update(20.0, 0.0)   # value 4 for 10s
        tw.finish(20.0)
        assert tw.average == pytest.approx(2.0)

    def test_rejects_time_reversal(self):
        tw = TimeWeightedStats()
        tw.update(5.0, 1.0)
        with pytest.raises(ValueError):
            tw.update(4.0, 2.0)

    def test_nan_with_zero_span(self):
        assert math.isnan(TimeWeightedStats().average)


class TestHistogram:
    def test_binning_and_overflow(self):
        h = Histogram(0.0, 10.0, nbins=10)
        for x in [-1.0, 0.0, 5.5, 9.99, 10.0, 100.0]:
            h.add(x)
        assert h.total == 6
        assert h.counts[0] == 1          # underflow
        assert h.counts[-1] == 2         # overflow (10.0 and 100.0)
        assert h.counts[1] == 1          # 0.0
        assert h.counts[6] == 1          # 5.5

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Histogram(5.0, 5.0)

    def test_bin_edges(self):
        h = Histogram(0.0, 1.0, nbins=4)
        assert np.allclose(h.bin_edges(), [0, 0.25, 0.5, 0.75, 1.0])


class TestSummarize:
    def test_empty(self):
        out = summarize([])
        assert out["n"] == 0 and math.isnan(out["mean"])

    def test_percentiles(self):
        out = summarize(range(101), percentiles=(50, 90))
        assert out["p50"] == 50.0
        assert out["p90"] == 90.0
        assert out["min"] == 0 and out["max"] == 100

    def test_single_value_std_zero(self):
        assert summarize([5.0])["std"] == 0.0


class TestTracer:
    def test_emit_and_count(self):
        tr = Tracer(lambda: 1.5)
        tr.emit("cat", "ev", x=1)
        tr.emit("cat", "ev")
        tr.emit("cat", "other")
        assert tr.count("cat", "ev") == 2
        assert tr.count("cat") == 3
        assert len(tr) == 3
        assert tr.records[0].time == 1.5

    def test_category_filter(self):
        tr = Tracer(enabled_categories={"keep"})
        tr.emit("keep", "a")
        tr.emit("drop", "b")
        assert len(tr) == 1

    def test_select(self):
        tr = Tracer()
        tr.emit("a", "x")
        tr.emit("a", "y")
        tr.emit("b", "x")
        assert len(list(tr.select("a"))) == 2
        assert len(list(tr.select(event="x"))) == 2
        assert len(list(tr.select("a", "x"))) == 1

    def test_clear(self):
        tr = Tracer()
        tr.emit("a", "x")
        tr.clear()
        assert len(tr) == 0 and tr.count("a") == 0

    def test_null_tracer_records_nothing(self):
        tr = NullTracer()
        tr.emit("a", "x")
        assert len(tr) == 0

    def test_bind_clock(self):
        tr = Tracer()
        tr.bind_clock(lambda: 9.0)
        tr.emit("a", "x")
        assert tr.records[0].time == 9.0

    def test_record_str(self):
        tr = Tracer(lambda: 2.0)
        tr.emit("net", "invoke", rtt=0.5)
        assert "net/invoke" in str(tr.records[0])
