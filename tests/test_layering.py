"""Tests for the four Fig. 2 layering strategies."""

import pytest

from repro import Implementation, ObjectClassRequest
from repro.scheduler import (
    AppDoesItAll,
    AppWithRMServices,
    CombinedSchedulerRM,
    SeparateLayers,
)


@pytest.fixture
def layered(meta, app_class):
    """Service locations so inter-layer hops cost real latency."""
    meta.place_collection("uva")
    meta.place_enactor("uva")
    sched_loc = meta.topology.add_node("uva", "scheduler-svc")
    return meta, app_class, sched_loc


def requests(app_class, n=2):
    return [ObjectClassRequest(app_class, count=n)]


class TestStrategiesPlace:
    def test_app_does_it_all(self, layered):
        meta, app_class, _ = layered
        strategy = AppDoesItAll(meta.transport, meta.hosts,
                                rng=meta.rngs.stream("test", "a"))
        outcome = strategy.place(requests(app_class))
        assert outcome.ok
        assert len(outcome.created) == 2
        assert outcome.messages > 0

    def test_app_with_rm_services(self, layered):
        meta, app_class, _ = layered
        strategy = AppWithRMServices(meta.transport, meta.collection,
                                     meta.enactor,
                                     rng=meta.rngs.stream("test", "b"))
        outcome = strategy.place(requests(app_class))
        assert outcome.ok and len(outcome.created) == 2

    def test_combined_module(self, layered):
        meta, app_class, _ = layered
        sched = meta.make_scheduler("random")
        strategy = CombinedSchedulerRM(meta.transport, sched)
        outcome = strategy.place(requests(app_class))
        assert outcome.ok and len(outcome.created) == 2

    def test_separate_layers(self, layered):
        meta, app_class, sched_loc = layered
        sched = meta.make_scheduler("random")
        strategy = SeparateLayers(meta.transport, sched,
                                  scheduler_location=sched_loc,
                                  enactor_location=meta.enactor.location)
        outcome = strategy.place(requests(app_class))
        assert outcome.ok and len(outcome.created) == 2


class TestCostStructure:
    def test_direct_probing_costs_scale_with_hosts(self, layered):
        meta, app_class, _ = layered
        strategy = AppDoesItAll(meta.transport, meta.hosts,
                                rng=meta.rngs.stream("test", "c"))
        outcome = strategy.place(requests(app_class, n=1))
        # probe every host (RPC each) + reservation + create
        assert outcome.messages >= 2 * len(meta.hosts)

    def test_collection_replaces_probing(self, layered):
        meta, app_class, _ = layered
        direct = AppDoesItAll(meta.transport, meta.hosts,
                              rng=meta.rngs.stream("test", "d"))
        rm = AppWithRMServices(meta.transport, meta.collection,
                               meta.enactor,
                               rng=meta.rngs.stream("test", "e"))
        out_direct = direct.place(requests(app_class, n=1))
        out_rm = rm.place(requests(app_class, n=1))
        assert out_rm.messages < out_direct.messages

    def test_all_layerings_produce_running_instances(self, layered):
        meta, app_class, sched_loc = layered
        strategies = [
            AppDoesItAll(meta.transport, meta.hosts,
                         rng=meta.rngs.stream("t", "1")),
            AppWithRMServices(meta.transport, meta.collection, meta.enactor,
                              rng=meta.rngs.stream("t", "2")),
            CombinedSchedulerRM(meta.transport,
                                meta.make_scheduler("random")),
            SeparateLayers(meta.transport, meta.make_scheduler("irs"),
                           scheduler_location=sched_loc,
                           enactor_location=meta.enactor.location),
        ]
        total = 0
        for strategy in strategies:
            outcome = strategy.place(requests(app_class, n=1))
            assert outcome.ok, strategy.name
            total += len(outcome.created)
        assert total == 4
        assert len(app_class.instances) == 4

    def test_failure_reported_not_raised(self, meta):
        alien = meta.create_class("Alien", [Implementation("vax", "VMS")])
        strategy = AppDoesItAll(meta.transport, meta.hosts)
        outcome = strategy.place([ObjectClassRequest(alien, 1)])
        assert not outcome.ok
        assert outcome.detail
