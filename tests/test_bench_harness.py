"""Tests for the experiment-table harness and shared metrics."""

import io
import math

import pytest

from repro.bench import (
    Experiment,
    ExperimentTable,
    fmt,
    host_load_imbalance,
    mean_or_nan,
    placement_spread,
    success_rate,
)
from repro.scheduler.base import SchedulingOutcome


class TestFmt:
    @pytest.mark.parametrize("value,expected", [
        (True, "yes"),
        (False, "no"),
        (3, "3"),
        ("text", "text"),
        (1.5, "1.500"),
        (float("nan"), "nan"),
        (float("inf"), "inf"),
    ])
    def test_basic(self, value, expected):
        assert fmt(value) == expected

    def test_large_and_tiny_use_scientific(self):
        assert "e" in fmt(123456.789) or "E" in fmt(123456.789)
        assert "e" in fmt(0.000012)

    def test_precision(self):
        assert fmt(1.23456, precision=2) == "1.23"


class TestExperimentTable:
    def test_positional_rows(self):
        table = ExperimentTable("t", ["a", "b"])
        table.add(1, 2.5)
        rendered = table.render()
        assert "== t ==" in rendered
        assert "2.500" in rendered

    def test_named_rows(self):
        table = ExperimentTable("t", ["a", "b"])
        table.add(a=7, b="x")
        assert table.as_dicts() == [{"a": "7", "b": "x"}]

    def test_mixed_rejected(self):
        table = ExperimentTable("t", ["a"])
        with pytest.raises(ValueError):
            table.add(1, a=2)

    def test_wrong_arity_rejected(self):
        table = ExperimentTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_alignment(self):
        table = ExperimentTable("t", ["name", "v"])
        table.add("short", 1)
        table.add("a-much-longer-name", 2)
        lines = table.render().splitlines()
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equal width

    def test_print_to_stream(self):
        table = ExperimentTable("t", ["a"])
        table.add(1)
        buf = io.StringIO()
        table.print(buf)
        assert "== t ==" in buf.getvalue()


class TestExperiment:
    def test_run_prints_and_returns(self, capsys):
        exp = Experiment("EX", "Fig. X",
                         runner=lambda: ExperimentTable("inner", ["c"]))
        table = exp.run()
        out = capsys.readouterr().out
        assert "[EX] Fig. X" in out
        assert table.title == "inner"

    def test_silent_mode(self, capsys):
        exp = Experiment("EX", "Fig. X",
                         runner=lambda: ExperimentTable("inner", ["c"]))
        exp.run(print_table=False)
        assert capsys.readouterr().out == ""


class TestMetrics:
    def test_success_rate(self):
        outcomes = [SchedulingOutcome(ok=True), SchedulingOutcome(ok=False)]
        assert success_rate(outcomes) == 0.5
        assert math.isnan(success_rate([]))

    def test_mean_or_nan(self):
        assert mean_or_nan([1.0, float("nan"), 3.0]) == 2.0
        assert math.isnan(mean_or_nan([float("nan")]))
        assert math.isnan(mean_or_nan([]))

    def test_placement_spread(self, meta, app_class):
        from repro import ObjectClassRequest
        sched = meta.make_scheduler("load")
        outcome = sched.run([ObjectClassRequest(app_class, 3)])
        assert placement_spread(outcome) == 3
        assert placement_spread(SchedulingOutcome(ok=False)) == 0

    def test_host_load_imbalance(self, meta):
        assert host_load_imbalance(meta) == 0.0  # all idle
        meta.hosts[0].machine.set_background_load(8.0)
        assert host_load_imbalance(meta) > 0.5
