"""Tests for the legion-sim command-line tools."""

import io

import pytest

from repro.tools import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestHostsAndVaults:
    def test_hosts_table(self):
        code, text = run_cli("hosts", "--domains", "2", "--hosts", "3")
        assert code == 0
        assert "dom0-ws0" in text
        assert "dom1-ws2" in text
        assert text.count("\n") >= 6 + 3  # 6 rows + header/sep/title

    def test_vaults_table(self):
        code, text = run_cli("vaults", "--domains", "2")
        assert code == 0
        assert "dom0-vault0" in text
        assert "dom1-vault0" in text


class TestContext:
    def test_walk_lists_bindings(self):
        code, text = run_cli("context", "--domains", "1", "--hosts", "2")
        assert code == 0
        assert "/hosts/dom0-ws0" in text
        assert "/etc/Collection" in text


class TestQuery:
    def test_valid_query(self):
        code, text = run_cli("query", "--domains", "1", "--hosts", "4",
                             "$host_up == true")
        assert code == 0
        assert "4 record(s)" in text

    def test_syntax_error_exit_code(self):
        code, text = run_cli("query", "((($")
        assert code == 2
        assert "query error" in text


class TestRun:
    def test_run_places_instances(self):
        code, text = run_cli("run", "--count", "3", "--scheduler",
                             "random", "--load", "0")
        assert code == 0
        assert "placed 3 instance(s)" in text

    def test_run_wait_reports_completion(self):
        code, text = run_cli("run", "--count", "2", "--work", "50",
                             "--wait", "--load", "0")
        assert code == 0
        assert "2/2 completed" in text

    def test_unknown_scheduler(self):
        code, text = run_cli("run", "--scheduler", "sorcery")
        assert code == 2
        assert "unknown scheduler" in text


class TestMetrics:
    def test_table_covers_instrumented_families(self):
        code, text = run_cli("metrics", "--count", "2", "--work", "50",
                             "--load", "0")
        assert code == 0
        for family in ("collection_queries_total", "enactor_step_seconds",
                       "host_reservations_granted_total",
                       "transport_messages_total", "sim_events_processed"):
            assert family in text

    def test_json_format_parses(self):
        import json
        code, text = run_cli("metrics", "--count", "2", "--work", "50",
                             "--load", "0", "--format", "json")
        assert code == 0
        snapshot = json.loads(text)
        assert snapshot["metrics"]

    def test_prom_format(self):
        code, text = run_cli("metrics", "--count", "2", "--work", "50",
                             "--load", "0", "--format", "prom")
        assert code == 0
        assert "# TYPE transport_messages_total counter" in text
        assert 'transport_messages_total{kind="sent"}' in text

    def test_deterministic_across_invocations(self):
        a = run_cli("metrics", "--count", "2", "--seed", "5", "--load",
                    "0", "--format", "json")
        b = run_cli("metrics", "--count", "2", "--seed", "5", "--load",
                    "0", "--format", "json")
        assert a == b

    def test_unknown_scheduler(self):
        code, text = run_cli("metrics", "--scheduler", "sorcery")
        assert code == 2
        assert "unknown scheduler" in text


class TestMetricsQuantiles:
    def test_custom_quantile_columns(self):
        code, text = run_cli("metrics", "--count", "2", "--work", "50",
                             "--load", "0", "--quantiles", "p50,p90,p99")
        assert code == 0
        header = text.splitlines()[1]
        for col in ("p50", "p90", "p99"):
            assert col in header

    def test_bare_float_quantiles_accepted(self):
        code, text = run_cli("metrics", "--count", "2", "--work", "50",
                             "--load", "0", "--quantiles", "0.25,0.75")
        assert code == 0
        assert "p25" in text and "p75" in text

    def test_bad_quantiles_are_usage_errors(self):
        for bad in ("bogus", "p0", "p100", ","):
            code, text = run_cli("metrics", "--quantiles", bad)
            assert code == 2, bad


class TestTraceSteps:
    def test_steps_mode_aggregates_across_traces(self):
        code, text = run_cli("trace", "steps", "--count", "3",
                             "--work", "50", "--load", "0", "--wait")
        assert code == 0
        assert "cross-trace step latency" in text
        assert "placement" in text
        header = text.splitlines()[1]
        for col in ("step", "count", "errors", "mean_s", "p95_s",
                    "max_s", "self_s"):
            assert col in header

    def test_steps_deterministic(self):
        args = ("trace", "steps", "--count", "2", "--seed", "3",
                "--load", "0", "--wait")
        assert run_cli(*args) == run_cli(*args)


class TestSLOCommand:
    CHAOS = ("--chaos-profile", "hosts", "--chaos-seed", "1")

    def test_healthy_run_exits_zero(self):
        code, text = run_cli("slo", "--waves", "3", "--load", "0",
                             "--no-windows")
        assert code == 0
        assert "overall: HEALTHY" in text
        assert "slo placement-latency" in text
        assert "slo placement-success" in text
        assert "slo reservation-success" in text

    def test_chaotic_run_exhausts_budget_and_exits_nonzero(self):
        code, text = run_cli("slo", *self.CHAOS, "--no-windows")
        assert code == 1
        assert "BUDGET EXHAUSTED" in text
        assert "ERROR: error budget exhausted" in text

    def test_allow_exhausted_suppresses_failure(self):
        code, text = run_cli("slo", *self.CHAOS, "--allow-exhausted",
                             "--no-windows")
        assert code == 0

    def test_json_output_is_byte_deterministic(self):
        args = ("slo", *self.CHAOS, "--format", "json",
                "--allow-exhausted")
        a = run_cli(*args)
        b = run_cli(*args)
        assert a == b
        import json
        doc = json.loads(a[1])
        assert doc["slos"] and "minutes_lost" in doc

    def test_out_writes_report_json(self, tmp_path):
        import json
        path = tmp_path / "slo.json"
        code, text = run_cli("slo", "--waves", "2", "--load", "0",
                             "--out", str(path), "--no-windows")
        assert code == 0
        doc = json.loads(path.read_text())
        assert doc["healthy"]
        assert f"wrote SLO health report to {path}" in text

    def test_custom_spec_file(self, tmp_path):
        import json
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"slos": [
            {"name": "lenient", "kind": "latency", "target": 0.5,
             "metric": "placement_seconds", "threshold": 10.0}]}))
        code, text = run_cli("slo", "--waves", "2", "--load", "0",
                             "--spec", str(path), "--no-windows")
        assert code == 0
        assert "slo lenient" in text
        assert "placement-latency" not in text

    def test_usage_errors(self, tmp_path):
        code, _ = run_cli("slo", "--window", "0")
        assert code == 2
        code, _ = run_cli("slo", "--spec", str(tmp_path / "missing.json"))
        assert code == 2
        code, _ = run_cli("slo", "--scheduler", "sorcery")
        assert code == 2

    def test_compare_guardrails_reduces_slo_damage(self):
        code, text = run_cli(
            "slo", "--compare-guardrails", *self.CHAOS,
            "--domains", "3", "--hosts", "6", "--platforms", "3",
            "--waves", "8")
        assert code == 0
        assert "slo minutes lost" in text
        lost = {}
        for line in text.splitlines():
            if "slo minutes lost" in line:
                for part in line.split(":")[1].split(","):
                    mode, value = part.split()
                    lost[mode] = float(value)
        # the acceptance criterion: chaos consumes SLO budget and
        # guardrails measurably reduces the damage
        assert lost["off"] > 0
        assert lost["guardrails"] < lost["off"]


class TestBench:
    def test_bench_compares_schedulers(self):
        code, text = run_cli("bench", "--count", "3", "--work", "50",
                             "--scheduler", "random", "--scheduler",
                             "mct", "--load", "0")
        assert code == 0
        assert "random" in text
        assert "mct" in text

    def test_determinism_across_invocations(self):
        a = run_cli("run", "--count", "2", "--seed", "9", "--load", "0")
        b = run_cli("run", "--count", "2", "--seed", "9", "--load", "0")
        assert a == b


class TestFederationCommand:
    def test_prints_ring_and_gossip_stats(self):
        code, text = run_cli("federation", "--shards", "3",
                             "--replication", "2",
                             "--gossip-interval", "30",
                             "--cache-ttl", "60", "--wait")
        assert code == 0
        assert "ring layout: 3 shards, replication 2" in text
        assert "shard0" in text and "shard2" in text
        assert "replica placement" in text
        assert "cache hit ratio" in text
        assert "rounds" in text

    def test_defaults_to_three_shards(self):
        code, text = run_cli("federation")
        assert code == 0
        assert "3 shards" in text

    def test_run_accepts_federation_flags(self):
        code, text = run_cli("run", "--count", "3", "--scheduler",
                             "random", "--load", "0", "--shards", "3")
        assert code == 0
        assert "placed 3 instance(s)" in text

    def test_federated_run_matches_monolithic_placements(self):
        _, mono = run_cli("run", "--count", "3", "--scheduler", "irs",
                          "--seed", "4")
        _, fed = run_cli("run", "--count", "3", "--scheduler", "irs",
                         "--seed", "4", "--shards", "3",
                         "--replication", "2")
        mono_lines = [ln for ln in mono.splitlines()
                      if ln.startswith("  ")]
        fed_lines = [ln for ln in fed.splitlines() if ln.startswith("  ")]
        assert mono_lines == fed_lines

    def test_determinism_across_invocations(self):
        args = ("federation", "--shards", "3", "--gossip-interval", "20",
                "--seed", "9", "--wait")
        _, first = run_cli(*args)
        _, second = run_cli(*args)
        assert first == second


class TestEconomyCommand:
    def test_run_accepts_cost_scheduler(self):
        code, text = run_cli("run", "--count", "2", "--scheduler", "cost")
        assert code == 0
        assert "placed 2 instance(s) via cost" in text

    def test_run_accepts_economy_scheduler(self):
        code, text = run_cli("run", "--count", "2",
                             "--scheduler", "economy")
        assert code == 0
        assert "placed 2 instance(s) via economy" in text

    def test_single_report(self):
        code, text = run_cli("economy", "--users", "2", "--waves", "2",
                             "--count", "1", "--domains", "2",
                             "--hosts", "3")
        assert code == 0
        assert "economy campaign: scheduler=economy" in text
        assert "deadline:" in text and "auction:" in text
        assert "user u0:" in text and "user u1:" in text

    def test_report_out_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        args = ("economy", "--users", "2", "--waves", "2", "--count",
                "1", "--domains", "2", "--hosts", "3", "--mode", "time")
        code, _ = run_cli(*args, "--out", str(a))
        assert code == 0
        run_cli(*args, "--out", str(b))
        assert a.read_text() == b.read_text()

    def test_bad_mode_rejected(self):
        with pytest.raises(SystemExit):
            run_cli("economy", "--mode", "frugal")
