"""Tests for the IndexedCollection: identical semantics, indexed speed."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collection import Collection, IndexedCollection, parse
from repro.collection.indexing import equality_constraints
from repro.naming import LOID


def loid(name):
    return LOID(("d", "host", name))


def fill(coll, n=20):
    coll.require_auth = False
    for i in range(n):
        coll.join(loid(f"h{i}"), {
            "host_arch": ["sparc", "mips", "x86"][i % 3],
            "host_os_name": ["SunOS", "IRIX", "Linux"][i % 3],
            "host_load": float(i % 5),
            "host_up": i % 4 != 0,
            "cpus": 1 + i % 2,
            "tags": ["fast"] if i % 2 == 0 else ["slow", "cheap"],
        })


@pytest.fixture
def pair():
    plain = Collection(LOID(("d", "svc", "plain")), require_auth=False)
    indexed = IndexedCollection(LOID(("d", "svc", "indexed")),
                                require_auth=False)
    fill(plain)
    fill(indexed)
    return plain, indexed


QUERIES = [
    '$host_arch == "sparc"',
    '$host_arch == "sparc" and $host_up == true',
    '$host_arch == "sparc" and $host_load < 3',
    '$host_arch == "mips" and $host_os_name == "IRIX" and $cpus == 2',
    '$host_load < 2',                       # no equality: scan fallback
    '$host_arch == "sparc" or $host_arch == "mips"',   # OR: fallback
    'not ($host_arch == "sparc")',                     # NOT: fallback
    '$tags == "cheap" and $host_up == true',           # list values
    '$host_arch == "vax"',                             # empty result
    'match("IRIX", $host_os_name) and $host_arch == "mips"',
    '$cpus == 2.0',                                    # numeric coercion
    '$host_up == true',
]


class TestSemanticsMatchScan:
    @pytest.mark.parametrize("query", QUERIES)
    def test_same_results_as_plain(self, pair, query):
        plain, indexed = pair
        assert ([r.member for r in plain.query(query)]
                == [r.member for r in indexed.query(query)])

    def test_index_used_where_possible(self, pair):
        _plain, indexed = pair
        indexed.query('$host_arch == "sparc"')
        assert indexed.index_hits == 1
        indexed.query('$host_load < 2')
        assert indexed.scan_fallbacks == 1

    def test_update_reindexes(self, pair):
        _plain, indexed = pair
        member = loid("h0")
        indexed.update_entry(member, {"host_arch": "alpha"})
        assert member in {r.member for r in
                          indexed.query('$host_arch == "alpha"')}
        assert member not in {r.member for r in
                              indexed.query('$host_arch == "sparc"')}

    def test_leave_unindexes(self, pair):
        _plain, indexed = pair
        member = loid("h0")
        indexed.leave(member)
        assert member not in {r.member for r in
                              indexed.query('$host_arch == "sparc"')}

    def test_pull_from_reindexes(self, meta):
        indexed = IndexedCollection(LOID(("d", "svc", "i2")),
                                    clock=lambda: meta.now)
        host = meta.hosts[0]
        indexed.pull_from(host)
        assert host.loid in {r.member for r in
                             indexed.query('$host_arch == "sparc"')}
        host.machine.set_background_load(9.0)
        host.reassess()
        indexed.pull_from(host)
        result = indexed.query('$host_arch == "sparc" and $host_load > 5')
        assert host.loid in {r.member for r in result}

    def test_computed_attribute_not_misindexed(self, pair):
        _plain, indexed = pair
        indexed.inject_attribute("grade", lambda rec: "good")
        result = indexed.query('$grade == "good" and '
                               '$host_arch == "sparc"')
        # computed attr is skipped by the planner but honoured by the
        # evaluator: all sparc records match
        assert len(result) == 7

    def test_contradictory_constraints_short_circuit(self, pair):
        _plain, indexed = pair
        assert indexed.query('$host_arch == "sparc" and '
                             '$host_arch == "mips"') == []


class TestPlanner:
    def test_collects_top_level_conjunction(self):
        ast = parse('$a == 1 and ($b == "x" and $c == true)')
        constraints = dict(equality_constraints(ast))
        assert constraints == {"a": 1, "b": "x", "c": True}

    def test_reversed_operands(self):
        ast = parse('"x" == $b')
        assert equality_constraints(ast) == [("b", "x")]

    def test_ignores_or_and_not_branches(self):
        assert equality_constraints(parse('$a == 1 or $b == 2')) == []
        assert equality_constraints(parse('not ($a == 1)')) == []
        ast = parse('$a == 1 and ($b == 2 or $c == 3)')
        assert equality_constraints(ast) == [("a", 1)]

    def test_ignores_inequalities(self):
        assert equality_constraints(parse('$a != 1 and $b < 2')) == []


attr_st = st.sampled_from(["host_arch", "host_load", "host_up", "cpus"])
value_st = st.one_of(
    st.sampled_from(["sparc", "mips", "x86", "vax"]),
    st.integers(min_value=0, max_value=5),
    st.booleans())


class TestPropertyEquivalence:
    @given(st.lists(st.tuples(attr_st, value_st), min_size=1, max_size=3),
           st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_conjunctive_queries_agree_with_scan(self, constraints,
                                                 add_range):
        plain = Collection(LOID(("d", "svc", "p")), require_auth=False)
        indexed = IndexedCollection(LOID(("d", "svc", "i")),
                                    require_auth=False)
        fill(plain, n=30)
        fill(indexed, n=30)
        terms = []
        for attr, value in constraints:
            if isinstance(value, str):
                terms.append(f'${attr} == "{value}"')
            elif isinstance(value, bool):
                terms.append(f'${attr} == {"true" if value else "false"}')
            else:
                terms.append(f'${attr} == {value}')
        if add_range:
            terms.append('$host_load < 4')
        query = " and ".join(terms)
        assert ([r.member for r in plain.query(query)]
                == [r.member for r in indexed.query(query)])


# -- differential fuzz: random records x random query trees ----------------

record_st = st.fixed_dictionaries({
    "host_arch": st.sampled_from(["sparc", "mips", "x86", "alpha"]),
    "host_os_name": st.sampled_from(["SunOS", "IRIX", "Linux"]),
    "host_load": st.floats(min_value=0.0, max_value=8.0,
                           allow_nan=False, allow_infinity=False),
    "host_up": st.booleans(),
    "cpus": st.integers(min_value=1, max_value=8),
    "tags": st.lists(st.sampled_from(["fast", "slow", "cheap", "big"]),
                     max_size=2),
})


def _literal(value):
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return f'"{value}"'
    return repr(value)


_comparison_st = st.one_of(
    st.tuples(st.sampled_from(["host_arch", "host_os_name"]),
              st.sampled_from(["==", "!="]),
              st.sampled_from(["sparc", "mips", "x86", "IRIX", "Linux"])),
    st.tuples(st.just("host_load"),
              st.sampled_from(["<", "<=", ">", ">=", "==", "!="]),
              st.integers(min_value=0, max_value=8)),
    st.tuples(st.just("cpus"),
              st.sampled_from(["==", "!=", "<", ">="]),
              st.integers(min_value=1, max_value=8)),
    st.tuples(st.just("host_up"), st.just("=="), st.booleans()),
    st.tuples(st.just("tags"), st.just("=="),
              st.sampled_from(["fast", "slow", "cheap", "big"])),
).map(lambda t: f"${t[0]} {t[1]} {_literal(t[2])}")

query_st = st.recursive(
    _comparison_st,
    lambda inner: st.one_of(
        st.tuples(inner, inner).map(lambda t: f"({t[0]} and {t[1]})"),
        st.tuples(inner, inner).map(lambda t: f"({t[0]} or {t[1]})"),
        inner.map(lambda q: f"not {q}"),
    ),
    max_leaves=6)


class TestDifferentialFuzz:
    """IndexedCollection must agree with a linear-scan Collection on
    arbitrary record sets and arbitrary query trees — the index is an
    optimization, never a semantic change."""

    @given(st.lists(record_st, min_size=0, max_size=25), query_st)
    @settings(max_examples=120, deadline=None)
    def test_arbitrary_records_and_queries_agree(self, records, query):
        plain = Collection(LOID(("d", "svc", "p")), require_auth=False)
        indexed = IndexedCollection(LOID(("d", "svc", "i")),
                                    require_auth=False)
        for i, attrs in enumerate(records):
            plain.join(loid(f"h{i}"), dict(attrs))
            indexed.join(loid(f"h{i}"), dict(attrs))
        assert ([r.member for r in plain.query(query)]
                == [r.member for r in indexed.query(query)])

    @given(st.lists(record_st, min_size=1, max_size=12),
           st.data())
    @settings(max_examples=60, deadline=None)
    def test_agreement_survives_updates_and_leaves(self, records, data):
        plain = Collection(LOID(("d", "svc", "p")), require_auth=False)
        indexed = IndexedCollection(LOID(("d", "svc", "i")),
                                    require_auth=False)
        for i, attrs in enumerate(records):
            plain.join(loid(f"h{i}"), dict(attrs))
            indexed.join(loid(f"h{i}"), dict(attrs))
        # mutate a member in both, drop another from both
        victim = data.draw(st.integers(0, len(records) - 1))
        patch = data.draw(record_st)
        plain.update_entry(loid(f"h{victim}"), dict(patch))
        indexed.update_entry(loid(f"h{victim}"), dict(patch))
        if len(records) > 1:
            gone = data.draw(st.integers(0, len(records) - 1))
            if gone != victim:
                plain.leave(loid(f"h{gone}"))
                indexed.leave(loid(f"h{gone}"))
        query = data.draw(query_st)
        assert ([r.member for r in plain.query(query)]
                == [r.member for r in indexed.query(query)])
