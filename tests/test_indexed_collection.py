"""Tests for the IndexedCollection: identical semantics, indexed speed."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collection import Collection, IndexedCollection, parse
from repro.collection.indexing import equality_constraints
from repro.naming import LOID


def loid(name):
    return LOID(("d", "host", name))


def fill(coll, n=20):
    coll.require_auth = False
    for i in range(n):
        coll.join(loid(f"h{i}"), {
            "host_arch": ["sparc", "mips", "x86"][i % 3],
            "host_os_name": ["SunOS", "IRIX", "Linux"][i % 3],
            "host_load": float(i % 5),
            "host_up": i % 4 != 0,
            "cpus": 1 + i % 2,
            "tags": ["fast"] if i % 2 == 0 else ["slow", "cheap"],
        })


@pytest.fixture
def pair():
    plain = Collection(LOID(("d", "svc", "plain")), require_auth=False)
    indexed = IndexedCollection(LOID(("d", "svc", "indexed")),
                                require_auth=False)
    fill(plain)
    fill(indexed)
    return plain, indexed


QUERIES = [
    '$host_arch == "sparc"',
    '$host_arch == "sparc" and $host_up == true',
    '$host_arch == "sparc" and $host_load < 3',
    '$host_arch == "mips" and $host_os_name == "IRIX" and $cpus == 2',
    '$host_load < 2',                       # no equality: scan fallback
    '$host_arch == "sparc" or $host_arch == "mips"',   # OR: fallback
    'not ($host_arch == "sparc")',                     # NOT: fallback
    '$tags == "cheap" and $host_up == true',           # list values
    '$host_arch == "vax"',                             # empty result
    'match("IRIX", $host_os_name) and $host_arch == "mips"',
    '$cpus == 2.0',                                    # numeric coercion
    '$host_up == true',
]


class TestSemanticsMatchScan:
    @pytest.mark.parametrize("query", QUERIES)
    def test_same_results_as_plain(self, pair, query):
        plain, indexed = pair
        assert ([r.member for r in plain.query(query)]
                == [r.member for r in indexed.query(query)])

    def test_index_used_where_possible(self, pair):
        _plain, indexed = pair
        indexed.query('$host_arch == "sparc"')
        assert indexed.index_hits == 1
        indexed.query('$host_load < 2')
        assert indexed.scan_fallbacks == 1

    def test_update_reindexes(self, pair):
        _plain, indexed = pair
        member = loid("h0")
        indexed.update_entry(member, {"host_arch": "alpha"})
        assert member in {r.member for r in
                          indexed.query('$host_arch == "alpha"')}
        assert member not in {r.member for r in
                              indexed.query('$host_arch == "sparc"')}

    def test_leave_unindexes(self, pair):
        _plain, indexed = pair
        member = loid("h0")
        indexed.leave(member)
        assert member not in {r.member for r in
                              indexed.query('$host_arch == "sparc"')}

    def test_pull_from_reindexes(self, meta):
        indexed = IndexedCollection(LOID(("d", "svc", "i2")),
                                    clock=lambda: meta.now)
        host = meta.hosts[0]
        indexed.pull_from(host)
        assert host.loid in {r.member for r in
                             indexed.query('$host_arch == "sparc"')}
        host.machine.set_background_load(9.0)
        host.reassess()
        indexed.pull_from(host)
        result = indexed.query('$host_arch == "sparc" and $host_load > 5')
        assert host.loid in {r.member for r in result}

    def test_computed_attribute_not_misindexed(self, pair):
        _plain, indexed = pair
        indexed.inject_attribute("grade", lambda rec: "good")
        result = indexed.query('$grade == "good" and '
                               '$host_arch == "sparc"')
        # computed attr is skipped by the planner but honoured by the
        # evaluator: all sparc records match
        assert len(result) == 7

    def test_contradictory_constraints_short_circuit(self, pair):
        _plain, indexed = pair
        assert indexed.query('$host_arch == "sparc" and '
                             '$host_arch == "mips"') == []


class TestPlanner:
    def test_collects_top_level_conjunction(self):
        ast = parse('$a == 1 and ($b == "x" and $c == true)')
        constraints = dict(equality_constraints(ast))
        assert constraints == {"a": 1, "b": "x", "c": True}

    def test_reversed_operands(self):
        ast = parse('"x" == $b')
        assert equality_constraints(ast) == [("b", "x")]

    def test_ignores_or_and_not_branches(self):
        assert equality_constraints(parse('$a == 1 or $b == 2')) == []
        assert equality_constraints(parse('not ($a == 1)')) == []
        ast = parse('$a == 1 and ($b == 2 or $c == 3)')
        assert equality_constraints(ast) == [("a", 1)]

    def test_ignores_inequalities(self):
        assert equality_constraints(parse('$a != 1 and $b < 2')) == []


attr_st = st.sampled_from(["host_arch", "host_load", "host_up", "cpus"])
value_st = st.one_of(
    st.sampled_from(["sparc", "mips", "x86", "vax"]),
    st.integers(min_value=0, max_value=5),
    st.booleans())


class TestPropertyEquivalence:
    @given(st.lists(st.tuples(attr_st, value_st), min_size=1, max_size=3),
           st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_conjunctive_queries_agree_with_scan(self, constraints,
                                                 add_range):
        plain = Collection(LOID(("d", "svc", "p")), require_auth=False)
        indexed = IndexedCollection(LOID(("d", "svc", "i")),
                                    require_auth=False)
        fill(plain, n=30)
        fill(indexed, n=30)
        terms = []
        for attr, value in constraints:
            if isinstance(value, str):
                terms.append(f'${attr} == "{value}"')
            elif isinstance(value, bool):
                terms.append(f'${attr} == {"true" if value else "false"}')
            else:
                terms.append(f'${attr} == {value}')
        if add_range:
            terms.append('$host_load < 4')
        query = " and ".join(terms)
        assert ([r.member for r in plain.query(query)]
                == [r.member for r in indexed.query(query)])
