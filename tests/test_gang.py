"""Tests for gang creation (multi-object StartObject) and the
GangScheduler."""

import pytest

from repro import (
    Implementation,
    MachineSpec,
    Metasystem,
    ObjectClassRequest,
    Placement,
    ScheduleMapping,
)
from repro.errors import SchedulingError
from repro.hosts import ONE_SHOT_TIME, REUSABLE_TIME
from repro.workload import wait_for_completion


@pytest.fixture
def smp():
    """Two 4-way SMPs and two uniprocessors."""
    meta = Metasystem(seed=61)
    meta.add_domain("d")
    for i, cpus in enumerate((4, 4, 1, 1)):
        meta.add_unix_host(f"h{i}", "d",
                           MachineSpec(arch="sparc", os_name="SunOS",
                                       cpus=cpus),
                           slots=cpus * 2)
    meta.add_vault("d")
    app = meta.create_class("A", [Implementation("sparc", "SunOS")],
                            work_units=100.0)
    return meta, app


class TestGangCreation:
    def test_create_instances_batch(self, smp):
        meta, app = smp
        host, vault = meta.hosts[0], meta.vaults[0]
        tok = host.make_reservation(vault.loid, app.loid,
                                    rtype=REUSABLE_TIME)
        result = app.create_instances(
            Placement(host.loid, vault.loid, reservation_token=tok), 4)
        assert result.ok
        assert len(result.loids) == 4
        assert len(host.placed) == 4
        # all four run concurrently on the 4-way SMP: done at t=100
        n, t = wait_for_completion(meta, app, result.loids)
        assert n == 4
        assert t == pytest.approx(100.0, rel=0.01)

    def test_one_shot_token_rejected_for_gang(self, smp):
        meta, app = smp
        host, vault = meta.hosts[0], meta.vaults[0]
        tok = host.make_reservation(vault.loid, app.loid,
                                    rtype=ONE_SHOT_TIME)
        result = app.create_instances(
            Placement(host.loid, vault.loid, reservation_token=tok), 3)
        assert not result.ok
        assert "one-shot" in result.reason
        assert len(app.instances) == 0

    def test_count_one_delegates_to_single(self, smp):
        meta, app = smp
        host, vault = meta.hosts[0], meta.vaults[0]
        result = app.create_instances(Placement(host.loid, vault.loid), 1)
        assert result.ok and len(result.loids) == 1

    def test_count_validation(self, smp):
        meta, app = smp
        with pytest.raises(ValueError):
            app.create_instances(
                Placement(meta.hosts[0].loid, meta.vaults[0].loid), 0)
        with pytest.raises(ValueError):
            ScheduleMapping(app.loid, meta.hosts[0].loid,
                            meta.vaults[0].loid, gang=0)


class TestGangScheduler:
    def test_packs_smps_first(self, smp):
        meta, app = smp
        sched = meta.make_scheduler("gang")
        rl = sched.compute_schedule([ObjectClassRequest(app, 8)])
        entries = rl.masters[0].entries
        gangs = {meta.resolve(e.host_loid).machine.name: e.gang
                 for e in entries}
        assert gangs.get("h0") == 4
        assert gangs.get("h1") == 4

    def test_fewer_entries_than_instances(self, smp):
        meta, app = smp
        sched = meta.make_scheduler("gang")
        rl = sched.compute_schedule([ObjectClassRequest(app, 10)])
        total = sum(e.gang for e in rl.masters[0].entries)
        assert total == 10
        assert len(rl.masters[0].entries) <= 4

    def test_end_to_end(self, smp):
        meta, app = smp
        sched = meta.make_scheduler("gang")
        outcome = sched.run([ObjectClassRequest(app, 8)])
        assert outcome.ok
        assert len(outcome.created) == 8
        n, _ = wait_for_completion(meta, app, outcome.created)
        assert n == 8

    def test_message_efficiency_vs_singles(self, smp):
        meta, app = smp
        gang = meta.make_scheduler("gang")
        m0 = meta.transport.messages_sent
        outcome = gang.run([ObjectClassRequest(app, 8)])
        gang_msgs = meta.transport.messages_sent - m0
        assert outcome.ok

        # fresh world for the single-instance comparison
        meta2 = Metasystem(seed=61)
        meta2.add_domain("d")
        for i, cpus in enumerate((4, 4, 1, 1)):
            meta2.add_unix_host(f"h{i}", "d",
                                MachineSpec(arch="sparc",
                                            os_name="SunOS", cpus=cpus),
                                slots=cpus * 2)
        meta2.add_vault("d")
        app2 = meta2.create_class("A", [Implementation("sparc", "SunOS")],
                                  work_units=100.0)
        single = meta2.make_scheduler("random")
        m0 = meta2.transport.messages_sent
        outcome2 = single.run([ObjectClassRequest(app2, 8)])
        single_msgs = meta2.transport.messages_sent - m0
        assert outcome2.ok
        assert gang_msgs < single_msgs

    def test_capacity_exhaustion_raises(self, smp):
        meta, app = smp
        sched = meta.make_scheduler("gang")
        with pytest.raises(SchedulingError):
            sched.compute_schedule([ObjectClassRequest(app, 100)])

    def test_uniform_cap(self, smp):
        meta, app = smp
        sched = meta.make_scheduler("gang", gang_size=2)
        rl = sched.compute_schedule([ObjectClassRequest(app, 6)])
        assert all(e.gang <= 2 for e in rl.masters[0].entries)
