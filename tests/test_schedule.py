"""Tests for the Fig. 5 Schedule data structure and its bitmap invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MalformedScheduleError
from repro.naming import LOID
from repro.schedule import (
    MasterSchedule,
    ScheduleMapping,
    ScheduleRequestList,
    VariantSchedule,
)


def mapping(host="h0", vault="v0", cls="C"):
    return ScheduleMapping(LOID(("d", "class", cls)),
                           LOID(("d", "host", host)),
                           LOID(("d", "vault", vault)))


class TestMapping:
    def test_same_target(self):
        a = mapping("h1", "v1")
        b = mapping("h1", "v1", cls="Other")
        c = mapping("h2", "v1")
        assert a.same_target(b)
        assert not a.same_target(c)

    def test_str(self):
        assert "->" in str(mapping())


class TestVariant:
    def test_requires_replacements(self):
        with pytest.raises(MalformedScheduleError):
            VariantSchedule({})

    def test_negative_index_rejected(self):
        with pytest.raises(MalformedScheduleError):
            VariantSchedule({-1: mapping()})

    def test_bitmap_bits(self):
        v = VariantSchedule({0: mapping(), 3: mapping("h3")})
        assert v.bitmap == 0b1001

    def test_covers(self):
        v = VariantSchedule({0: mapping(), 2: mapping("h2")})
        assert v.covers([0])
        assert v.covers([0, 2])
        assert v.covers([])
        assert not v.covers([1])
        assert not v.covers([0, 1])

    def test_len(self):
        assert len(VariantSchedule({0: mapping(), 1: mapping()})) == 2


class TestMaster:
    def make_master(self, n=3):
        return MasterSchedule([mapping(f"h{i}") for i in range(n)])

    def test_requires_entries(self):
        with pytest.raises(MalformedScheduleError):
            MasterSchedule([])

    def test_variant_index_bounds_checked(self):
        master = self.make_master(2)
        with pytest.raises(MalformedScheduleError):
            master.add_variant(VariantSchedule({5: mapping()}))
        with pytest.raises(MalformedScheduleError):
            MasterSchedule([mapping()],
                           variants=[VariantSchedule({3: mapping()})])

    def test_resolve_master_is_copy(self):
        master = self.make_master()
        entries = master.resolve()
        entries[0] = mapping("zzz")
        assert master.entries[0].host_loid == LOID(("d", "host", "h0"))

    def test_resolve_with_variant(self):
        master = self.make_master(3)
        v = VariantSchedule({1: mapping("alt")})
        master.add_variant(v)
        resolved = master.resolve(v)
        assert resolved[0] == master.entries[0]
        assert resolved[1].host_loid == LOID(("d", "host", "alt"))
        assert resolved[2] == master.entries[2]

    def test_select_variant_prefers_minimal(self):
        master = self.make_master(3)
        big = VariantSchedule({0: mapping("a"), 1: mapping("b"),
                               2: mapping("c")}, label="big")
        small = VariantSchedule({1: mapping("d")}, label="small")
        master.add_variant(big)
        master.add_variant(small)
        chosen = master.select_variant([1])
        assert chosen is small

    def test_select_variant_must_cover_all_failures(self):
        master = self.make_master(3)
        v01 = VariantSchedule({0: mapping("a"), 1: mapping("b")})
        master.add_variant(v01)
        assert master.select_variant([0, 1]) is v01
        assert master.select_variant([0, 2]) is None

    def test_select_variant_respects_exclusions(self):
        master = self.make_master(2)
        v1 = VariantSchedule({0: mapping("a")})
        v2 = VariantSchedule({0: mapping("b")})
        master.add_variant(v1)
        master.add_variant(v2)
        first = master.select_variant([0])
        second = master.select_variant([0], exclude=[first])
        assert {first, second} == {v1, v2}
        assert master.select_variant([0], exclude=[v1, v2]) is None

    def test_required_k_validation(self):
        with pytest.raises(MalformedScheduleError):
            MasterSchedule([mapping()], required_k=2)
        with pytest.raises(MalformedScheduleError):
            MasterSchedule([mapping()], required_k=0)
        master = MasterSchedule([mapping(), mapping("h1")], required_k=1)
        assert master.required_k == 1


class TestRequestList:
    def test_requires_masters(self):
        with pytest.raises(MalformedScheduleError):
            ScheduleRequestList([])

    def test_iteration_and_counts(self):
        m1 = MasterSchedule([mapping()])
        m2 = MasterSchedule([mapping(), mapping("h1")])
        rl = ScheduleRequestList([m1, m2])
        assert len(rl) == 2
        assert list(rl) == [m1, m2]
        assert rl.total_mappings() == 3


class TestBitmapProperties:
    @given(st.sets(st.integers(min_value=0, max_value=15), min_size=1))
    @settings(max_examples=100, deadline=None)
    def test_bitmap_popcount_matches_replacements(self, indices):
        v = VariantSchedule({i: mapping(f"h{i}") for i in indices})
        assert bin(v.bitmap).count("1") == len(indices)
        for i in indices:
            assert v.bitmap & (1 << i)

    @given(st.sets(st.integers(min_value=0, max_value=15), min_size=1),
           st.sets(st.integers(min_value=0, max_value=15)))
    @settings(max_examples=100, deadline=None)
    def test_covers_iff_subset(self, replaced, failed):
        v = VariantSchedule({i: mapping(f"h{i}") for i in replaced})
        assert v.covers(sorted(failed)) == failed.issubset(replaced)

    @given(st.integers(min_value=1, max_value=12),
           st.sets(st.integers(min_value=0, max_value=11), min_size=1))
    @settings(max_examples=100, deadline=None)
    def test_resolve_changes_exactly_replaced_entries(self, n, indices):
        indices = {i for i in indices if i < n}
        if not indices:
            return
        master = MasterSchedule([mapping(f"m{i}") for i in range(n)])
        v = VariantSchedule({i: mapping(f"x{i}") for i in indices})
        master.add_variant(v)
        resolved = master.resolve(v)
        for i in range(n):
            if i in indices:
                assert resolved[i].host_loid.fields[-1] == f"x{i}"
            else:
                assert resolved[i] == master.entries[i]
