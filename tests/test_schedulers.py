"""Tests for the Scheduler framework and all placement policies."""

import pytest

from repro import Implementation, ObjectClassRequest
from repro.errors import SchedulingError
from repro.naming import LOID
from repro.scheduler import (
    IRSScheduler,
    KofNScheduler,
    LoadAwareScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    StencilScheduler,
    implementation_query,
    snake_order,
)
from repro.scheduler.stencil import grid_comm_cost


class TestFramework:
    def test_implementation_query_builds_clauses(self):
        q = implementation_query([Implementation("sparc", "SunOS"),
                                  Implementation("x86", "Linux")])
        assert '$host_arch == "sparc"' in q
        assert '$host_os_name == "Linux"' in q
        assert "or" in q
        assert "$host_up == true" in q

    def test_implementation_query_dedupes(self):
        q = implementation_query([Implementation("sparc", "SunOS"),
                                  Implementation("sparc", "SunOS",
                                                 memory_mb=64)])
        assert q.count("sparc") == 1

    def test_implementation_query_requires_impls(self):
        with pytest.raises(SchedulingError):
            implementation_query([])

    def test_viable_hosts_filters_platform(self, meta, app_class):
        sched = meta.make_scheduler("random")
        records = sched.viable_hosts(app_class)
        assert len(records) == 4  # all fixture hosts are sparc/SunOS
        other = meta.create_class("Alien",
                                  [Implementation("vax", "VMS")])
        assert sched.viable_hosts(other) == []

    def test_compatible_vaults_parsed_from_record(self, meta, app_class):
        sched = meta.make_scheduler("random")
        record = sched.viable_hosts(app_class)[0]
        vaults = sched.compatible_vaults_of(record)
        assert vaults == [meta.vaults[0].loid]

    def test_run_wrapper_counts(self, meta, app_class):
        sched = meta.make_scheduler("random")
        outcome = sched.run([ObjectClassRequest(app_class, count=2)])
        assert outcome.ok
        assert outcome.schedule_tries == 1
        assert outcome.enact_tries == 1
        assert outcome.collection_queries >= 1
        assert outcome.elapsed >= 0.0

    def test_run_reports_failure_when_no_hosts(self, meta):
        alien = meta.create_class("Alien", [Implementation("vax", "VMS")])
        sched = meta.make_scheduler("random")
        outcome = sched.run([ObjectClassRequest(alien)])
        assert not outcome.ok
        assert "no viable hosts" in outcome.detail

    def test_request_count_validation(self, app_class):
        with pytest.raises(ValueError):
            ObjectClassRequest(app_class, count=0)


class TestRandom:
    def test_single_master_no_variants(self, meta, app_class):
        sched = meta.make_scheduler("random")
        rl = sched.compute_schedule([ObjectClassRequest(app_class, 5)])
        assert len(rl) == 1
        assert len(rl.masters[0]) == 5
        assert rl.masters[0].variants == []

    def test_mappings_are_viable(self, meta, app_class):
        sched = meta.make_scheduler("random")
        rl = sched.compute_schedule([ObjectClassRequest(app_class, 10)])
        host_loids = {h.loid for h in meta.hosts}
        for m in rl.masters[0].entries:
            assert m.host_loid in host_loids
            assert m.vault_loid == meta.vaults[0].loid
            assert m.class_loid == app_class.loid

    def test_spread_is_random(self, meta, app_class):
        sched = meta.make_scheduler("random")
        rl = sched.compute_schedule([ObjectClassRequest(app_class, 30)])
        used = {m.host_loid for m in rl.masters[0].entries}
        assert len(used) > 1  # 30 draws over 4 hosts: all-same is ~0

    def test_deterministic_under_seed(self, app_class, meta):
        s1 = meta.make_scheduler("random",
                                 rng=__import__("numpy").random.default_rng(5))
        s2 = meta.make_scheduler("random",
                                 rng=__import__("numpy").random.default_rng(5))
        r1 = s1.compute_schedule([ObjectClassRequest(app_class, 6)])
        r2 = s2.compute_schedule([ObjectClassRequest(app_class, 6)])
        assert ([m.host_loid for m in r1.masters[0].entries]
                == [m.host_loid for m in r2.masters[0].entries])

    def test_end_to_end(self, meta, app_class):
        sched = meta.make_scheduler("random")
        outcome = sched.run([ObjectClassRequest(app_class, 3)])
        assert outcome.ok and len(outcome.created) == 3


class TestIRS:
    def test_master_plus_variants(self, meta, app_class):
        sched = meta.make_scheduler("irs", n_schedules=4)
        rl = sched.compute_schedule([ObjectClassRequest(app_class, 5)])
        master = rl.masters[0]
        assert len(master) == 5
        assert 1 <= len(master.variants) <= 3

    def test_variant_entries_differ_from_master(self, meta, app_class):
        sched = meta.make_scheduler("irs", n_schedules=5)
        rl = sched.compute_schedule([ObjectClassRequest(app_class, 4)])
        master = rl.masters[0]
        for variant in master.variants:
            for idx, repl in variant.replacements.items():
                assert not repl.same_target(master.entries[idx])

    def test_single_collection_lookup_per_class(self, meta, app_class):
        sched = meta.make_scheduler("irs", n_schedules=6)
        before = sched.collection_queries
        sched.compute_schedule([ObjectClassRequest(app_class, 8)])
        assert sched.collection_queries - before == 1

    def test_fewer_lookups_than_repeated_random(self, meta, app_class):
        # IRS with n candidate schedules does 1 lookup; calling the random
        # generator n times would do n.  The random side pins the paper's
        # uncached lookup economy, so the viable-hosts cache is off for it.
        irs = meta.make_scheduler("irs", n_schedules=4)
        rand = meta.make_scheduler("random", viable_cache=False)
        irs.compute_schedule([ObjectClassRequest(app_class, 4)])
        for _ in range(4):
            rand.compute_schedule([ObjectClassRequest(app_class, 4)])
        assert irs.collection_queries == 1
        assert rand.collection_queries == 4

    def test_wrapper_limits_configurable(self, meta, app_class):
        sched = IRSScheduler(meta.collection, meta.enactor, meta.transport,
                             n_schedules=2, sched_try_limit=5,
                             enact_try_limit=3)
        assert sched.sched_try_limit == 5
        assert sched.enact_try_limit == 3

    def test_n_schedules_validation(self, meta):
        with pytest.raises(ValueError):
            IRSScheduler(meta.collection, meta.enactor, meta.transport,
                         n_schedules=0)

    def test_end_to_end_under_contention(self, meta, app_class):
        # shrink capacity: fill most hosts so variants are exercised
        vault = meta.vaults[0]
        for host in meta.hosts[:2]:
            for _ in range(host.slots):
                host.make_reservation(vault.loid, app_class.loid)
        sched = meta.make_scheduler("irs", n_schedules=6)
        outcome = sched.run([ObjectClassRequest(app_class, 2)])
        assert outcome.ok


class TestLoadAware:
    def test_prefers_least_loaded(self, meta, app_class):
        for i, host in enumerate(meta.hosts):
            host.machine.set_background_load(float(3 - i))
            host.reassess()
        sched = meta.make_scheduler("load")
        rl = sched.compute_schedule([ObjectClassRequest(app_class, 1)])
        chosen = rl.masters[0].entries[0].host_loid
        # hosts[3] has load 0: the fastest expected rate
        assert chosen == meta.hosts[3].loid

    def test_spreads_before_doubling(self, meta, app_class):
        sched = meta.make_scheduler("load")
        rl = sched.compute_schedule([ObjectClassRequest(app_class, 4)])
        used = [m.host_loid for m in rl.masters[0].entries]
        assert len(set(used)) == 4

    def test_produces_variants(self, meta, app_class):
        sched = meta.make_scheduler("load")
        rl = sched.compute_schedule([ObjectClassRequest(app_class, 2)])
        assert len(rl.masters[0].variants) >= 1

    def test_predicted_load_attr(self, meta, app_class):
        # inject a prediction that inverts the ranking
        meta.collection.inject_attribute(
            "predicted_load",
            lambda rec: 10.0 - float(rec.get("host_load", 0.0)))
        for i, host in enumerate(meta.hosts):
            host.machine.set_background_load(float(i))
            host.reassess()
        plain = meta.make_scheduler("load")
        seer = LoadAwareScheduler(meta.collection, meta.enactor,
                                  meta.transport,
                                  predicted_load_attr="predicted_load")
        plain_pick = plain.compute_schedule(
            [ObjectClassRequest(app_class, 1)]).masters[0].entries[0]
        seer_pick = seer.compute_schedule(
            [ObjectClassRequest(app_class, 1)]).masters[0].entries[0]
        assert plain_pick.host_loid != seer_pick.host_loid


class TestRoundRobin:
    def test_cycles_hosts_in_order(self, meta, app_class):
        sched = meta.make_scheduler("round-robin")
        rl = sched.compute_schedule([ObjectClassRequest(app_class, 8)])
        hosts = [m.host_loid for m in rl.masters[0].entries]
        assert hosts[:4] == sorted(set(hosts))
        assert hosts[:4] == hosts[4:]

    def test_rotation_persists_across_calls(self, meta, app_class):
        sched = meta.make_scheduler("round-robin")
        first = sched.compute_schedule([ObjectClassRequest(app_class, 2)])
        second = sched.compute_schedule([ObjectClassRequest(app_class, 2)])
        a = [m.host_loid for m in first.masters[0].entries]
        b = [m.host_loid for m in second.masters[0].entries]
        assert set(a).isdisjoint(set(b))  # 4 hosts, 2+2 split


class TestStencil:
    def test_snake_order(self):
        assert snake_order(2, 3) == [(0, 0), (0, 1), (0, 2),
                                     (1, 2), (1, 1), (1, 0)]

    def test_grid_comm_cost(self):
        h1, h2 = LOID(("d", "host", "a")), LOID(("d", "host", "b"))
        domains = {h1: "x", h2: "y"}
        same = {c: h1 for c in [(0, 0), (0, 1), (1, 0), (1, 1)]}
        assert grid_comm_cost(2, 2, same, domains) == 0.0
        split = {(0, 0): h1, (0, 1): h1, (1, 0): h2, (1, 1): h2}
        # 2 vertical edges cross hosts in different domains
        assert grid_comm_cost(2, 2, split, domains) == pytest.approx(40.0)

    def test_placement_clusters_by_domain(self, multi):
        app = multi.create_class(
            "Ocean", [Implementation(a, o) for a, o, *_ in
                      __import__("repro.workload.testbed",
                                 fromlist=["PLATFORMS"]).PLATFORMS],
            work_units=10.0)
        sched = StencilScheduler(multi.collection, multi.enactor,
                                 multi.transport, rows=3, cols=4,
                                 instances_per_host=1)
        rl = sched.compute_schedule([ObjectClassRequest(app, 12)])
        entries = rl.masters[0].entries
        host_domain = {h.loid: h.domain for h in multi.hosts}
        cost = sched.placement_cost(entries, host_domain, 3, 4)
        # compare against random placement cost
        rand = multi.make_scheduler("random")
        rand_rl = rand.compute_schedule([ObjectClassRequest(app, 12)])
        from repro.scheduler.stencil import snake_order as so
        cells = so(3, 4)
        rand_map = {c: rand_rl.masters[0].entries[i].host_loid
                    for i, c in enumerate(cells)}
        rand_cost = grid_comm_cost(3, 4, rand_map, host_domain)
        assert cost < rand_cost

    def test_grid_mismatch_rejected(self, meta, app_class):
        sched = StencilScheduler(meta.collection, meta.enactor,
                                 meta.transport, rows=2, cols=3)
        with pytest.raises(SchedulingError):
            sched.compute_schedule([ObjectClassRequest(app_class, 5)])

    def test_one_class_only(self, meta, app_class):
        sched = StencilScheduler(meta.collection, meta.enactor,
                                 meta.transport, rows=1, cols=1)
        with pytest.raises(SchedulingError):
            sched.compute_schedule([ObjectClassRequest(app_class, 1),
                                    ObjectClassRequest(app_class, 1)])

    def test_capacity_check(self, meta, app_class):
        sched = StencilScheduler(meta.collection, meta.enactor,
                                 meta.transport, rows=10, cols=10,
                                 instances_per_host=1)
        with pytest.raises(SchedulingError):
            sched.compute_schedule([ObjectClassRequest(app_class, 100)])

    def test_default_decomposition(self, meta, app_class):
        sched = StencilScheduler(meta.collection, meta.enactor,
                                 meta.transport, instances_per_host=4)
        rl = sched.compute_schedule([ObjectClassRequest(app_class, 6)])
        assert len(rl.masters[0]) == 6


class TestKofNScheduler:
    def test_master_marks_required_k(self, meta, app_class):
        sched = meta.make_scheduler("kofn", overprovision=2.0)
        rl = sched.compute_schedule([ObjectClassRequest(app_class, 2)])
        master = rl.masters[0]
        assert master.required_k == 2
        assert len(master) >= 2

    def test_end_to_end_starts_exactly_k(self, meta, app_class):
        sched = meta.make_scheduler("kofn")
        outcome = sched.run([ObjectClassRequest(app_class, 2)])
        assert outcome.ok
        assert len(outcome.created) == 2

    def test_insufficient_hosts(self, meta, app_class):
        sched = meta.make_scheduler("kofn")
        with pytest.raises(SchedulingError):
            sched.compute_schedule([ObjectClassRequest(app_class, 99)])

    def test_overprovision_validation(self, meta):
        with pytest.raises(ValueError):
            KofNScheduler(meta.collection, meta.enactor, meta.transport,
                          overprovision=0.5)
