"""Soak test: a long mixed-workload day in the metasystem.

Exercises everything at once over a long stretch of virtual time: load
dynamics, a request stream from several schedulers, batch clusters, the
Data Collection Daemon, the Monitor with migrations, a host crash and
recovery, and a transient partition — asserting global invariants at the
end (no oversubscription, no stuck objects, conserved counts).
"""

import pytest

from repro import MachineSpec, Metasystem, ObjectClassRequest
from repro.hosts import BatchQueueHost
from repro.sim.tracing import Tracer
from repro.workload import (
    TestbedSpec,
    build_testbed,
    implementations_for_all_platforms,
)


class TestTracerRingBuffer:
    """Long runs must not accumulate unbounded trace memory."""

    def test_ring_buffer_bounds_retention_counts_stay_exact(self):
        tr = Tracer(max_records=16)
        for i in range(100):
            tr.emit("cat", "ev", i=i)
        assert len(tr) == 16
        assert tr.total_records == 100
        assert tr.count("cat", "ev") == 100  # exact despite eviction
        # the buffer holds the most recent entries
        assert [r.details["i"] for r in tr.records] == list(range(84, 100))

    def test_unbounded_default_unchanged(self):
        tr = Tracer()
        for _ in range(100):
            tr.emit("cat", "ev")
        assert len(tr) == 100 == tr.total_records

    def test_clear_resets_totals(self):
        tr = Tracer(max_records=4)
        for _ in range(10):
            tr.emit("cat", "ev")
        tr.clear()
        assert len(tr) == 0
        assert tr.total_records == 0
        assert tr.count("cat", "ev") == 0

    def test_max_records_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(max_records=0)

    def test_metasystem_passes_through(self):
        meta = Metasystem(seed=3, trace_max_records=8)
        meta.add_domain("d")
        for i in range(4):
            meta.add_unix_host(f"h{i}", "d",
                               MachineSpec(arch="sparc", os_name="SunOS"))
        meta.add_vault("d", name="v")
        app = meta.create_class("app",
                                implementations_for_all_platforms(),
                                work_units=50.0)
        outcome = meta.make_scheduler("random").run(
            [ObjectClassRequest(app, count=3)])
        assert outcome.ok
        meta.advance(600.0)
        assert len(meta.tracer) <= 8
        assert meta.tracer.total_records >= len(meta.tracer)
        # exact counts survive eviction: protocol invokes kept counting
        assert meta.tracer.count("net") >= 3


@pytest.mark.slow
class TestSoak:
    def test_mixed_day(self):
        meta = build_testbed(TestbedSpec(
            n_domains=3, hosts_per_domain=6, platform_mix=3,
            background_load_mean=0.5, load_spike_prob=0.02,
            batch_clusters={1: "backfill"}, batch_nodes=8,
            seed=777, host_slots=3))
        daemon = meta.make_daemon(interval=45.0)
        daemon.start()
        monitor = meta.make_monitor(min_load_advantage=2.0,
                                    max_migrations_per_event=1)
        monitor.watch_all(meta.hosts)

        apps = [
            meta.create_class(f"app{i}",
                              implementations_for_all_platforms(),
                              work_units=150.0 * (i + 1))
            for i in range(3)
        ]
        schedulers = [meta.make_scheduler("random"),
                      meta.make_scheduler("irs", n_schedules=4),
                      meta.make_scheduler("load")]

        created = []
        submitted = 0
        # six hours of virtual time, a request every ~10 minutes
        for round_no in range(36):
            app = apps[round_no % len(apps)]
            sched = schedulers[round_no % len(schedulers)]
            outcome = sched.run([ObjectClassRequest(app, 2)],
                                reservation_duration=600.0)
            submitted += 2
            if outcome.ok:
                created.extend((app, loid) for loid in outcome.created)
            # mid-run chaos
            if round_no == 10:
                victim = meta.hosts[2]
                victim.machine.fail()
                meta.topology.set_node_down(victim.location)
            if round_no == 14:
                meta.hosts[2].machine.recover()
                meta.topology.set_node_down(meta.hosts[2].location,
                                            down=False)
            if round_no == 20:
                meta.topology.partition("dom0", "dom2")
            if round_no == 24:
                meta.topology.heal("dom0", "dom2")
            meta.advance(600.0)

        # drain
        meta.advance(6 * 3600.0)

        # -- invariants -----------------------------------------------------
        for host in meta.hosts:
            assert len(host.placed) <= host.slots
            if isinstance(host, BatchQueueHost):
                assert host.queue._busy_nodes <= host.queue.total_nodes
        # all placed objects either completed, died with the crashed host,
        # or are still active (placed somewhere real) — never limbo
        limbo = 0
        for app, loid in created:
            try:
                instance = app.get_instance(loid)
            except Exception:
                continue
            done = instance.attributes.get("completed_at") is not None
            if done:
                continue
            if instance.is_active:
                host = meta.resolve(instance.host_loid)
                if host is None or loid not in host.placed:
                    # lost to the injected host crash — acceptable
                    limbo += 0 if host is None else 1
            # inert objects must have been deactivated by the crash path
        assert limbo == 0
        # a healthy majority of placements completed despite the chaos
        completed = sum(
            1 for app, loid in created
            if app.get_instance(loid).attributes.get("completed_at")
            is not None)
        assert completed >= 0.6 * len(created)
        # subsystems actually exercised
        assert daemon.sweeps > 100
        assert meta.enactor.stats.reservations_granted >= len(created)
        # reservation ledgers stay bounded: every 600 s grant has long
        # expired by the end of the drain, and periodic reassessment
        # sweeps dead entries instead of accumulating them forever
        for host in meta.hosts:
            assert len(host.reservations) <= host.slots, host.machine.name
        purged = meta.metrics.get("host_reservations_purged_total")
        assert purged is not None and purged.value > 0
