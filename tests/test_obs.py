"""Unit tests for the observability layer (src/repro/obs).

Covers instrument semantics (counters, gauges, histograms, timers,
labeled children, merge, reset), registry factories, the null registry,
and the exporter round-trip (snapshot -> JSON -> parse -> equal).
"""

import json
import math

import pytest

from repro.obs import (
    DEFAULT_SIZE_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    Timer,
    build_snapshot,
    json_to_snapshot,
    render_report,
    snapshot_to_json,
    snapshot_to_prometheus,
)


class TestCounter:
    def test_inc(self):
        c = Counter("c")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_rejects_negative(self):
        c = Counter("c")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_labeled_children_are_distinct(self):
        c = Counter("c", labelnames=("path",))
        c.labels(path="scan").inc(2)
        c.labels(path="index").inc(5)
        assert c.labels(path="scan").value == 2
        assert c.labels(path="index").value == 5

    def test_wrong_labels_raise(self):
        c = Counter("c", labelnames=("path",))
        with pytest.raises(ValueError):
            c.labels(kind="x")
        with pytest.raises(ValueError):
            c.labels()

    def test_merge_sums_values_and_children(self):
        a = Counter("c", labelnames=("k",))
        b = Counter("c", labelnames=("k",))
        a.labels(k="x").inc(1)
        b.labels(k="x").inc(2)
        b.labels(k="y").inc(4)
        a.merge(b)
        assert a.labels(k="x").value == 3
        assert a.labels(k="y").value == 4

    def test_merge_kind_mismatch_raises(self):
        with pytest.raises(TypeError):
            Counter("c").merge(Gauge("c"))

    def test_merge_label_mismatch_raises(self):
        with pytest.raises(ValueError):
            Counter("c", labelnames=("a",)).merge(
                Counter("c", labelnames=("b",)))

    def test_reset(self):
        c = Counter("c", labelnames=("k",))
        c.labels(k="x").inc(7)
        c.reset()
        assert c.labels(k="x").value == 0


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("g")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == pytest.approx(7.0)

    def test_set_function_is_lazy(self):
        g = Gauge("g")
        box = {"v": 1.0}
        g.set_function(lambda: box["v"])
        assert g.value == 1.0
        box["v"] = 9.0
        assert g.value == 9.0

    def test_merge_takes_other_reading(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(1)
        b.set(5)
        a.merge(b)
        assert a.value == 5


class TestHistogram:
    def test_bucketing_and_moments(self):
        h = Histogram("h", buckets=(1.0, 2.0, 5.0))
        for x in (0.5, 1.5, 1.5, 3.0, 10.0):
            h.observe(x)
        assert h.count == 5
        assert h.sum == pytest.approx(16.5)
        assert h.stats.minimum == 0.5
        assert h.stats.maximum == 10.0
        assert h.cumulative_counts() == [1, 3, 4, 5]

    def test_boundary_value_lands_in_its_bucket(self):
        # cumulative semantics: le=1.0 includes an observation of exactly 1.0
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(1.0)
        assert h.cumulative_counts() == [1, 1, 1]

    def test_quantiles_interpolated_and_clamped(self):
        h = Histogram("h", buckets=(1.0, 2.0, 5.0))
        for x in (0.5, 1.5, 2.5, 3.5, 4.5):
            h.observe(x)
        assert h.quantile(0.0) == pytest.approx(0.5)
        assert h.quantile(1.0) == pytest.approx(4.5)
        q50 = h.quantile(0.5)
        assert 0.5 <= q50 <= 4.5
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_empty_quantile_is_nan(self):
        assert math.isnan(Histogram("h").quantile(0.5))

    def test_merge_requires_same_bounds(self):
        a = Histogram("h", buckets=(1.0,))
        b = Histogram("h", buckets=(2.0,))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_adds_counts_and_stats(self):
        a = Histogram("h", buckets=(1.0, 2.0))
        b = Histogram("h", buckets=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(3.0)
        a.merge(b)
        assert a.count == 3
        assert a.cumulative_counts() == [1, 2, 3]
        assert a.stats.minimum == 0.5
        assert a.stats.maximum == 3.0

    def test_needs_at_least_one_bound(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestTimer:
    def test_records_clock_span(self):
        clock = {"t": 100.0}
        h = Histogram("h", buckets=(1.0, 10.0))
        with Timer(h, lambda: clock["t"]):
            clock["t"] = 102.5
        assert h.count == 1
        assert h.sum == pytest.approx(2.5)

    def test_registry_time_with_labels(self):
        clock = {"t": 0.0}
        reg = MetricsRegistry(clock=lambda: clock["t"])
        with reg.time("step_seconds", step="reserve"):
            clock["t"] = 0.25
        h = reg.get("step_seconds")
        assert h.labelnames == ("step",)
        assert h.labels(step="reserve").count == 1

    def test_records_even_on_exception(self):
        clock = {"t": 0.0}
        h = Histogram("h", buckets=(1.0,))
        with pytest.raises(RuntimeError):
            with Timer(h, lambda: clock["t"]):
                clock["t"] = 0.5
                raise RuntimeError("boom")
        assert h.count == 1


class TestRegistry:
    def test_factories_are_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValueError):
            reg.gauge("m")

    def test_labelname_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("m", labelnames=("a",))
        with pytest.raises(ValueError):
            reg.counter("m", labelnames=("b",))

    def test_one_liners_infer_labelnames(self):
        reg = MetricsRegistry()
        reg.count("queries_total", path="scan")
        reg.count("queries_total", path="index")
        reg.observe("sizes", 3, buckets=DEFAULT_SIZE_BUCKETS, path="scan")
        reg.set_gauge("members", 8)
        assert reg.get("queries_total").labels(path="scan").value == 1
        assert reg.get("sizes").labels(path="scan").count == 1
        assert reg.get("members").value == 8

    def test_merge_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.count("c", path="x")
        b.count("c", path="x")
        b.count("only_b")
        a.merge(b)
        assert a.get("c").labels(path="x").value == 2
        assert a.get("only_b").value == 1

    def test_reset_keeps_names_zeroes_values(self):
        reg = MetricsRegistry()
        reg.count("c", n=5)
        reg.reset()
        assert "c" in reg
        assert reg.get("c").value == 0

    def test_null_registry_records_nothing(self):
        for reg in (NullMetricsRegistry(), NULL_METRICS):
            reg.count("c", path="x")
            reg.observe("h", 1.0, step="a")
            reg.set_gauge("g", 5.0)
            with reg.time("t"):
                pass
            reg.counter("c2").labels(anything="goes").inc()
            assert build_snapshot(reg) == {"metrics": []}


class TestExportRoundTrip:
    def _populated(self):
        clock = {"t": 0.0}
        reg = MetricsRegistry(clock=lambda: clock["t"])
        reg.count("requests_total", path="scan")
        reg.count("requests_total", n=3, path="index")
        reg.set_gauge("depth", 4)
        for x in (0.002, 0.02, 0.2, 2.0):
            reg.observe("latency_seconds", x, step="reserve")
        return reg

    def test_snapshot_json_round_trip(self):
        snapshot = build_snapshot(self._populated())
        text = snapshot_to_json(snapshot)
        assert json_to_snapshot(text) == snapshot
        # byte-stability: rebuilding from an identical registry matches
        assert snapshot_to_json(build_snapshot(self._populated())) == text

    def test_json_is_strict(self):
        reg = MetricsRegistry()
        reg.histogram("empty")  # min/max are NaN -> must export as null
        text = reg.to_json()
        assert "NaN" not in text and "Infinity" not in text
        series = json.loads(text)["metrics"][0]["series"][0]
        assert series["min"] is None
        assert series["count"] == 0

    def test_prometheus_format(self):
        text = snapshot_to_prometheus(build_snapshot(self._populated()))
        assert '# TYPE requests_total counter' in text
        assert 'requests_total{path="index"} 3.0' in text
        assert '# TYPE latency_seconds histogram' in text
        assert 'latency_seconds_bucket{le="+Inf",step="reserve"} 4' in text
        assert 'latency_seconds_count{step="reserve"} 4' in text

    def test_snapshot_orders_names_and_series(self):
        snapshot = build_snapshot(self._populated())
        names = [m["name"] for m in snapshot["metrics"]]
        assert names == sorted(names)
        requests = next(m for m in snapshot["metrics"]
                        if m["name"] == "requests_total")
        keys = [s["labels"]["path"] for s in requests["series"]]
        assert keys == sorted(keys)

    def test_render_report_mentions_every_series(self):
        report = render_report(build_snapshot(self._populated()))
        assert 'requests_total{path="scan"}' in report
        assert 'latency_seconds{step="reserve"}' in report
        assert "depth" in report
