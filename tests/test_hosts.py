"""Tests for Host Objects: the Table 1 interface, policies, and the
attribute push model."""

import pytest

from repro import (
    Implementation,
    MachineSpec,
    Metasystem,
    ONE_SHOT_TIME,
    REUSABLE_TIME,
)
from repro.errors import (
    InvalidReservationError,
    PlacementPolicyError,
    ReservationDeniedError,
    VaultIncompatibleError,
)
from repro.hosts import UnixHost
from repro.hosts.policy import (
    AcceptAll,
    CompositePolicy,
    DomainBlacklist,
    LoadCeiling,
    PlacementPolicy,
    PriceFloor,
    TimeOfDayWindow,
)
from repro.hosts.policy import PlacementRequest
from repro.objects import LegionObject


@pytest.fixture
def host(meta):
    return meta.hosts[0]


@pytest.fixture
def vault_loid(meta):
    return meta.vaults[0].loid


def make_instance(meta, app_class, work=None):
    loid = meta.minter.mint_instance(app_class.loid)
    obj = LegionObject(loid, app_class.loid)
    if work is not None:
        obj.attributes.set("work_units", work)
    obj.attributes.set("memory_mb", 8.0)
    return obj


class TestReservationInterface:
    def test_make_and_check(self, meta, host, vault_loid, app_class):
        tok = host.make_reservation(vault_loid, app_class.loid)
        assert host.check_reservation(tok)
        host.cancel_reservation(tok)
        assert not host.check_reservation(tok)

    def test_incompatible_vault_refused(self, meta, host, app_class):
        bogus = meta.minter.mint("vault", "elsewhere")
        with pytest.raises(VaultIncompatibleError):
            host.make_reservation(bogus, app_class.loid)

    def test_down_machine_refuses(self, meta, host, vault_loid, app_class):
        host.machine.fail()
        with pytest.raises(ReservationDeniedError):
            host.make_reservation(vault_loid, app_class.loid)

    def test_policy_refusal(self, meta, vault_loid, app_class):
        host = meta.hosts[1]
        host.policy = DomainBlacklist(["evil"])
        with pytest.raises(PlacementPolicyError):
            host.make_reservation(vault_loid, app_class.loid,
                                  requester_domain="evil")
        tok = host.make_reservation(vault_loid, app_class.loid,
                                    requester_domain="good")
        assert tok is not None

    def test_full_slots_refuse_reservations(self, meta, host, vault_loid,
                                            app_class):
        for _ in range(host.slots):
            inst = make_instance(meta, app_class)
            assert host.start_object(inst, vault_loid).ok
        with pytest.raises(ReservationDeniedError):
            host.make_reservation(vault_loid, app_class.loid)


class TestStartObject:
    def test_start_with_token(self, meta, host, vault_loid, app_class):
        tok = host.make_reservation(vault_loid, app_class.loid)
        inst = make_instance(meta, app_class, work=50.0)
        result = host.start_object(inst, vault_loid, tok)
        assert result.ok
        assert inst.loid in host.placed
        assert inst.host_loid == host.loid

    def test_start_without_token_checks_policy(self, meta, vault_loid,
                                               app_class):
        host = meta.hosts[1]
        host.policy = LoadCeiling(max_load=-1.0)  # always refuses
        inst = make_instance(meta, app_class)
        result = host.start_object(inst, vault_loid)
        assert not result.ok
        assert "policy" in result.reason.lower() or "Load" in result.reason

    def test_wrong_host_token_rejected(self, meta, vault_loid, app_class):
        h0, h1 = meta.hosts[0], meta.hosts[1]
        tok = h0.make_reservation(vault_loid, app_class.loid)
        inst = make_instance(meta, app_class)
        result = h1.start_object(inst, vault_loid, tok)
        assert not result.ok and "issued by" in result.reason

    def test_wrong_vault_token_rejected(self, meta, host, app_class):
        v1 = meta.add_vault("uva", name="uva-vault2")
        tok = host.make_reservation(meta.vaults[0].loid, app_class.loid)
        inst = make_instance(meta, app_class)
        result = host.start_object(inst, v1.loid, tok)
        assert not result.ok and "reserves vault" in result.reason

    def test_job_completes_and_reports(self, meta, host, vault_loid,
                                       app_class):
        done = []
        host.on_object_complete = lambda obj, t: done.append((obj.loid, t))
        inst = make_instance(meta, app_class, work=100.0)
        host.start_object(inst, vault_loid)
        meta.sim.run_until(1000.0)
        assert len(done) == 1
        assert inst.attributes.get("completed_at") is not None
        assert inst.loid not in host.placed

    def test_serverlike_object_occupies_slot_until_killed(
            self, meta, host, vault_loid, app_class):
        inst = make_instance(meta, app_class)  # no work_units: a server
        host.start_object(inst, vault_loid)
        meta.sim.run_until(10000.0)
        assert inst.loid in host.placed  # still running
        host.kill_object(inst.loid)
        assert inst.loid not in host.placed

    def test_batch_start_with_reusable_token(self, meta, host, vault_loid,
                                             app_class):
        tok = host.make_reservation(vault_loid, app_class.loid,
                                    rtype=REUSABLE_TIME)
        instances = [make_instance(meta, app_class) for _ in range(3)]
        result = host.start_objects(instances, vault_loid, tok)
        assert result.ok and len(result.loids) == 3

    def test_batch_start_one_shot_token_rejected(self, meta, host,
                                                 vault_loid, app_class):
        tok = host.make_reservation(vault_loid, app_class.loid,
                                    rtype=ONE_SHOT_TIME)
        instances = [make_instance(meta, app_class) for _ in range(2)]
        result = host.start_objects(instances, vault_loid, tok)
        assert not result.ok
        assert "one-shot" in result.reason

    def test_batch_rolls_back_on_partial_failure(self, meta, vault_loid,
                                                 app_class):
        host = meta.hosts[2]
        instances = [make_instance(meta, app_class)
                     for _ in range(host.slots + 1)]
        result = host.start_objects(instances, vault_loid)
        assert not result.ok
        assert len(host.placed) == 0  # everything rolled back


class TestDeactivate:
    def test_deactivate_preserves_remaining_work(self, meta, host,
                                                 vault_loid, app_class):
        inst = make_instance(meta, app_class, work=100.0)
        host.start_object(inst, vault_loid)
        meta.sim.run_until(40.0)  # speed 1.0, single job -> 40 done
        opr, remaining = host.deactivate_object(inst.loid)
        assert remaining == pytest.approx(60.0)
        assert inst.attributes.get("work_units") == pytest.approx(60.0)
        assert opr.loid == inst.loid
        assert inst.loid not in host.placed

    def test_deactivate_unknown_raises(self, meta, host, app_class):
        from repro.errors import ObjectStateError
        with pytest.raises(ObjectStateError):
            host.deactivate_object(meta.minter.mint_instance(app_class.loid))


class TestInformationReporting:
    def test_compatible_vaults(self, meta, host, vault_loid):
        assert vault_loid in host.get_compatible_vaults()
        assert host.vault_ok(vault_loid)
        assert not host.vault_ok(meta.minter.mint("vault", "nope"))

    def test_attributes_populated(self, host):
        for attr in ("host_arch", "host_os_name", "host_load", "host_cpus",
                     "host_memory_mb", "host_domain", "host_slots_free",
                     "host_up", "compatible_vaults"):
            assert attr in host.attributes, attr

    def test_reassess_updates_load(self, meta, host, vault_loid, app_class):
        load_before = host.attributes.get("host_load")
        inst = make_instance(meta, app_class, work=1000.0)
        host.start_object(inst, vault_loid)
        host.reassess()
        assert host.attributes.get("host_load") > load_before
        assert host.attributes.get("host_slots_free") == host.slots - 1

    def test_periodic_reassessment_pushes_to_collection(self, meta, host):
        record = meta.collection.record_of(host.loid)
        t0 = record.updated_at
        meta.advance(meta.reassess_interval * 2 + 1)
        assert meta.collection.record_of(host.loid).updated_at > t0

    def test_unix_host_kind(self, host):
        assert host.attributes.get("host_kind") == "unix"


class TestLoadTrigger:
    def test_high_load_fires_event(self, meta):
        host = meta.hosts[0]
        firings = []
        host.rge.register_outcall(UnixHost.LOAD_EVENT,
                                  lambda f: firings.append(f))
        host.machine.set_background_load(10.0)
        host.reassess()
        assert len(firings) == 1
        assert firings[0].event_name == UnixHost.LOAD_EVENT

    def test_recovery_fires_ok_event(self, meta):
        host = meta.hosts[0]
        oks = []
        host.rge.register_outcall(UnixHost.LOAD_OK_EVENT,
                                  lambda f: oks.append(f))
        host.machine.set_background_load(10.0)
        host.reassess()
        host.machine.set_background_load(0.0)
        # advance past the trigger's min_interval rate limit
        meta.advance(120.0)
        host.reassess()
        assert len(oks) >= 1


class TestPolicies:
    def req(self, domain="", price=0.0):
        return PlacementRequest(requester_domain=domain,
                                offered_price=price)

    def test_accept_all(self):
        assert AcceptAll().decide(None, self.req(), 0.0)

    def test_blacklist(self):
        p = DomainBlacklist(["mars", "venus"])
        assert not p.decide(None, self.req("mars"), 0.0)
        assert p.decide(None, self.req("earth"), 0.0)
        assert "mars" in p.describe()

    def test_time_of_day_simple_window(self):
        p = TimeOfDayWindow(9.0, 17.0)
        hour = 3600.0
        assert p.decide(None, self.req(), 10 * hour)
        assert not p.decide(None, self.req(), 20 * hour)

    def test_time_of_day_wrapping_window(self):
        p = TimeOfDayWindow(18.0, 8.0)  # overnight
        hour = 3600.0
        assert p.decide(None, self.req(), 20 * hour)
        assert p.decide(None, self.req(), 3 * hour)
        assert not p.decide(None, self.req(), 12 * hour)

    def test_load_ceiling(self, meta):
        host = meta.hosts[0]
        p = LoadCeiling(2.0)
        host.machine.set_background_load(1.0)
        assert p.decide(host, self.req(), 0.0)
        host.machine.set_background_load(5.0)
        assert not p.decide(host, self.req(), 0.0)

    def test_price_floor(self):
        p = PriceFloor(0.5)
        assert not p.decide(None, self.req(price=0.1), 0.0)
        assert p.decide(None, self.req(price=0.5), 0.0)

    def test_composite_all_must_pass(self):
        p = CompositePolicy([DomainBlacklist(["x"]), PriceFloor(1.0)])
        assert not p.decide(None, self.req("x", 2.0), 0.0)
        assert not p.decide(None, self.req("y", 0.5), 0.0)
        assert p.decide(None, self.req("y", 2.0), 0.0)
        assert "&" in p.describe()
