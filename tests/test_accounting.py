"""Tests for the accounting ledger and the cost-aware Scheduler."""

import pytest

from repro import Implementation, MachineSpec, Metasystem, ObjectClassRequest
from repro.accounting import CostAwareScheduler, Ledger
from repro.objects import Placement
from repro.scheduler import Scheduler
from repro.workload import wait_for_completion


@pytest.fixture
def market():
    """Cheap-slow and expensive-fast hosts, a ledger attached to all."""
    meta = Metasystem(seed=41)
    meta.add_domain("d")
    # (speed, price): cheap slow pair, pricey fast pair
    for i, (speed, price) in enumerate([(1.0, 0.01), (1.0, 0.01),
                                        (4.0, 0.10), (4.0, 0.10)]):
        meta.add_unix_host(f"h{i}", "d",
                           MachineSpec(arch="sparc", os_name="SunOS",
                                       speed=speed),
                           slots=4, price=price)
    meta.add_vault("d")
    app = meta.create_class("A", [Implementation("sparc", "SunOS")],
                            work_units=100.0)
    ledger = Ledger(clock=lambda: meta.now)
    ledger.attach_all(meta.hosts)
    return meta, app, ledger


class TestLedger:
    def test_completion_bills_full_cycles(self, market):
        meta, app, ledger = market
        host, vault = meta.hosts[0], meta.vaults[0]
        result = app.create_instance(Placement(host.loid, vault.loid))
        wait_for_completion(meta, app, [result.loid])
        assert len(ledger) == 1
        record = ledger.records[0]
        assert record.cycles == pytest.approx(100.0)
        assert record.amount == pytest.approx(1.0)  # 100 x 0.01
        assert record.host_loid == host.loid

    def test_kill_bills_partial_cycles(self, market):
        meta, app, ledger = market
        host, vault = meta.hosts[0], meta.vaults[0]
        result = app.create_instance(Placement(host.loid, vault.loid))
        meta.advance(40.0)
        host.kill_object(result.loid)
        assert ledger.records[0].cycles == pytest.approx(40.0)

    def test_deactivate_bills_progress(self, market):
        meta, app, ledger = market
        host, vault = meta.hosts[0], meta.vaults[0]
        result = app.create_instance(Placement(host.loid, vault.loid))
        meta.advance(25.0)
        host.deactivate_object(result.loid)
        assert ledger.records[0].cycles == pytest.approx(25.0)

    def test_migration_bills_each_leg(self, market):
        meta, app, ledger = market
        host, vault = meta.hosts[0], meta.vaults[0]
        result = app.create_instance(Placement(host.loid, vault.loid))
        meta.advance(30.0)
        report = meta.migrator.migrate(result.loid, meta.hosts[1].loid)
        assert report.ok
        wait_for_completion(meta, app, [result.loid])
        total_cycles = sum(r.cycles for r in ledger.records)
        assert total_cycles == pytest.approx(100.0, rel=0.02)
        assert len(ledger.records) == 2  # one charge per leg

    def test_reports(self, market):
        meta, app, ledger = market
        vault = meta.vaults[0]
        for host in meta.hosts[:2]:
            app.create_instance(Placement(host.loid, vault.loid))
        wait_for_completion(meta, app, list(app.instances))
        assert ledger.total == pytest.approx(2.0)
        assert ledger.total_for_class(app.loid) == pytest.approx(2.0)
        revenue = ledger.revenue_by_host()
        assert len(revenue) == 2
        assert ledger.cycles_by_host()[meta.hosts[0].loid] == \
            pytest.approx(100.0)

    def test_zero_cycle_work_not_billed(self, market):
        meta, app, ledger = market
        host, vault = meta.hosts[0], meta.vaults[0]
        result = app.create_instance(Placement(host.loid, vault.loid))
        host.kill_object(result.loid)  # killed immediately: 0 cycles
        assert len(ledger) == 0


class TestCostAwareScheduler:
    def test_loose_deadline_buys_cheap(self, market):
        meta, app, _ledger = market
        sched = CostAwareScheduler(meta.collection, meta.enactor,
                                   meta.transport, deadline=1e9)
        rl = sched.compute_schedule([ObjectClassRequest(app, 2)])
        cheap = {meta.hosts[0].loid, meta.hosts[1].loid}
        for m in rl.masters[0].entries:
            assert m.host_loid in cheap

    def test_tight_deadline_buys_fast(self, market):
        meta, app, _ledger = market
        # 100 units at speed 1 takes 100 s; deadline 50 s forces the
        # 4x hosts (25 s)
        sched = CostAwareScheduler(meta.collection, meta.enactor,
                                   meta.transport, deadline=50.0)
        rl = sched.compute_schedule([ObjectClassRequest(app, 2)])
        fast = {meta.hosts[2].loid, meta.hosts[3].loid}
        for m in rl.masters[0].entries:
            assert m.host_loid in fast

    def test_impossible_deadline_degrades_to_fastest(self, market):
        meta, app, _ledger = market
        sched = CostAwareScheduler(meta.collection, meta.enactor,
                                   meta.transport, deadline=1.0)
        rl = sched.compute_schedule([ObjectClassRequest(app, 1)])
        assert rl.masters[0].entries[0].host_loid in {
            meta.hosts[2].loid, meta.hosts[3].loid}

    def test_queueing_spills_to_next_host(self, market):
        meta, app, _ledger = market
        # deadline admits one task per cheap host, so the third task of a
        # batch must spill (to the second cheap host, then to fast ones)
        sched = CostAwareScheduler(meta.collection, meta.enactor,
                                   meta.transport, deadline=150.0)
        rl = sched.compute_schedule([ObjectClassRequest(app, 4)])
        hosts_used = [m.host_loid for m in rl.masters[0].entries]
        assert len(set(hosts_used)) >= 3

    def test_end_to_end_cost_vs_speed(self, market):
        meta, app, ledger = market
        cheap_sched = CostAwareScheduler(meta.collection, meta.enactor,
                                         meta.transport, deadline=1e9)
        outcome = cheap_sched.run([ObjectClassRequest(app, 2)])
        assert outcome.ok
        wait_for_completion(meta, app, outcome.created)
        cheap_cost = ledger.total
        assert cheap_cost == pytest.approx(2.0)  # 2 x 100 x 0.01

        fast_sched = CostAwareScheduler(meta.collection, meta.enactor,
                                        meta.transport, deadline=30.0)
        outcome2 = fast_sched.run([ObjectClassRequest(app, 2)])
        assert outcome2.ok
        wait_for_completion(meta, app, outcome2.created)
        fast_cost = ledger.total - cheap_cost
        assert fast_cost == pytest.approx(20.0)  # 2 x 100 x 0.10

    def test_deadline_validation(self, market):
        meta, _app, _ledger = market
        with pytest.raises(ValueError):
            CostAwareScheduler(meta.collection, meta.enactor,
                               meta.transport, deadline=0.0)

    def test_exactly_deadline_boundary_is_feasible(self, market):
        meta, app, _ledger = market
        # 100 units at speed 1, load 0: estimated completion is exactly
        # 100 s — a deadline of exactly 100 s must still buy cheap
        sched = CostAwareScheduler(meta.collection, meta.enactor,
                                   meta.transport, deadline=100.0)
        rl = sched.compute_schedule([ObjectClassRequest(app, 2)])
        cheap = {meta.hosts[0].loid, meta.hosts[1].loid}
        for m in rl.masters[0].entries:
            assert m.host_loid in cheap
        # one tick tighter and the cheap estimate no longer fits
        tight = CostAwareScheduler(meta.collection, meta.enactor,
                                   meta.transport, deadline=99.999)
        rl2 = tight.compute_schedule([ObjectClassRequest(app, 1)])
        assert rl2.masters[0].entries[0].host_loid not in cheap

    def test_zero_price_host_wins_and_bills_nothing(self):
        meta = Metasystem(seed=42)
        meta.add_domain("d")
        meta.add_unix_host("free", "d",
                           MachineSpec(arch="sparc", os_name="SunOS"),
                           slots=4, price=0.0)
        meta.add_unix_host("paid", "d",
                           MachineSpec(arch="sparc", os_name="SunOS"),
                           slots=4, price=0.05)
        meta.add_vault("d")
        app = meta.create_class("A", [Implementation("sparc", "SunOS")],
                                work_units=100.0)
        ledger = Ledger(clock=lambda: meta.now)
        ledger.attach_all(meta.hosts)
        sched = CostAwareScheduler(meta.collection, meta.enactor,
                                   meta.transport, deadline=1e9)
        outcome = sched.run([ObjectClassRequest(app, 1)])
        assert outcome.ok
        assert outcome.feedback.reserved_entries[0].host_loid == \
            meta.hosts[0].loid
        wait_for_completion(meta, app, outcome.created)
        assert ledger.total == pytest.approx(0.0)
        assert len(ledger) == 1  # metered, just at a zero rate

    def test_queued_backlog_raises_estimate(self, market):
        meta, app, _ledger = market
        sched = CostAwareScheduler(meta.collection, meta.enactor,
                                   meta.transport, deadline=1e9)
        record = sched.viable_hosts(app)[0]
        base = sched.estimated_completion(record, 100.0)
        assert sched.estimated_completion(record, 100.0, queued=2) == \
            pytest.approx(3.0 * base)

    def test_down_marked_record_never_wins(self, market):
        """Regression: a stale lookup path can hand the scheduler a
        record whose host the HealthMonitor has since marked DOWN — the
        belt-and-braces filter must keep it out of the ranking even when
        it would be the cheapest feasible choice."""
        meta, app, _ledger = market
        cheap = {meta.hosts[0].loid, meta.hosts[1].loid}

        class StaleLookup(CostAwareScheduler):
            def viable_hosts(self, class_obj, extra_query=""):
                records = Scheduler.query_collection(
                    self, "$host_slots_free > 0")
                for r in records:
                    if r.member in cheap:
                        r.attributes["host_health"] = "down"
                return records

        sched = StaleLookup(meta.collection, meta.enactor,
                            meta.transport, deadline=1e9)
        rl = sched.compute_schedule([ObjectClassRequest(app, 2)])
        for m in rl.masters[0].entries:
            assert m.host_loid not in cheap
