"""Failure-injection tests: "our Legion objects are built to accommodate
failure at any step in the scheduling process" (paper section 3.1)."""

import pytest

from repro import Implementation, ObjectClassRequest
from repro.errors import HostUnreachableError, MessageLostError
from repro.schedule import MasterSchedule, ScheduleMapping, ScheduleRequestList
from repro.workload import (
    implementations_for_all_platforms,
    multi_domain,
    wait_for_completion,
)


class TestHostCrash:
    def test_crash_mid_negotiation_fails_entry_not_system(self, multi):
        app = multi.create_class("F", implementations_for_all_platforms(),
                                 work_units=10.0)
        vaults = {v.location.domain: v for v in multi.vaults}
        dead = multi.hosts[0]
        live = multi.hosts[1]
        dead.machine.fail()
        multi.topology.set_node_down(dead.location)
        request = ScheduleRequestList([MasterSchedule([
            ScheduleMapping(app.loid, dead.loid,
                            vaults[dead.domain].loid),
            ScheduleMapping(app.loid, live.loid,
                            vaults[live.domain].loid),
        ])])
        feedback = multi.enactor.make_reservations(request)
        assert not feedback.ok
        # the live host's reservation was cleaned up
        assert live.reservations.live_count(multi.now) == 0

    def test_crash_after_placement_loses_only_local_objects(self, multi):
        app = multi.create_class("F", implementations_for_all_platforms(),
                                 work_units=5000.0)
        sched = multi.make_scheduler("random")
        outcome = sched.run([ObjectClassRequest(app, 6)])
        assert outcome.ok
        victim_host = multi.resolve(
            app.get_instance(outcome.created[0]).host_loid)
        on_victim = {l for l in outcome.created
                     if app.get_instance(l).host_loid == victim_host.loid}
        lost = victim_host.machine.fail()
        assert len(lost) == len(on_victim & set(victim_host.placed))
        # objects elsewhere keep completing
        survivors = [l for l in outcome.created if l not in on_victim]
        if survivors:
            n, _ = wait_for_completion(multi, app, survivors, timeout=1e6)
            assert n == len(survivors)

    def test_recovered_host_accepts_new_work(self, multi):
        host = multi.hosts[0]
        vault = next(v for v in multi.vaults
                     if v.location.domain == host.domain)
        app = multi.create_class("R", implementations_for_all_platforms(),
                                 work_units=10.0)
        host.machine.fail()
        with pytest.raises(Exception):
            host.make_reservation(vault.loid, app.loid)
        host.machine.recover()
        tok = host.make_reservation(vault.loid, app.loid)
        assert host.check_reservation(tok)


class TestPartitions:
    def test_partition_during_enactment_reported_per_entry(self, multi):
        multi.place_enactor("dom0")
        app = multi.create_class("P", implementations_for_all_platforms(),
                                 work_units=10.0)
        vaults = {v.location.domain: v for v in multi.vaults}
        far = next(h for h in multi.hosts if h.domain == "dom1")
        request = ScheduleRequestList([MasterSchedule([
            ScheduleMapping(app.loid, far.loid, vaults["dom1"].loid)])])
        feedback = multi.enactor.make_reservations(request)
        assert feedback.ok
        # partition strikes between reservation and enactment
        multi.topology.partition("dom0", "dom1")
        result = multi.enactor.enact_schedule(feedback)
        assert not result.ok
        assert "HostUnreachable" in result.entry_results[0].reason

    def test_healed_partition_restores_service(self, multi):
        multi.place_enactor("dom0")
        far = next(h for h in multi.hosts if h.domain == "dom1")
        multi.topology.partition("dom0", "dom1")
        with pytest.raises(HostUnreachableError):
            multi.transport.invoke(multi.enactor.location, far.location,
                                   lambda: "hi")
        multi.topology.heal("dom0", "dom1")
        assert multi.transport.invoke(multi.enactor.location,
                                      far.location, lambda: "hi") == "hi"


class TestMessageLoss:
    def test_lossy_network_degrades_not_crashes(self):
        meta = multi_domain(n_domains=2, hosts_per_domain=4, seed=99,
                            dynamics=False)
        meta.transport.loss_probability = 0.3
        meta.place_enactor("dom0")
        app = meta.create_class("L", implementations_for_all_platforms(),
                                work_units=10.0)
        sched = meta.make_scheduler("irs", n_schedules=6)
        sched.sched_try_limit = 5
        successes = 0
        for _ in range(5):
            outcome = sched.run([ObjectClassRequest(app, 2)])
            successes += outcome.ok
        # the wrapper's retries absorb 30% loss most of the time
        assert successes >= 2
        assert meta.transport.messages_lost > 0

    def test_loss_surfaces_as_entry_error_in_parallel_invoke(self):
        meta = multi_domain(n_domains=1, hosts_per_domain=2, seed=98,
                            dynamics=False)
        meta.transport.loss_probability = 1.0
        from repro.net import Call
        host = meta.hosts[0]
        outcomes = meta.transport.parallel_invoke(
            [Call(None, host.location, lambda: 1)])
        assert not outcomes[0].ok
        assert isinstance(outcomes[0].error, MessageLostError)


class TestFailureSpans:
    """Failures must be visible in the causal trace, not just in return
    codes — an error span per failed step (docs/observability.md)."""

    def test_unreachable_host_leaves_error_rpc_span(self, multi):
        app = multi.create_class("F", implementations_for_all_platforms(),
                                 work_units=10.0)
        vaults = {v.location.domain: v for v in multi.vaults}
        dead, live = multi.hosts[0], multi.hosts[1]
        dead.machine.fail()
        multi.topology.set_node_down(dead.location)
        request = ScheduleRequestList([MasterSchedule([
            ScheduleMapping(app.loid, dead.loid,
                            vaults[dead.domain].loid),
            ScheduleMapping(app.loid, live.loid,
                            vaults[live.domain].loid),
        ])])
        with multi.spans.span("test-root"):
            feedback = multi.enactor.make_reservations(request)
        assert not feedback.ok
        (reserve_span,) = multi.spans.find("enactor.reserve")
        (rpc_dead,) = multi.spans.find("rpc:make_reservation[0]")
        assert rpc_dead.parent_id == reserve_span.span_id
        assert rpc_dead.status == "error"
        assert "HostUnreachableError" in rpc_dead.attributes["error"]
        assert rpc_dead.duration == 0.0  # never left the sender
        # the live host's grant was rolled back — visible as a cancel
        assert multi.spans.find("enactor.cancel")
        (m_span,) = multi.spans.find("enactor.master")
        assert m_span.status == "error"

    def test_message_loss_leaves_error_rpc_span(self):
        meta = multi_domain(n_domains=1, hosts_per_domain=2, seed=98,
                            dynamics=False)
        meta.transport.loss_probability = 1.0
        from repro.net import Call
        host = meta.hosts[0]
        with meta.spans.span("test-root"):
            outcomes = meta.transport.parallel_invoke(
                [Call(None, host.location, lambda: 1, label="ping")])
        assert not outcomes[0].ok
        (rpc,) = meta.spans.find("rpc:ping")
        assert rpc.status == "error"
        assert "MessageLostError" in rpc.attributes["error"]

    def test_failed_migration_root_span_has_error_status(self, multi):
        app = multi.create_class("M", implementations_for_all_platforms(),
                                 work_units=5000.0)
        outcome = multi.make_scheduler("random").run(
            [ObjectClassRequest(app, 1)])
        assert outcome.ok
        loid = outcome.created[0]
        src = multi.resolve(app.get_instance(loid).host_loid)
        dst = next(h for h in multi.hosts if h.loid != src.loid
                   and h.domain == src.domain)
        dst.machine.fail()
        multi.spans.clear()
        report = multi.migrator.migrate(loid, dst.loid)
        assert not report.ok
        (root,) = multi.spans.trace_roots()
        assert root.name == "migration"
        assert root.status == "error"
        assert root.attributes["ok"] is False
        assert root.attributes["step"] == "12-13"


class TestMigrationFailures:
    def test_failed_migration_rolls_back_reservation(self, multi):
        from repro.hosts.policy import LoadCeiling
        app = multi.create_class("M", implementations_for_all_platforms(),
                                 work_units=5000.0)
        sched = multi.make_scheduler("random")
        outcome = sched.run([ObjectClassRequest(app, 1)])
        assert outcome.ok
        loid = outcome.created[0]
        src = multi.resolve(app.get_instance(loid).host_loid)
        dst = next(h for h in multi.hosts if h.loid != src.loid
                   and h.domain == src.domain)
        # destination accepts the reservation but its machine dies before
        # reactivation
        grants_before = dst.reservations.grants
        dst.machine.fail()
        report = multi.migrator.migrate(loid, dst.loid)
        assert not report.ok
        # object still running at the source
        assert loid in src.placed
        assert dst.reservations.grants == grants_before  # nothing granted

    def test_vault_capacity_failure_surfaces(self, multi):
        app = multi.create_class("V", implementations_for_all_platforms(),
                                 work_units=5000.0)
        sched = multi.make_scheduler("random")
        outcome = sched.run([ObjectClassRequest(app, 1)])
        assert outcome.ok
        loid = outcome.created[0]
        src = multi.resolve(app.get_instance(loid).host_loid)
        tiny = multi.add_vault(src.domain, name="tiny",
                               capacity_bytes=1.0)
        dst = next(h for h in multi.hosts
                   if h.loid != src.loid and h.domain == src.domain)
        report = multi.migrator.migrate(loid, dst.loid,
                                        to_vault_loid=tiny.loid)
        assert not report.ok
        assert "OPR move failed" in report.detail
        # rollback: the object is running again at the source
        instance = app.get_instance(loid)
        assert instance.is_active
        assert instance.host_loid == src.loid
        assert loid in src.placed
