"""The federated Collection subsystem: ring, shards, router, gossip.

Covers the acceptance criteria of the federation PR: placement
equivalence with the monolithic Collection when every shard is healthy,
graceful degradation (partial scatter-gather results) when a shard is
unreachable, gossip repair after downtime, and the ring's balance /
minimal-disruption properties (property-based).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    FederationConfig,
    Metasystem,
    MachineSpec,
    ObjectClassRequest,
)
from repro.errors import (
    AuthenticationError,
    HostUnreachableError,
    NotAMemberError,
)
from repro.federation.ring import ConsistentHashRing
from repro.naming.loid import LOID
from repro.workload import (
    TestbedSpec,
    build_testbed,
    implementations_for_all_platforms,
)


def loid(name):
    return LOID(("test", "host", name))


def federated_testbed(seed=5, shards=3, replication=2, gossip=0.0,
                      cache_ttl=0.0, load=0.4):
    return build_testbed(TestbedSpec(
        n_domains=2, hosts_per_domain=4, platform_mix=2,
        background_load_mean=load, seed=seed,
        federation_shards=shards, federation_replication=replication,
        gossip_interval=gossip, federation_cache_ttl=cache_ttl))


# ---------------------------------------------------------------------------
# ring
# ---------------------------------------------------------------------------
class TestRing:
    def test_deterministic_across_instances(self):
        a = ConsistentHashRing(seed=3)
        b = ConsistentHashRing(seed=3)
        for name in ("s0", "s1", "s2"):
            a.add_shard(name)
        for name in ("s2", "s0", "s1"):  # insertion order must not matter
            b.add_shard(name)
        keys = [f"loid:test.host.h{i}" for i in range(100)]
        assert [a.preference_list(k, 2) for k in keys] == \
               [b.preference_list(k, 2) for k in keys]

    def test_seed_changes_layout(self):
        a = ConsistentHashRing(seed=1)
        b = ConsistentHashRing(seed=2)
        for ring in (a, b):
            for name in ("s0", "s1", "s2"):
                ring.add_shard(name)
        keys = [f"k{i}" for i in range(200)]
        assert [a.owner(k) for k in keys] != [b.owner(k) for k in keys]

    def test_preference_list_distinct_and_clamped(self):
        ring = ConsistentHashRing(seed=0)
        ring.add_shard("s0")
        ring.add_shard("s1")
        plist = ring.preference_list("some-key", 5)
        assert sorted(plist) == ["s0", "s1"]  # clamped to shard count
        assert len(set(plist)) == len(plist)

    def test_remove_shard(self):
        ring = ConsistentHashRing(seed=0)
        for name in ("s0", "s1", "s2"):
            ring.add_shard(name)
        ring.remove_shard("s1")
        assert ring.shards() == ["s0", "s2"]
        for i in range(50):
            assert ring.owner(f"k{i}") != "s1"

    def test_duplicate_and_unknown_shards_rejected(self):
        ring = ConsistentHashRing(seed=0)
        ring.add_shard("s0")
        with pytest.raises(ValueError):
            ring.add_shard("s0")
        with pytest.raises(ValueError):
            ring.remove_shard("nope")

    @settings(max_examples=25, deadline=None)
    @given(n_shards=st.integers(min_value=2, max_value=8),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_balance_bounded(self, n_shards, seed):
        """Max/min home-shard load ratio stays bounded with vnodes."""
        ring = ConsistentHashRing(seed=seed, vnodes=128)
        for i in range(n_shards):
            ring.add_shard(f"s{i}")
        counts = {f"s{i}": 0 for i in range(n_shards)}
        for k in range(3000):
            counts[ring.owner(f"loid:test.host.h{k}")] += 1
        expected = 3000 / n_shards
        # every shard gets real load, and none more than ~2.2x its share
        assert min(counts.values()) > 0.35 * expected
        assert max(counts.values()) < 2.2 * expected

    @settings(max_examples=25, deadline=None)
    @given(n_shards=st.integers(min_value=2, max_value=6),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_minimal_disruption_on_join(self, n_shards, seed):
        """Adding a shard only moves keys *onto* the new shard."""
        ring = ConsistentHashRing(seed=seed, vnodes=64)
        for i in range(n_shards):
            ring.add_shard(f"s{i}")
        keys = [f"k{i}" for i in range(500)]
        before = {k: ring.owner(k) for k in keys}
        ring.add_shard("new")
        moved = 0
        for k in keys:
            after = ring.owner(k)
            if after != before[k]:
                assert after == "new", \
                    f"{k} moved {before[k]} -> {after}, not to the joiner"
                moved += 1
        # the new shard picks up roughly its fair share, not everything
        assert moved < len(keys) * 2.5 / (n_shards + 1)

    @settings(max_examples=25, deadline=None)
    @given(n_shards=st.integers(min_value=3, max_value=6),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_minimal_disruption_on_leave(self, n_shards, seed):
        """Removing a shard only remaps the keys it owned."""
        ring = ConsistentHashRing(seed=seed, vnodes=64)
        for i in range(n_shards):
            ring.add_shard(f"s{i}")
        keys = [f"k{i}" for i in range(500)]
        before = {k: ring.owner(k) for k in keys}
        ring.remove_shard("s0")
        for k in keys:
            if before[k] != "s0":
                assert ring.owner(k) == before[k]


# ---------------------------------------------------------------------------
# router: Fig. 4 interface parity
# ---------------------------------------------------------------------------
class TestFederatedInterface:
    def make_meta(self, **kwargs):
        m = Metasystem(seed=7, federation=FederationConfig(
            shards=3, replication=2, gossip_interval=0.0, **kwargs))
        m.add_domain("uva")
        return m

    def test_join_update_query_leave(self):
        m = self.make_meta()
        coll = m.collection
        cred = coll.join(loid("h1"), {"host_load": 1.0})
        assert loid("h1") in coll
        assert len(coll) == 1
        coll.update_entry(loid("h1"), {"host_load": 2.0}, cred)
        records = coll.query("$host_load >= 2")
        assert [r.member for r in records] == [loid("h1")]
        coll.leave(loid("h1"), cred)
        assert loid("h1") not in coll
        with pytest.raises(NotAMemberError):
            coll.record_of(loid("h1"))

    def test_update_requires_credential(self):
        m = self.make_meta()
        coll = m.collection
        coll.join(loid("h1"), {"x": 1})
        with pytest.raises(AuthenticationError):
            coll.update_entry(loid("h1"), {"x": 2}, None)
        other = coll.join(loid("h2"))
        with pytest.raises(AuthenticationError):
            coll.update_entry(loid("h1"), {"x": 2}, other)

    def test_records_replicated(self):
        m = self.make_meta()
        coll = m.collection
        coll.join(loid("h1"), {"x": 1})
        holders = [s for s in m.collection_shards
                   if loid("h1") in s.collection]
        assert len(holders) == 2  # replication factor
        assert {s.shard_id for s in holders} == \
               set(coll.ring.preference_list(str(loid("h1")), 2))

    def test_query_dedups_replicas(self):
        m = self.make_meta()
        coll = m.collection
        for i in range(10):
            coll.join(loid(f"h{i}"), {"x": i})
        records = coll.query("$x >= 0")
        assert len(records) == 10  # each member once despite 2 replicas
        assert [r.member for r in records] == sorted(r.member
                                                     for r in records)

    def test_computed_attributes_reach_shards(self):
        m = self.make_meta()
        coll = m.collection
        coll.join(loid("h1"), {"base": 2.0})
        coll.inject_attribute("doubled", lambda attrs: attrs["base"] * 2)
        records = coll.query("$doubled == 4")
        assert len(records) == 1
        assert coll.record_attr(records[0], "doubled") == 4.0

    def test_mean_staleness_matches_monolith_shape(self):
        m = self.make_meta()
        coll = m.collection
        assert math.isnan(coll.mean_staleness())
        coll.join(loid("h1"))
        assert coll.mean_staleness() == 0.0


# ---------------------------------------------------------------------------
# equivalence + degradation (the acceptance criteria)
# ---------------------------------------------------------------------------
class TestEquivalenceAndDegradation:
    def run_workload(self, shards):
        meta = federated_testbed(seed=11, shards=shards)
        app = meta.create_class("app", implementations_for_all_platforms(),
                                work_units=100.0)
        outcome = meta.make_scheduler("irs").run(
            [ObjectClassRequest(app, count=4)])
        return meta, outcome

    def test_identical_placements_when_healthy(self):
        _, mono = self.run_workload(shards=0)
        _, fed = self.run_workload(shards=3)
        assert mono.ok and fed.ok
        assert [str(c) for c in mono.created] == \
               [str(c) for c in fed.created]
        assert [str(e) for e in mono.feedback.reserved_entries] == \
               [str(e) for e in fed.feedback.reserved_entries]

    def test_query_results_match_monolith(self):
        meta_m, _ = self.run_workload(shards=0)
        meta_f, _ = self.run_workload(shards=3)
        q = "$host_up == true"
        mono = [(str(r.member), sorted(r.attributes))
                for r in meta_m.collection.query(q)]
        fed = [(str(r.member), sorted(r.attributes))
               for r in meta_f.collection.query(q)]
        assert mono == fed

    def test_placements_complete_with_shard_down(self):
        meta = federated_testbed(seed=11, shards=3)
        meta.collection.set_shard_down("shard1")
        app = meta.create_class("app", implementations_for_all_platforms(),
                                work_units=100.0)
        outcome = meta.make_scheduler("random").run(
            [ObjectClassRequest(app, count=3)])
        assert outcome.ok  # degraded, not failed
        assert meta.collection.partial_queries > 0
        assert meta.collection.healthy_shards() == ["shard0", "shard2"]

    def test_replication_covers_single_shard_loss(self):
        meta = federated_testbed(seed=11, shards=3, replication=2)
        full = {str(r.member)
                for r in meta.collection.query("$host_up == true")}
        meta.collection.set_shard_down("shard0")
        partial = {str(r.member)
                   for r in meta.collection.query("$host_up == true")}
        assert partial == full  # R=2 ⇒ one lost shard loses no records

    def test_all_shards_down_raises(self):
        meta = federated_testbed(seed=11, shards=3)
        for shard in meta.collection_shards:
            meta.collection.set_shard_down(shard.shard_id)
        with pytest.raises(HostUnreachableError):
            meta.collection.query("$host_up == true")

    def test_writes_survive_home_shard_down(self):
        m = Metasystem(seed=7, federation=(3, 2))
        m.add_domain("uva")
        coll = m.collection
        member = loid("h1")
        home = coll.home_shard(member).shard_id
        coll.set_shard_down(home)
        cred = coll.join(member, {"x": 1})  # lands on the replica
        coll.update_entry(member, {"x": 2}, cred)
        coll.set_shard_down(home, down=False)
        assert coll.record_of(member).attributes["x"] == 2


# ---------------------------------------------------------------------------
# located shards: charged messages + topology faults
# ---------------------------------------------------------------------------
class TestLocatedShards:
    def test_place_federation_and_topology_fault(self):
        m = Metasystem(seed=3, federation=(3, 2),
                       require_collection_auth=False)
        m.add_domain("uva")
        m.add_domain("nasa")
        locations = m.place_federation()
        assert len(locations) == 3
        for i in range(6):
            m.add_unix_host(f"ws{i}", "uva",
                            MachineSpec(arch="sparc", os_name="SunOS"))
        sent_before = m.transport.messages_sent
        results = m.collection.query("$host_up == true")
        assert len(results) == 6
        assert m.transport.messages_sent > sent_before  # charged scatter
        # fail one shard node through the topology: degrade, don't fail
        m.topology.set_node_down(m.collection_shards[0].location)
        partial = m.collection.query("$host_up == true")
        assert len(partial) == 6  # replicas cover the loss
        assert m.collection.partial_queries == 1


# ---------------------------------------------------------------------------
# gossip anti-entropy
# ---------------------------------------------------------------------------
class TestGossip:
    def test_gossip_repairs_missed_writes(self):
        meta = federated_testbed(seed=11, shards=3, replication=2,
                                 gossip=30.0, load=0.0)
        coll = meta.collection
        member = meta.hosts[0].loid
        replicas = coll.replicas_for(member)
        victim = replicas[1]
        victim_records = victim.collection
        # the replica goes down; the host pushes a fresh update
        coll.set_shard_down(victim.shard_id)
        cred = meta._host_credentials[member]
        coll.update_entry(member, {"marker": 42}, cred)
        home_version = replicas[0].collection.record_of(member).version()
        assert victim_records.record_of(member).version() < home_version
        assert "marker" not in victim_records.record_of(member).attributes
        # replica recovers; only anti-entropy can deliver the missed
        # "marker" attribute (periodic host pushes don't carry it)
        coll.set_shard_down(victim.shard_id, down=False)
        meta.advance(200.0)
        assert victim_records.record_of(member).attributes["marker"] == 42
        assert victim_records.record_of(member).version() == \
               replicas[0].collection.record_of(member).version()
        assert meta.gossip.records_exchanged > 0
        assert meta.gossip.bytes_exchanged > 0

    def test_gossip_converges_without_churn(self):
        meta = federated_testbed(seed=11, shards=3, replication=2,
                                 gossip=10.0, load=0.0)
        meta.advance(100.0)
        exchanged_once = meta.gossip.records_exchanged
        rounds_once = meta.gossip.rounds
        meta.advance(100.0)
        # synchronous replication keeps replicas in agreement, so the
        # pull-based delta exchange ships nothing round after round
        assert meta.gossip.rounds > rounds_once
        assert meta.gossip.records_exchanged == exchanged_once
        member = meta.hosts[0].loid
        replica_versions = {
            s.collection.record_of(member).version()
            for s in meta.collection.replicas_for(member)}
        assert len(replica_versions) == 1

    def test_gossip_metrics_exported(self):
        meta = federated_testbed(seed=11, shards=3, gossip=15.0)
        meta.advance(100.0)
        assert "federation_gossip_rounds_total" in meta.metrics
        assert "federation_gossip_bytes_total" in meta.metrics
        assert meta.metrics.get(
            "federation_gossip_rounds_total").value >= 6


# ---------------------------------------------------------------------------
# query cache
# ---------------------------------------------------------------------------
class TestQueryCache:
    def test_cache_hit_within_ttl(self):
        meta = federated_testbed(seed=11, shards=3, cache_ttl=60.0)
        coll = meta.collection
        q = "$host_up == true"
        first = coll.query(q)
        before = meta.metrics.get("federation_shard_queries_total")
        count_before = sum(leaf.value for _, leaf in before._series())
        second = coll.query(q)
        count_after = sum(leaf.value
                          for _, leaf in before._series())
        assert count_after == count_before  # served from cache
        assert [r.member for r in first] == [r.member for r in second]
        assert coll.cache_stats()["hit"] == 1

    def test_cache_expires_after_ttl(self):
        meta = federated_testbed(seed=11, shards=3, cache_ttl=5.0)
        coll = meta.collection
        q = "$host_up == true"
        coll.query(q)
        meta.advance(30.0)
        coll.query(q)
        stats = coll.cache_stats()
        assert stats["expired"] == 1
        assert stats["hit"] == 0

    def test_partial_results_not_cached(self):
        meta = federated_testbed(seed=11, shards=3, cache_ttl=60.0)
        coll = meta.collection
        coll.set_shard_down("shard0")
        q = "$host_up == true"
        coll.query(q)
        coll.set_shard_down("shard0", down=False)
        coll.query(q)
        # second query re-scattered (no hit recorded for a partial)
        assert coll.cache_stats()["hit"] == 0


# ---------------------------------------------------------------------------
# pull_from idempotence (satellite regression)
# ---------------------------------------------------------------------------
class TestPullIdempotence:
    def fresh_collection(self, meta):
        from repro.collection.collection import Collection
        return Collection(LOID(("test", "svc", "pull")),
                          clock=lambda: meta.now)

    def test_repeated_identical_pull_is_noop(self, meta):
        host = meta.hosts[0]
        coll = self.fresh_collection(meta)
        coll.pull_from(host)
        record = coll.record_of(host.loid)
        version = record.version()
        updated_at = record.updated_at
        meta.advance(50.0)  # static machine: attributes unchanged
        coll.pull_from(host)
        record = coll.record_of(host.loid)
        assert record.version() == version
        assert record.updated_at == updated_at  # no staleness reset
        assert record.staleness(meta.now) >= 50.0

    def test_changed_attributes_still_refresh(self, meta):
        host = meta.hosts[0]
        coll = self.fresh_collection(meta)
        coll.pull_from(host)
        version = coll.record_of(host.loid).version()
        meta.advance(10.0)
        host.machine.set_background_load(3.0)
        host.reassess()
        coll.pull_from(host)
        assert coll.record_of(host.loid).version() > version
        assert coll.record_of(host.loid).attributes["host_load"] >= 3.0
