"""Tests for the guardrails subsystem: breakers, health, admission, bench.

Covers the PR's satellites: the generic non-retryable flag honoured by
RetryPolicy (with the open-breaker-consumes-one-attempt regression),
health-aware Collection eviction, reservation-ledger sweeping, the
hypothesis property that opened breakers re-close once faults heal, and
the seeded off/retries/guardrails campaign comparison.
"""

import json
from io import StringIO
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Implementation, Metasystem
from repro.errors import (
    AdmissionRejected,
    CircuitOpenError,
    HostUnreachableError,
    MessageLostError,
    ReservationDeniedError,
)
from repro.chaos import RetryPolicy
from repro.guardrails import (
    CLOSED,
    DOWN,
    HALF_OPEN,
    LIVE,
    OPEN,
    SUSPECT,
    AdmissionController,
    BreakerBoard,
    CircuitBreaker,
    GuardrailConfig,
    run_comparison,
)
from repro.hosts import MachineSpec
from repro.net import AdministrativeDomain, NetLocation, Topology, Transport
from repro.sim import RngRegistry, Simulator
from repro.tools.cli import main as cli_main

ROOT = Path(__file__).resolve().parent.parent


def make_transport(topo, loss=0.0):
    from repro.net import MetasystemLatencyModel
    sim = Simulator()
    rngs = RngRegistry(1)
    return Transport(sim, topo, MetasystemLatencyModel(topo), rngs,
                     loss_probability=loss)


@pytest.fixture
def topo():
    t = Topology()
    t.add_domain(AdministrativeDomain("uva", distance=1.0))
    t.add_domain(AdministrativeDomain("sdsc", distance=3.0))
    t.add_node("uva", "a")
    t.add_node("uva", "b")
    t.add_node("sdsc", "c")
    return t


def guarded_meta(seed=7, **overrides):
    """The conftest meta topology, with guardrails enabled."""
    m = Metasystem(seed=seed)
    m.add_domain("uva")
    for i in range(4):
        m.add_unix_host(f"ws{i}", "uva",
                        MachineSpec(arch="sparc", os_name="SunOS"),
                        slots=4)
    m.add_vault("uva", name="uva-vault")
    m.enable_guardrails(**overrides)
    return m


class TestGuardrailConfig:
    def test_defaults_valid(self):
        cfg = GuardrailConfig()
        assert cfg.suspect_after < cfg.down_after
        assert cfg.fail_suspect < cfg.fail_down

    def test_validation(self):
        with pytest.raises(ValueError):
            GuardrailConfig(breaker_failure_threshold=0)
        with pytest.raises(ValueError):
            GuardrailConfig(suspect_after=200.0, down_after=100.0)


class TestCircuitBreaker:
    """The three-state machine, driven by an explicit clock."""

    def test_opens_after_consecutive_failures(self):
        br = CircuitBreaker("dst", failure_threshold=3, cooldown=10.0)
        for _ in range(2):
            br.record_failure(0.0)
        assert br.state == CLOSED
        br.record_failure(0.0)
        assert br.state == OPEN
        assert br.opens == 1

    def test_success_resets_failure_count(self):
        br = CircuitBreaker("dst", failure_threshold=3, cooldown=10.0)
        br.record_failure(0.0)
        br.record_failure(0.0)
        br.record_success(0.0)
        br.record_failure(0.0)
        br.record_failure(0.0)
        assert br.state == CLOSED  # never three in a row

    def test_fast_fails_while_open_then_half_open_probe(self):
        br = CircuitBreaker("dst", failure_threshold=1, cooldown=10.0)
        br.record_failure(0.0)
        assert br.state == OPEN
        assert not br.allow(5.0)  # cooldown not elapsed
        assert br.fast_fails == 1
        assert br.allow(10.0)  # cooldown elapsed: single probe allowed
        assert br.state == HALF_OPEN
        assert not br.allow(10.0)  # probe already in flight
        assert br.fast_fails == 2

    def test_probe_success_recloses(self):
        br = CircuitBreaker("dst", failure_threshold=1, cooldown=10.0)
        br.record_failure(0.0)
        assert br.allow(10.0)
        br.record_success(10.5)
        assert br.state == CLOSED

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        br = CircuitBreaker("dst", failure_threshold=1, cooldown=10.0)
        br.record_failure(0.0)
        assert br.allow(10.0)
        br.record_failure(10.5)
        assert br.state == OPEN
        assert not br.allow(15.0)  # new cooldown runs from reopen
        assert br.allow(20.5)

    @given(st.lists(st.booleans(), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_opened_breaker_recloses_after_heal(self, outcomes):
        """Satellite property: whatever failure/success history a breaker
        has seen, once the fault heals (cooldown passes, traffic
        succeeds) it ends CLOSED within a bounded number of probes."""
        br = CircuitBreaker("dst", failure_threshold=2, cooldown=10.0)
        now = 0.0
        for ok in outcomes:
            now += 1.0
            if br.allow(now):
                br.record_success(now) if ok else br.record_failure(now)
        # heal: keep offering successful traffic past cooldowns
        for _ in range(3):
            now += 10.0
            if br.allow(now):
                br.record_success(now)
        assert br.state == CLOSED


class TestBreakerBoard:
    def test_lazily_creates_one_breaker_per_destination(self):
        clk = [0.0]
        board = BreakerBoard(lambda: clk[0], failure_threshold=2,
                             cooldown=5.0)
        board.record_failure("uva/a")
        board.record_failure("uva/b")
        assert len(board) == 2
        assert board.open_count() == 0

    def test_check_raises_circuit_open(self):
        clk = [0.0]
        board = BreakerBoard(lambda: clk[0], failure_threshold=1,
                             cooldown=5.0)
        board.record_failure("uva/a")
        with pytest.raises(CircuitOpenError):
            board.check("uva/a")
        # the other destination is unaffected
        board.check("uva/b")

    def test_listener_sees_outcomes(self):
        seen = []
        board = BreakerBoard(lambda: 0.0, failure_threshold=3,
                             cooldown=5.0,
                             listener=lambda dst, ok: seen.append((dst, ok)))
        board.record_success("uva/a")
        board.record_failure("uva/b")
        assert seen == [("uva/a", True), ("uva/b", False)]


class TestTransportBreakers:
    def test_unreachable_failures_open_the_circuit(self, topo):
        tr = make_transport(topo)
        tr.breakers = BreakerBoard(lambda: tr.sim.now,
                                   failure_threshold=2, cooldown=30.0)
        a, c = NetLocation("uva", "a"), NetLocation("sdsc", "c")
        topo.partition("uva", "sdsc")
        for _ in range(2):
            with pytest.raises(HostUnreachableError):
                tr.invoke(a, c, lambda: None)
        # the circuit is now open: no hop is charged, the error changes
        sent = tr.messages_sent
        with pytest.raises(CircuitOpenError):
            tr.invoke(a, c, lambda: None)
        assert tr.messages_sent == sent

    def test_open_breaker_consumes_at_most_one_attempt(self, topo):
        """Satellite (a) regression: CircuitOpenError is non-retryable,
        so a RetryPolicy gives up after the single fast-fail instead of
        burning its attempt budget against an open circuit."""
        tr = make_transport(topo)
        tr.breakers = BreakerBoard(lambda: tr.sim.now,
                                   failure_threshold=1, cooldown=1e9)
        tr.retry_policy = RetryPolicy(max_attempts=5, base_delay=0.1,
                                      retry_unreachable=True)
        a, c = NetLocation("uva", "a"), NetLocation("sdsc", "c")
        topo.partition("uva", "sdsc")
        # first call: the real attempt fails and opens the circuit; the
        # first retry fast-fails on the open breaker and the policy
        # gives up instead of burning the remaining budget
        with pytest.raises(CircuitOpenError):
            tr.invoke(a, c, lambda: None, idempotent=True)
        assert tr.breakers.open_count() == 1
        assert tr.retries == 1  # not max_attempts - 1
        # subsequent calls consume zero attempts and zero retries
        with pytest.raises(CircuitOpenError):
            tr.invoke(a, c, lambda: None, idempotent=True)
        assert tr.retries == 1

    def test_callee_error_counts_as_breaker_success(self, topo):
        tr = make_transport(topo)
        tr.breakers = BreakerBoard(lambda: tr.sim.now,
                                   failure_threshold=1, cooldown=30.0)
        a, b = NetLocation("uva", "a"), NetLocation("uva", "b")

        def boom():
            raise ValueError("application bug")
        with pytest.raises(ValueError):
            tr.invoke(a, b, boom)
        # dst answered (with an error reply): the circuit stays closed
        assert tr.breakers.open_count() == 0

    def test_probe_recloses_after_recovery(self, topo):
        tr = make_transport(topo)
        tr.breakers = BreakerBoard(lambda: tr.sim.now,
                                   failure_threshold=1, cooldown=5.0)
        a, c = NetLocation("uva", "a"), NetLocation("sdsc", "c")
        topo.partition("uva", "sdsc")
        with pytest.raises(HostUnreachableError):
            tr.invoke(a, c, lambda: None)
        topo.heal("uva", "sdsc")
        tr.sim.run_until(tr.sim.now + 5.0)
        assert tr.invoke(a, c, lambda: 42) == 42  # the half-open probe
        assert tr.breakers.open_count() == 0


class TestRetryFlagHandling:
    """Satellite (a): RetryPolicy honours the generic retryable flag."""

    def test_circuit_open_never_retryable(self):
        policy = RetryPolicy(retry_unreachable=True)
        assert not policy.is_retryable(CircuitOpenError("open"))
        assert policy.next_delay(CircuitOpenError("open"), 1, 0.0) is None

    def test_admission_rejected_never_retryable(self):
        policy = RetryPolicy(retry_unreachable=True)
        assert not policy.is_retryable(AdmissionRejected("full"))

    def test_instance_veto_beats_retryable_class(self):
        policy = RetryPolicy()
        exc = MessageLostError("lost")
        assert policy.is_retryable(exc)
        exc.retryable = False
        assert not policy.is_retryable(exc)

    def test_instance_grant_beats_nonretryable_class(self):
        policy = RetryPolicy(retry_unreachable=False)
        exc = HostUnreachableError("down")
        assert not policy.is_retryable(exc)
        exc.retryable = True
        assert policy.is_retryable(exc)


class TestAdmissionControl:
    def test_pending_queue_bound(self):
        meta = guarded_meta(admission_max_pending=2,
                            admission_load_limit=None)
        host = meta.host_by_name("ws0")
        vault = meta.vaults[0].loid
        cls = meta.create_class("App", [Implementation("sparc", "SunOS")],
                                work_units=1.0).loid
        host.make_reservation(vault, cls)
        host.make_reservation(vault, cls)
        with pytest.raises(AdmissionRejected):
            host.make_reservation(vault, cls)
        assert meta.guardrails.admission.rejections == 1
        # AdmissionRejected is a ReservationDeniedError to callers that
        # only know the base hierarchy
        assert issubclass(AdmissionRejected, ReservationDeniedError)

    def test_load_limit(self):
        meta = guarded_meta(admission_max_pending=None,
                            admission_load_limit=2.0)
        host = meta.host_by_name("ws0")
        vault = meta.vaults[0].loid
        cls = meta.create_class("App", [Implementation("sparc", "SunOS")],
                                work_units=1.0).loid
        host.machine.set_background_load(5.0)
        with pytest.raises(AdmissionRejected):
            host.make_reservation(vault, cls)
        host.machine.set_background_load(0.5)
        host.make_reservation(vault, cls)  # admitted again

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_pending=0)
        with pytest.raises(ValueError):
            AdmissionController(load_limit=0.0)


class TestHealthMonitor:
    def test_crash_quarantines_and_recovery_restores(self):
        meta = guarded_meta()
        monitor = meta.guardrails.monitor
        host = meta.host_by_name("ws0")
        assert monitor.state_of(host.loid) == LIVE
        host.machine.fail()
        meta.topology.set_node_down(host.location)
        meta.advance(meta.guardrails.config.down_after + 60.0)
        assert monitor.state_of(host.loid) == DOWN
        # quarantine is published into the Collection record...
        raw = meta.collection.record_of(host.loid)
        assert raw.attributes.get("host_health") == DOWN
        # ...and query-time exclusion hides the host
        names = [r.get("host_name") for r in meta.collection.query("true")]
        assert host.machine.name not in names
        assert len(names) == 3
        # recovery: heartbeats resume, the monitor re-classifies LIVE
        host.machine.recover()
        meta.topology.set_node_down(host.location, down=False)
        meta.advance(meta.guardrails.config.health_interval * 4)
        assert monitor.state_of(host.loid) == LIVE
        names = [r.get("host_name") for r in meta.collection.query("true")]
        assert host.machine.name in names

    def test_consecutive_invoke_failures_mark_suspect(self):
        meta = guarded_meta()
        monitor = meta.guardrails.monitor
        host = meta.host_by_name("ws1")
        key = str(host.location)
        for _ in range(meta.guardrails.config.fail_suspect):
            monitor.note_outcome(key, ok=False)
        monitor.tick()
        assert monitor.state_of(host.loid) == SUSPECT
        monitor.note_outcome(key, ok=True)
        monitor.tick()
        assert monitor.state_of(host.loid) == LIVE

    def test_viable_hosts_excludes_down(self):
        meta = guarded_meta()
        app = meta.create_class("App", [Implementation("sparc", "SunOS")],
                                work_units=10.0)
        host = meta.host_by_name("ws0")
        host.machine.fail()
        meta.topology.set_node_down(host.location)
        meta.advance(meta.guardrails.config.down_after + 60.0)
        sched = meta.make_scheduler("random")
        viable = sched.viable_hosts(app)
        assert len(viable) == 3
        assert all(r.get("host_name") != host.machine.name for r in viable)

    def test_enable_guardrails_is_idempotent_and_deterministic(self):
        meta = guarded_meta()
        suite = meta.enable_guardrails()
        assert suite is meta.guardrails
        # guardrails draw no RNG: identical seeds stay identical with
        # the layer enabled (the determinism suite covers the rest)
        a = guarded_meta(seed=11)
        b = guarded_meta(seed=11)
        a.advance(200.0)
        b.advance(200.0)
        assert a.now == b.now
        assert a.guardrails.monitor.counts() == b.guardrails.monitor.counts()


class TestDaemonEviction:
    """Satellite (b): health-aware sweeps evict long-DOWN records."""

    def _down_host(self, meta, name="ws0"):
        host = meta.host_by_name(name)
        host.machine.fail()
        meta.topology.set_node_down(host.location)
        return host

    def test_long_down_record_evicted_then_rejoins(self):
        meta = guarded_meta()
        daemon = meta.make_daemon(interval=30.0, watch_hosts=True,
                                  evict_down_after=300.0)
        daemon.start()
        host = self._down_host(meta)
        meta.advance(meta.guardrails.config.down_after + 300.0 + 120.0)
        assert daemon.evictions >= 1
        assert host.loid not in meta.collection.members()
        # gauge reflects the DOWN population seen by the last sweep
        assert meta.metrics.gauge("collection_down_members").value == 1.0
        # recovery re-joins on the next sweep and clears the gauge
        host.machine.recover()
        meta.topology.set_node_down(host.location, down=False)
        meta.advance(meta.guardrails.config.health_interval * 4 + 60.0)
        assert host.loid in meta.collection.members()
        assert meta.metrics.gauge("collection_down_members").value == 0.0

    def test_down_source_not_pushed_before_eviction(self):
        """A DOWN host's stale snapshot must not clobber quarantine."""
        meta = guarded_meta()
        daemon = meta.make_daemon(interval=30.0, evict_down_after=1e9)
        daemon.start()
        host = self._down_host(meta)
        meta.advance(meta.guardrails.config.down_after + 120.0)
        raw = meta.collection.record_of(host.loid)
        assert raw.attributes.get("host_health") == DOWN


class TestLedgerSweep:
    """Satellite (c): periodic reassessment drops dead ledger entries."""

    def test_reassess_purges_expired_reservations(self, meta):
        host = meta.host_by_name("ws0")
        vault = meta.vaults[0].loid
        cls = meta.create_class("App", [Implementation("sparc", "SunOS")],
                                work_units=1.0).loid
        for _ in range(3):
            host.make_reservation(vault, cls, duration=50.0, timeout=10.0)
        assert len(host.reservations) == 3
        # all three time out unredeemed; the next reassessment sweeps
        meta.advance(120.0)
        assert len(host.reservations) == 0

    def test_pending_count_tracks_unredeemed_live_grants(self, meta):
        host = meta.host_by_name("ws0")
        vault = meta.vaults[0].loid
        cls = meta.create_class("App", [Implementation("sparc", "SunOS")],
                                work_units=1.0).loid
        tok = host.make_reservation(vault, cls, timeout=60.0)
        assert host.reservations.pending_count(meta.now) == 1
        host.cancel_reservation(tok)
        assert host.reservations.pending_count(meta.now) == 0


@pytest.mark.slow
class TestCampaignComparison:
    """Satellite (d) + the acceptance criterion: on the same seeded
    fault timeline, guardrails+retries survives at least as well as
    retries-only while wasting strictly fewer reservation attempts."""

    #: exactly the parameters `legion-sim guardrails --compare --domains 3
    #: --hosts 6` used to produce the committed BENCH_guardrails.json
    BENCH_KWARGS = dict(profile="hosts", chaos_seed=1, seed=0,
                        scheduler="irs", waves=6, per_wave=4, work=250.0,
                        wave_interval=90.0, horizon=None, n_domains=3,
                        hosts_per_domain=6, platform_mix=2,
                        background_load=0.5, shards=0,
                        include_events=False)

    @pytest.fixture(scope="class")
    def comparison(self):
        return run_comparison(**self.BENCH_KWARGS)

    def test_guardrails_do_not_regress_survival(self, comparison):
        assert comparison.survival("guardrails") >= \
            comparison.survival("retries")

    def test_guardrails_waste_strictly_fewer_reservations(self, comparison):
        assert comparison.wasted("guardrails") < comparison.wasted("retries")
        assert comparison.guardrails_improve

    def test_guardrails_machinery_engaged(self, comparison):
        rep = comparison.reports["guardrails"]
        assert rep.guardrails_enabled
        assert rep.health_transitions > 0
        assert rep.load_shed + rep.breaker_opens > 0
        # baseline modes never shed and never open a breaker
        for mode in ("off", "retries"):
            base = comparison.reports[mode]
            assert not base.guardrails_enabled
            assert base.load_shed == 0 and base.breaker_opens == 0

    def test_report_matches_committed_benchmark(self, comparison):
        """Cross-process determinism: the in-process run reproduces the
        committed BENCH_guardrails.json byte for byte."""
        committed = (ROOT / "BENCH_guardrails.json").read_text()
        assert comparison.to_json() + "\n" == committed

    def test_same_seed_reproduces_identical_reports(self):
        """Identical seeds => identical reports (a second, smaller run
        so the determinism check is independent of the committed file)."""
        kwargs = dict(self.BENCH_KWARGS, waves=2, n_domains=2,
                      hosts_per_domain=4)
        a = run_comparison(**kwargs)
        b = run_comparison(**kwargs)
        assert a.to_json() == b.to_json()


class TestGuardrailsCli:
    def test_compare_exits_zero_and_prints_table(self):
        out = StringIO()
        rc = cli_main(["guardrails", "--compare", "--domains", "2",
                       "--hosts", "3", "--waves", "2"], out=out)
        text = out.getvalue()
        assert rc == 0
        assert "guardrails benchmark" in text
        for mode in ("off", "retries", "guardrails"):
            assert mode in text

    def test_out_writes_comparison_json(self, tmp_path):
        path = tmp_path / "bench.json"
        out = StringIO()
        rc = cli_main(["guardrails", "--compare", "--domains", "2",
                       "--hosts", "3", "--waves", "2",
                       "--out", str(path)], out=out)
        assert rc == 0
        doc = json.loads(path.read_text())
        assert set(doc["modes"]) == {"off", "retries", "guardrails"}
        assert "guardrails_improve" in doc["benefit"]

    def test_chaos_accepts_guardrails_flag(self):
        out = StringIO()
        rc = cli_main(["chaos", "--profile", "hosts", "--retry",
                       "--guardrails", "--waves", "2", "--domains", "2",
                       "--hosts", "3"], out=out)
        assert rc == 0
        assert "guardrails         on" in out.getvalue()
