"""Unit tests for the SLO engine and health report (repro.obs.slo/report).

Covers spec validation and round-trip, per-window event extraction
(latency interpolation, ratio counters), error-budget accounting,
deterministic fast/slow burn alerts, the unified health report, the
Metasystem/testbed/chaos wiring, and degenerate span-trace inputs.
"""

import json

import pytest

from repro.obs import (
    MetricsSampler,
    SLOSpec,
    Window,
    build_health_report,
    default_legion_slos,
    evaluate_slo,
    health_report_to_json,
    render_health_report,
    specs_from_dict,
    specs_to_dict,
)
from repro.obs.slo import _good_below_threshold


def counter_window(index, deltas, name="reqs_total", window=60.0):
    """A synthetic window with labeled counter deltas.

    ``deltas`` maps an ``ok`` label value to the windowed delta.
    """
    w = Window(index=index, start=index * window, end=(index + 1) * window)
    for ok, delta in sorted(deltas.items()):
        key = f'{name}{{ok="{ok}"}}'
        w.series[key] = {"name": name, "kind": "counter",
                         "labels": {"ok": ok}, "delta": float(delta),
                         "total": 0.0, "rate": float(delta) / window}
    return w


def latency_window(index, buckets, count, total, exemplars=(),
                   name="lat_seconds", window=60.0):
    w = Window(index=index, start=index * window, end=(index + 1) * window)
    w.series[name] = {"name": name, "kind": "histogram", "labels": {},
                      "count": count, "sum": total,
                      "buckets": [[b, d] for b, d in buckets],
                      "exemplars": list(exemplars)}
    return w


RATIO = SLOSpec(name="success", kind="ratio", target=0.9,
                good="reqs_total", good_labels={"ok": "true"},
                total="reqs_total")
LATENCY = SLOSpec(name="fast", kind="latency", target=0.9,
                  metric="lat_seconds", threshold=1.0)


class TestSpecValidation:
    def test_bad_kind(self):
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="availability", target=0.9)

    def test_target_out_of_range(self):
        for target in (0.0, 1.0, 1.5):
            with pytest.raises(ValueError):
                SLOSpec(name="x", kind="ratio", target=target, good="g",
                        total="t")

    def test_latency_needs_metric_and_threshold(self):
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="latency", target=0.9)
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="latency", target=0.9, metric="m")

    def test_ratio_needs_good_and_total_or_bad(self):
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="ratio", target=0.9)
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="ratio", target=0.9, good="g")

    def test_round_trip_through_dict(self):
        specs = default_legion_slos() + [
            SLOSpec(name="custom", kind="latency", target=0.5,
                    metric="m", threshold=2.0, labels={"ok": "true"},
                    fast_burn=10.0, slow_windows=3)]
        doc = specs_to_dict(specs)
        json.dumps(doc)  # JSON-safe
        assert specs_from_dict(doc) == specs

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            SLOSpec.from_dict({"name": "x", "kind": "ratio",
                               "target": 0.9, "good": "g", "total": "t",
                               "objective": "typo"})

    def test_specs_from_dict_needs_slos_list(self):
        with pytest.raises(ValueError):
            specs_from_dict({})
        with pytest.raises(ValueError):
            specs_from_dict({"slos": []})


class TestGoodBelowThreshold:
    def row(self, buckets):
        return {"buckets": buckets}

    def test_whole_buckets_below_threshold_count_fully(self):
        row = self.row([["1.0", 4], ["2.0", 2], ["+Inf", 1]])
        assert _good_below_threshold(row, 2.0) == pytest.approx(6.0)

    def test_interpolates_inside_containing_bucket(self):
        row = self.row([["1.0", 0], ["3.0", 4], ["+Inf", 0]])
        # threshold 2.0 sits halfway through (1.0, 3.0] -> half the delta
        assert _good_below_threshold(row, 2.0) == pytest.approx(2.0)

    def test_overflow_bucket_is_never_good(self):
        row = self.row([["1.0", 1], ["+Inf", 5]])
        assert _good_below_threshold(row, 100.0) == pytest.approx(1.0)


class TestBudgetAccounting:
    def test_all_good_consumes_nothing(self):
        windows = [counter_window(i, {"true": 10}) for i in range(5)]
        result = evaluate_slo(RATIO, windows)
        assert result.total == 50
        assert result.budget_consumed == 0.0
        assert not result.exhausted
        assert result.compliance == 1.0
        assert result.minutes_lost == 0.0

    def test_budget_math(self):
        # 100 events, target 0.9 -> 10 allowed bad; 5 bad = half consumed
        windows = [counter_window(0, {"true": 95, "false": 5})]
        result = evaluate_slo(RATIO, windows)
        assert result.allowed_bad == pytest.approx(10.0)
        assert result.budget_consumed == pytest.approx(0.5)
        assert result.budget_remaining == pytest.approx(0.5)
        assert not result.exhausted

    def test_exhaustion_and_minutes_lost(self):
        windows = [counter_window(0, {"true": 5, "false": 5}),
                   counter_window(1, {"true": 10})]
        result = evaluate_slo(RATIO, windows)
        assert result.exhausted
        # only the first (breached) window contributes lost minutes
        assert result.minutes_lost == pytest.approx(1.0)
        assert result.breached_windows == 1

    def test_no_events_is_vacuously_healthy(self):
        result = evaluate_slo(RATIO, [counter_window(0, {})])
        assert result.total == 0
        assert result.compliance == 1.0
        assert not result.exhausted

    def test_latency_objective_counts_interpolated_good(self):
        windows = [latency_window(0, [["1.0", 8], ["+Inf", 2]], 10, 12.0,
                                  exemplars=["t9"])]
        result = evaluate_slo(LATENCY, windows)
        assert result.good == pytest.approx(8.0)
        assert result.bad == pytest.approx(2.0)
        assert result.verdicts[0].breached
        assert result.breached_exemplars() == ["t9"]


class TestBurnAlerts:
    def test_fast_burn_fires_at_window_end(self):
        # burn = (bad/total)/0.1 ; 3 bad of 10 -> burn 3.0 ; fast at 2.0
        spec = SLOSpec(name="s", kind="ratio", target=0.9,
                       good="reqs_total", good_labels={"ok": "true"},
                       total="reqs_total", fast_burn=2.0, slow_burn=99.0)
        windows = [counter_window(0, {"true": 10}),
                   counter_window(1, {"true": 7, "false": 3})]
        result = evaluate_slo(spec, windows)
        assert [a.severity for a in result.alerts] == ["fast"]
        alert = result.alerts[0]
        assert alert.window_index == 1
        assert alert.fired_at == pytest.approx(120.0)
        assert alert.burn_rate == pytest.approx(3.0)

    def test_slow_burn_aggregates_trailing_windows(self):
        # each window burns at 2.0 (< fast 14.4); the 2-window trailing
        # aggregate also burns at 2.0 >= slow_burn -> ticket alert
        spec = SLOSpec(name="s", kind="ratio", target=0.9,
                       good="reqs_total", good_labels={"ok": "true"},
                       total="reqs_total", slow_burn=2.0, slow_windows=2)
        windows = [counter_window(i, {"true": 8, "false": 2})
                   for i in range(3)]
        result = evaluate_slo(spec, windows)
        slow = [a for a in result.alerts if a.severity == "slow"]
        assert [a.window_index for a in slow] == [0, 1, 2]

    def test_deterministic_alert_stream(self):
        windows = [counter_window(i, {"true": 5, "false": 5})
                   for i in range(4)]
        a = evaluate_slo(RATIO, windows)
        b = evaluate_slo(RATIO, windows)
        assert [x.to_dict() for x in a.alerts] == \
               [x.to_dict() for x in b.alerts]


class TestHealthReport:
    def sampler_with_history(self):
        from repro.obs import MetricsRegistry
        from repro.sim.kernel import Simulator
        sim = Simulator()
        reg = MetricsRegistry(clock=lambda: sim.now)
        sampler = MetricsSampler(sim, reg, window=60.0).start()
        reg.count("reqs_total", n=19, ok="true")
        reg.count("reqs_total", n=1, ok="false")
        sim.run_until(120.0)
        return sampler

    def test_report_shape_and_byte_stability(self):
        spec = SLOSpec(name="success", kind="ratio", target=0.9,
                       good="reqs_total", good_labels={"ok": "true"},
                       total="reqs_total")
        report = build_health_report(self.sampler_with_history(), [spec])
        assert report["sampler"]["windows"] == 2
        assert report["healthy"]
        assert report["slos"][0]["spec"]["name"] == "success"
        text = health_report_to_json(report)
        report2 = build_health_report(self.sampler_with_history(), [spec])
        assert health_report_to_json(report2) == text
        assert json.loads(text) == report

    def test_render_mentions_key_sections(self):
        spec = SLOSpec(name="success", kind="ratio", target=0.9,
                       good="reqs_total", good_labels={"ok": "true"},
                       total="reqs_total")
        text = render_health_report(
            build_health_report(self.sampler_with_history(), [spec]))
        assert "slo success" in text
        assert "overall: HEALTHY" in text
        assert "budget" in text


class TestMetasystemWiring:
    def test_sampler_knob_arms_and_is_exclusive(self):
        from repro.errors import LegionError
        from repro.metasystem import Metasystem
        meta = Metasystem(seed=0, sampler=15.0)
        assert meta.sampler is not None
        assert meta.sampler.window == 15.0
        with pytest.raises(LegionError):
            meta.start_sampler()

    def test_sampler_off_by_default_and_report_requires_it(self):
        from repro.errors import LegionError
        from repro.metasystem import Metasystem
        meta = Metasystem(seed=0)
        assert meta.sampler is None
        with pytest.raises(LegionError):
            meta.slo_health_report()

    def test_testbed_spec_arms_sampler(self):
        from repro.workload.testbed import TestbedSpec, build_testbed
        meta = build_testbed(TestbedSpec(sampler_window=20.0))
        assert meta.sampler is not None
        meta.sim.run_until(60.0)
        report = meta.slo_health_report(include_windows=False)
        assert report["healthy"]

    def test_campaign_slo_summary_is_conditional(self):
        from repro.chaos.campaign import run_campaign
        with_slo = run_campaign(profile="hosts", chaos_seed=1, seed=0,
                                waves=3, include_events=False,
                                sampler_window=30.0)
        assert with_slo.slo and "slo" in with_slo.to_dict()
        assert with_slo.slo["windows"] > 0
        without = run_campaign(profile="hosts", chaos_seed=1, seed=0,
                               waves=3, include_events=False)
        assert not without.slo
        assert "slo" not in without.to_dict()

    def test_guardrails_comparison_gains_slo_benefit(self):
        from repro.guardrails.compare import run_comparison
        cmp = run_comparison(profile="hosts", chaos_seed=1, seed=0,
                             waves=4, sampler_window=30.0)
        assert cmp.has_slo
        doc = cmp.to_dict()
        assert "slo_minutes_saved" in doc["benefit"]
        assert "slo minutes lost" in cmp.summary()
        plain = run_comparison(profile="hosts", chaos_seed=1, seed=0,
                               waves=4)
        assert not plain.has_slo
        assert "slo_minutes_saved" not in plain.to_dict()["benefit"]


class TestDegenerateTraces:
    """Empty, single-span, and zero-duration traces flow through every
    trace analysis without crashing or corrupting output."""

    def make_span(self, **overrides):
        from repro.obs import Span
        fields = dict(trace_id="t1", span_id="s1", parent_id=None,
                      name="solo", start=5.0, end=5.0, status="ok")
        fields.update(overrides)
        return Span(**fields)

    def test_empty_span_list(self):
        from repro.obs import (
            aggregate_step_latencies,
            chrome_trace,
            critical_path,
            trace_summary,
            validate_chrome_trace,
        )
        assert critical_path([]) == []
        assert trace_summary([]) == []
        assert aggregate_step_latencies([]) == []
        doc = chrome_trace([])
        assert doc["traceEvents"] == []
        assert validate_chrome_trace(doc) == []

    def test_single_zero_duration_span(self):
        from repro.obs import (
            aggregate_step_latencies,
            chrome_trace,
            critical_path,
            trace_summary,
            validate_chrome_trace,
        )
        span = self.make_span()
        assert [s.span_id for s in critical_path([span])] == ["s1"]
        summary = trace_summary([span])
        assert summary[0]["duration"] == 0.0
        assert summary[0]["spans"] == 1
        rows = aggregate_step_latencies([span])
        assert rows[0]["count"] == 1
        assert rows[0]["mean"] == 0.0
        doc = chrome_trace([span])
        assert validate_chrome_trace(doc) == []

    def test_zero_duration_children(self):
        from repro.obs import (
            aggregate_step_latencies,
            chrome_trace,
            trace_summary,
            validate_chrome_trace,
        )
        root = self.make_span(span_id="root", name="placement",
                              start=0.0, end=2.0)
        kids = [self.make_span(span_id=f"k{i}", parent_id="root",
                               name="step", start=1.0, end=1.0)
                for i in range(3)]
        spans = [root] + kids
        summary = trace_summary(spans)
        assert summary[0]["spans"] == 4
        rows = {r["step"]: r for r in aggregate_step_latencies(spans)}
        assert rows["step"]["count"] == 3
        assert rows["step"]["max"] == 0.0
        assert rows["placement"]["self"] == pytest.approx(2.0)
        assert validate_chrome_trace(chrome_trace(spans)) == []

    def test_open_span_renders_without_end(self):
        from repro.obs import aggregate_step_latencies, trace_summary
        span = self.make_span(end=None, status="unset")
        assert trace_summary([span])[0]["duration"] == 0.0
        assert aggregate_step_latencies([span])[0]["max"] == 0.0
