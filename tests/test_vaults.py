"""Tests for Vault Objects and OPR storage."""

import pytest

from repro.errors import (
    InsufficientResourcesError,
    UnknownObjectError,
    VaultIncompatibleError,
)
from repro.naming import LOID
from repro.objects import LegionObject
from repro.vaults import VaultObject


def make_opr(name="o1", size=None):
    obj = LegionObject(LOID(("d", "obj", name)), LOID(("d", "class", "C")))
    opr = obj.make_opr(now=1.0)
    if size is not None:
        opr.size_bytes = size
    return obj, opr


class TestStorage:
    def test_store_retrieve_round_trip(self, meta):
        vault = meta.vaults[0]
        _obj, opr = make_opr()
        vault.store_opr(opr)
        assert vault.has_opr(opr.loid)
        got = vault.retrieve_opr(opr.loid)
        assert got.loid == opr.loid
        assert got.version == opr.version
        assert vault.stores == 1 and vault.retrievals == 1

    def test_retrieve_returns_copy(self, meta):
        vault = meta.vaults[0]
        obj = LegionObject(LOID(("d", "obj", "s")))
        obj.attributes.set("x", 1)
        opr = obj.make_opr()
        opr.state["key"] = [1, 2]
        vault.store_opr(opr)
        got = vault.retrieve_opr(opr.loid)
        got.state["key"].append(3)
        assert vault.retrieve_opr(opr.loid).state["key"] == [1, 2]

    def test_retrieve_unknown_raises(self, meta):
        with pytest.raises(UnknownObjectError):
            meta.vaults[0].retrieve_opr(LOID(("d", "obj", "missing")))

    def test_newer_version_overwrites(self, meta):
        vault = meta.vaults[0]
        obj, opr1 = make_opr()
        vault.store_opr(opr1)
        opr2 = obj.make_opr(now=2.0)
        vault.store_opr(opr2)
        assert vault.retrieve_opr(obj.loid).version == 2
        assert vault.opr_count() == 1

    def test_stale_version_rejected(self, meta):
        vault = meta.vaults[0]
        obj, _ = make_opr()
        opr1 = obj.make_opr()
        opr2 = obj.make_opr()
        vault.store_opr(opr2)
        with pytest.raises(VaultIncompatibleError):
            vault.store_opr(opr1)

    def test_capacity_enforced(self):
        from repro.net import NetLocation
        vault = VaultObject(LOID(("d", "vault", "small")),
                            NetLocation("d", "v"), capacity_bytes=100.0)
        _, opr = make_opr(size=80)
        vault.store_opr(opr)
        _, big = make_opr("o2", size=50)
        with pytest.raises(InsufficientResourcesError):
            vault.store_opr(big)
        assert vault.free_bytes == pytest.approx(20.0)

    def test_delete(self, meta):
        vault = meta.vaults[0]
        _, opr = make_opr()
        vault.store_opr(opr)
        vault.delete_opr(opr.loid)
        assert not vault.has_opr(opr.loid)
        with pytest.raises(UnknownObjectError):
            vault.delete_opr(opr.loid)

    def test_storage_cost(self):
        from repro.net import NetLocation
        vault = VaultObject(LOID(("d", "vault", "pay")),
                            NetLocation("d", "v"), cost_per_byte=0.01)
        assert vault.storage_cost(1000) == pytest.approx(10.0)


class TestCompatibility:
    def test_compatible_with_same_domain_host(self, meta):
        vault = meta.vaults[0]
        host = meta.hosts[0]
        assert vault.compatible_with(host)

    def test_incompatible_when_host_does_not_list_vault(self, meta):
        vault = meta.vaults[0]
        host = meta.hosts[0]
        host._compatible_vaults.remove(vault.loid)
        assert not vault.compatible_with(host)

    def test_domain_restriction(self, multi):
        host = multi.hosts[0]
        restricted = multi.add_vault("dom1", name="locked",
                                     allowed_domains=["dom1"])
        # host is in dom0 — even if it listed the vault, policy refuses
        host.add_compatible_vault(restricted.loid)
        assert not restricted.compatible_with(host)
        dom1_host = [h for h in multi.hosts if h.domain == "dom1"][0]
        assert restricted.compatible_with(dom1_host)

    def test_attributes_exported(self, meta):
        vault = meta.vaults[0]
        assert vault.attributes.get("vault_domain") == "uva"
        assert vault.attributes.get("vault_capacity_bytes") > 0
