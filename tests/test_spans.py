"""Causal span tracing: SpanTracer, exports, and the Metasystem wiring.

The tentpole of the observability layer: per-request span trees over the
13-step placement protocol, with deterministic IDs, a critical-path
analysis, and Chrome trace-event export (docs/observability.md)."""

import json

import pytest

from repro import Implementation, MachineSpec, Metasystem, ObjectClassRequest
from repro.obs import (
    NULL_SPANS,
    NullSpanTracer,
    SpanTracer,
    TraceContext,
    build_snapshot,
    chrome_trace,
    chrome_trace_json,
    critical_path,
    render_critical_path_report,
    render_report,
    render_step_table,
    render_tree,
    spans_to_jsonl,
    trace_summary,
    validate_chrome_trace,
)
from repro.obs.trace_export import children_of, dominant_step, self_time
from repro.sim.tracing import NullTracer, Tracer
from repro.workload import implementations_for_all_platforms


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def tracer(clock):
    return SpanTracer(clock)


# ---------------------------------------------------------------------------
# SpanTracer unit behaviour
# ---------------------------------------------------------------------------
class TestSpanTracer:
    def test_ids_are_deterministic_sequence_counters(self, tracer):
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        with tracer.span("c"):
            pass
        assert [s.trace_id for s in tracer.spans] == [
            "t000001", "t000001", "t000002"]
        assert [s.span_id for s in tracer.spans] == [
            "s000001", "s000002", "s000003"]

    def test_nesting_and_timestamps(self, tracer, clock):
        with tracer.span("root", kind="test") as root:
            clock.now = 1.0
            with tracer.span("child") as child:
                clock.now = 3.0
            clock.now = 4.0
        assert child.parent_id == root.span_id
        assert child.trace_id == root.trace_id
        assert (root.start, root.end) == (0.0, 4.0)
        assert (child.start, child.end) == (1.0, 3.0)
        assert child.duration == 2.0
        assert root.status == "ok" and child.status == "ok"
        assert root.attributes == {"kind": "test"}
        assert tracer.current_context() is None  # stack fully unwound

    def test_exception_marks_span_error_and_propagates(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        inner, = tracer.find("inner")
        outer, = tracer.find("outer")
        assert inner.status == "error"
        assert inner.attributes["error"] == "ValueError: boom"
        assert outer.status == "error"
        assert tracer.current_context() is None

    def test_span_if_active_is_quiet_without_a_root(self, tracer):
        with tracer.span_if_active("orphan") as span:
            span.set_attribute("ignored", 1)
            span.set_status("error")
        assert len(tracer) == 0
        # ... but records normally inside an open trace
        with tracer.span("root"):
            with tracer.span_if_active("child"):
                pass
        assert [s.name for s in tracer.spans] == ["root", "child"]

    def test_activate_parents_under_carried_context(self, tracer):
        with tracer.span("sender") as sender:
            carried = sender.context
        assert tracer.current_context() is None
        with tracer.activate(carried):
            with tracer.span_if_active("receiver"):
                pass
        receiver, = tracer.find("receiver")
        assert receiver.parent_id == sender.span_id
        assert receiver.trace_id == sender.trace_id
        assert tracer.current_context() is None

    def test_activate_none_is_a_noop(self, tracer):
        with tracer.activate(None):
            assert tracer.current_context() is None

    def test_event_attaches_to_innermost_open_span(self, tracer, clock):
        tracer.event("net", "dropped")  # no open span: dropped silently
        with tracer.span("root"):
            with tracer.span("inner") as inner:
                clock.now = 2.0
                tracer.event("enactor", "reserved", host="ws0")
        assert inner.events == [(2.0, "enactor", "reserved",
                                 {"host": "ws0"})]

    def test_clear_resets_spans_and_context(self, tracer):
        with tracer.span("a"):
            pass
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.current_context() is None


class TestNullSpanTracer:
    def test_records_nothing(self):
        null = NullSpanTracer()
        with null.span("root") as span:
            span.set_attribute("k", 1)
            span.set_status("error")
            with null.span_if_active("child"):
                pass
            with null.activate(TraceContext("t1", "s1")):
                pass
        null.event("cat", "ev")
        assert len(null.spans) == 0
        assert not null.enabled
        assert null.current_trace_id is None

    def test_null_span_is_inert(self):
        with NULL_SPANS.span("x") as span:
            span.set_attribute("k", "v")
            span.add_event(0.0, "c", "e")
        assert span.attributes == {}
        assert span.events == []
        assert span.end is None  # the transport's stretch guard relies
        # on a null span never looking "closed"


# ---------------------------------------------------------------------------
# Metasystem wiring: the tracing knob, the bridge, exemplars
# ---------------------------------------------------------------------------
def _tiny_meta(**kwargs):
    m = Metasystem(seed=11, **kwargs)
    m.add_domain("d0")
    for i in range(2):
        m.add_unix_host(f"h{i}", "d0",
                        MachineSpec(arch="sparc", os_name="SunOS"),
                        slots=4)
    m.add_vault("d0")
    return m


class TestTracingKnob:
    def test_spans_mode_is_default_and_fully_wired(self):
        m = _tiny_meta()
        assert isinstance(m.spans, SpanTracer)
        assert not isinstance(m.spans, NullSpanTracer)
        assert isinstance(m.tracer, Tracer)
        assert m.tracer.span_sink is m.spans
        assert m.transport.spans is m.spans
        assert m.collection.spans is m.spans
        assert all(h.spans is m.spans for h in m.hosts)
        assert all(v.spans is m.spans for v in m.vaults)

    def test_flat_mode_keeps_tracer_drops_spans(self):
        m = _tiny_meta(tracing="flat")
        assert isinstance(m.tracer, Tracer)
        assert isinstance(m.spans, NullSpanTracer)

    def test_off_mode_disables_both(self):
        m = _tiny_meta(tracing="off")
        assert isinstance(m.tracer, NullTracer)
        assert isinstance(m.spans, NullSpanTracer)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            Metasystem(seed=1, tracing="verbose")

    def test_disabled_modes_still_place_objects(self):
        for mode in ("flat", "off"):
            m = _tiny_meta(tracing=mode)
            app = m.create_class(
                "A", [Implementation("sparc", "SunOS")], work_units=10.0)
            outcome = m.make_scheduler("random").run(
                [ObjectClassRequest(app, 1)])
            assert outcome.ok
            assert len(m.spans) == 0


class TestTracerBridge:
    def test_emit_during_open_span_becomes_span_event(self):
        m = _tiny_meta()
        with m.spans.span("root") as root:
            m.tracer.emit("custom", "ping", n=1)
        assert any(cat == "custom" and ev == "ping"
                   for _, cat, ev, _ in root.events)
        # the flat record was still recorded normally
        assert m.tracer.count("custom") == 1

    def test_emit_outside_spans_only_hits_flat_tracer(self):
        m = _tiny_meta()
        m.tracer.emit("custom", "ping")
        assert m.tracer.count("custom") == 1
        assert len(m.spans) == 0


class TestExemplars:
    def test_histogram_exemplar_records_active_trace_id(self):
        m = _tiny_meta()
        app = m.create_class(
            "A", [Implementation("sparc", "SunOS")], work_units=10.0)
        outcome = m.make_scheduler("random").run(
            [ObjectClassRequest(app, 1)])
        assert outcome.ok
        snapshot = build_snapshot(m.metrics)
        step = next(metric for metric in snapshot["metrics"]
                    if metric["name"] == "enactor_step_seconds")
        exemplars = [e for series in step["series"]
                     for e in series["exemplars"]]
        assert exemplars  # negotiation ran under the placement trace
        assert all(trace_id == "t000001"
                   for _bound, _value, trace_id in exemplars)
        # and the human report surfaces the trace id
        assert "t000001" in render_report(snapshot)

    def test_no_trace_open_means_no_exemplar(self):
        m = _tiny_meta()
        m.metrics.observe("loose_seconds", 0.25)
        snapshot = build_snapshot(m.metrics)
        loose = next(metric for metric in snapshot["metrics"]
                     if metric["name"] == "loose_seconds")
        assert all(trace_id is None
                   for series in loose["series"]
                   for _b, _v, trace_id in series["exemplars"])


# ---------------------------------------------------------------------------
# End-to-end placement trace shape
# ---------------------------------------------------------------------------
@pytest.fixture
def placed_meta():
    m = _tiny_meta()
    app = m.create_class(
        "A", [Implementation("sparc", "SunOS")], work_units=10.0)
    outcome = m.make_scheduler("random").run([ObjectClassRequest(app, 2)])
    assert outcome.ok
    return m


class TestPlacementTrace:
    def test_protocol_steps_appear_as_named_children(self, placed_meta):
        spans = placed_meta.spans
        root, = spans.trace_roots()
        assert root.name == "placement"
        assert root.status == "ok"
        assert root.attributes["ok"] is True
        names = {s.name for s in spans.spans}
        for expected in ("scheduler.compute", "collection.query",
                         "collection.serve", "enactor.negotiate",
                         "enactor.master", "enactor.reserve",
                         "host.reserve", "enactor.enact", "host.start"):
            assert expected in names, f"missing span {expected}"
        # every span belongs to the single placement trace
        assert {s.trace_id for s in spans.spans} == {root.trace_id}

    def test_parentage_follows_the_protocol(self, placed_meta):
        spans = placed_meta.spans
        by_id = {s.span_id: s for s in spans.spans}
        root, = spans.trace_roots()
        neg, = spans.find("enactor.negotiate")
        assert by_id[neg.parent_id].name == "placement"
        assert neg.attributes["step"] == "4-6"
        for grant in spans.find("host.reserve"):
            rpc = by_id[grant.parent_id]
            assert rpc.name.startswith("rpc:make_reservation")
            assert by_id[rpc.parent_id].name == "enactor.reserve"
        for start in spans.find("host.start"):
            assert by_id[start.parent_id].name == "rpc:create_instance"
        enact, = spans.find("enactor.enact")
        assert enact.attributes["step"] == "7-11"
        assert root.end is not None
        assert all(s.end is not None for s in spans.spans)

    def test_summary_and_reports_render(self, placed_meta):
        spans = placed_meta.spans.spans
        summary, = trace_summary(spans)
        assert summary["root"] == "placement"
        assert summary["spans"] == len(spans)
        assert summary["dominant_step"]
        tree = render_tree(spans)
        assert "placement" in tree and "enactor.negotiate" in tree
        table = render_step_table(spans)
        assert "enactor.reserve" in table
        report = render_critical_path_report(spans)
        assert "dominant step overall" in report


# ---------------------------------------------------------------------------
# critical path on a synthetic tree
# ---------------------------------------------------------------------------
def _synthetic_trace():
    clock = FakeClock()
    tracer = SpanTracer(clock)
    with tracer.span("root"):
        with tracer.span("fast"):
            clock.now = 1.0
        with tracer.span("slow"):
            clock.now = 2.0
            with tracer.span("leaf"):
                clock.now = 9.0
            clock.now = 10.0
    return tracer.spans


class TestCriticalPath:
    def test_descends_into_latest_ending_child(self):
        spans = _synthetic_trace()
        assert [s.name for s in critical_path(spans)] == [
            "root", "slow", "leaf"]

    def test_dominant_step_is_max_self_time_on_path(self):
        spans = _synthetic_trace()
        # leaf holds 7s of self time; slow only 1s; root 1s
        assert dominant_step(spans).name == "leaf"
        children = children_of(spans)
        leaf, = [s for s in spans if s.name == "leaf"]
        assert self_time(leaf, children) == 7.0

    def test_empty_input(self):
        assert critical_path([]) == []
        assert dominant_step([]) is None


# ---------------------------------------------------------------------------
# Chrome trace-event and JSONL exports
# ---------------------------------------------------------------------------
class TestChromeExport:
    def test_export_is_valid_and_loadable(self, placed_meta):
        text = chrome_trace_json(placed_meta.spans.spans, indent=2)
        obj = json.loads(text)
        assert validate_chrome_trace(obj) == []
        assert obj["displayTimeUnit"] == "ms"
        events = obj["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(placed_meta.spans.spans)
        meta_events = [e for e in events if e["ph"] == "M"]
        assert meta_events[0]["args"]["name"] == "placement t000001"
        # bridged flat-tracer records ride along as instant events
        assert any(e["ph"] == "i" for e in events)

    def test_span_args_carry_identity_and_status(self, placed_meta):
        obj = chrome_trace(placed_meta.spans.spans)
        root_event = next(e for e in obj["traceEvents"]
                          if e.get("name") == "placement")
        assert root_event["args"]["span_id"] == "s000001"
        assert root_event["args"]["parent_id"] == ""
        assert root_event["args"]["status"] == "ok"
        assert root_event["ts"] >= 0 and root_event["dur"] >= 0

    def test_partially_overlapping_siblings_get_distinct_lanes(self):
        # two siblings overlapping without containment cannot share a
        # Chrome thread row (complete events on one row must nest)
        from repro.obs import Span
        spans = [
            Span("t000001", "s000001", None, "root", 0.0, 10.0, seq=1),
            Span("t000001", "s000002", "s000001", "a", 0.0, 5.0, seq=2),
            Span("t000001", "s000003", "s000001", "b", 3.0, 8.0, seq=3),
        ]
        obj = chrome_trace(spans)
        lanes = {e["name"]: e["tid"] for e in obj["traceEvents"]
                 if e["ph"] == "X"}
        assert lanes["a"] != lanes["b"]
        # containment still shares the root's lane
        assert lanes["a"] == lanes["root"]

    def test_validator_flags_malformed_traces(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []
        problems = validate_chrome_trace({"traceEvents": [
            {"pid": 1},                                     # missing ph
            {"ph": "X", "name": "a", "pid": 1, "tid": 1,
             "ts": 0.0},                                    # missing dur
            {"ph": "X", "name": "b", "pid": 1, "tid": 1,
             "ts": 0.0, "dur": -1.0},                       # negative dur
            {"ph": "i", "name": "c", "pid": 1, "tid": 1,
             "ts": "soon"},                                 # ts not number
        ]})
        assert len(problems) == 4

    def test_jsonl_round_trips(self, placed_meta):
        spans = placed_meta.spans.spans
        lines = spans_to_jsonl(spans).splitlines()
        assert len(lines) == len(spans)
        records = [json.loads(line) for line in lines]
        assert [r["span_id"] for r in records] == [
            s.span_id for s in spans]
        assert records[0]["name"] == "placement"
        assert all(r["status"] == "ok" or r["status"] == "error"
                   for r in records)
        assert spans_to_jsonl([]) == ""
