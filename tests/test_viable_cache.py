"""The Scheduler's incremental viable-hosts cache: hit/miss economy,
every invalidation edge, and placement equivalence with caching off.

The cache (``Scheduler.viable_hosts``) keys on query text and validates
entries against the Collection's ``data_version`` token, so the suite pins
the invalidation surface one edge at a time: record updates, membership
changes, health quarantine/recovery, and federation-shard outages must
each roll the token; anything that does *not* change query results (pure
repeat lookups) must be served from cache without touching the
Collection.  The closing tests pin the safety property that justifies
shipping the cache at all — cached and uncached runs place byte-identical
schedules, including under a seeded chaos campaign.
"""

import pytest

from repro import Implementation, MachineSpec, Metasystem, ObjectClassRequest
from repro.chaos import run_campaign
from repro.workload.testbed import TestbedSpec, build_testbed


@pytest.fixture
def sched(meta, app_class):
    return meta.make_scheduler("random")


def _update(meta, host, attributes):
    meta.collection.update_entry(
        host.loid, attributes, meta._host_credentials[host.loid])


class TestCacheEconomy:
    def test_repeat_lookup_served_from_cache(self, meta, app_class, sched):
        first = sched.viable_hosts(app_class)
        second = sched.viable_hosts(app_class)
        assert [r.member for r in first] == [r.member for r in second]
        assert sched.viable_cache_misses == 1
        assert sched.viable_cache_hits == 1
        assert sched.collection_queries == 1  # the hit cost nothing

    def test_cached_list_is_a_copy(self, meta, app_class, sched):
        first = sched.viable_hosts(app_class)
        first.clear()
        assert len(sched.viable_hosts(app_class)) == 4

    def test_distinct_queries_cache_separately(self, meta, app_class,
                                               sched):
        sched.viable_hosts(app_class)
        sched.viable_hosts(app_class, extra_query="$host_load < 99")
        assert sched.viable_cache_misses == 2
        sched.viable_hosts(app_class)
        assert sched.viable_cache_hits == 1

    def test_disabled_cache_pins_paper_lookup_economy(self, meta,
                                                      app_class):
        sched = meta.make_scheduler("random", viable_cache=False)
        for _ in range(3):
            sched.viable_hosts(app_class)
        assert sched.collection_queries == 3
        assert sched.viable_cache_hits == 0
        assert sched.viable_cache_misses == 0


class TestInvalidation:
    def test_record_update_invalidates(self, meta, app_class, sched):
        assert len(sched.viable_hosts(app_class)) == 4
        _update(meta, meta.hosts[0], {"host_up": False})
        after = sched.viable_hosts(app_class)
        assert sched.viable_cache_misses == 2
        assert len(after) == 3
        assert meta.hosts[0].loid not in {r.member for r in after}

    def test_member_leave_invalidates(self, meta, app_class, sched):
        sched.viable_hosts(app_class)
        host = meta.hosts[1]
        meta.collection.leave(host.loid,
                              meta._host_credentials[host.loid])
        after = sched.viable_hosts(app_class)
        assert sched.viable_cache_misses == 2
        assert host.loid not in {r.member for r in after}

    def test_quarantine_and_recovery_invalidate(self, meta, app_class,
                                                sched):
        sched.viable_hosts(app_class)
        victim = meta.hosts[2]
        # the HealthMonitor's quarantine marker: viable_hosts must drop
        # the host the moment the record says DOWN...
        _update(meta, victim, {"host_health": "down"})
        during = sched.viable_hosts(app_class)
        assert victim.loid not in {r.member for r in during}
        # ...and re-admit it on recovery, each transition a fresh query
        _update(meta, victim, {"host_health": "live"})
        after = sched.viable_hosts(app_class)
        assert victim.loid in {r.member for r in after}
        assert sched.viable_cache_misses == 3
        assert sched.viable_cache_hits == 0

    def test_federation_shard_outage_invalidates(self):
        meta = build_testbed(TestbedSpec(
            seed=2, n_domains=2, hosts_per_domain=4, platform_mix=1,
            background_load_mean=0.0, federation_shards=3))
        app = meta.create_class(
            "App", [Implementation("sparc", "SunOS"),
                    Implementation("x86", "Linux")])
        sched = meta.make_scheduler("random")
        before = sched.viable_hosts(app)
        assert sched.viable_cache_misses == 1
        shard_id = meta.collection.shards[0].shard_id
        meta.collection.set_shard_down(shard_id)
        sched.viable_hosts(app)
        assert sched.viable_cache_misses == 2  # outage rolled the token
        meta.collection.set_shard_down(shard_id, down=False)
        healed = sched.viable_hosts(app)
        assert sched.viable_cache_misses == 3  # so did the recovery
        assert ([r.member for r in healed]
                == [r.member for r in before])


class TestPlacementEquivalence:
    def _created(self, viable_cache):
        meta = Metasystem(seed=11)
        meta.add_domain("uva")
        for i in range(4):
            meta.add_unix_host(f"ws{i}", "uva",
                               MachineSpec(arch="sparc", os_name="SunOS"),
                               slots=4)
        meta.add_vault("uva", name="uva-vault")
        app = meta.create_class(
            "App", [Implementation("sparc", "SunOS")], work_units=50.0)
        sched = meta.make_scheduler("irs", viable_cache=viable_cache)
        created = []
        for _ in range(3):  # back-to-back: prime cache territory
            outcome = sched.run([ObjectClassRequest(app, count=2)])
            assert outcome.ok
            created.append([str(l) for l in outcome.created])
        return created, sched

    def test_back_to_back_runs_identical_with_cache(self):
        cached, cached_sched = self._created(viable_cache=True)
        uncached, uncached_sched = self._created(viable_cache=False)
        assert cached == uncached
        assert cached_sched.viable_cache_hits >= 1
        assert uncached_sched.viable_cache_hits == 0
        assert (cached_sched.collection_queries
                < uncached_sched.collection_queries)

    def _campaign(self, viable_cache):
        # prebuilt testbed with the Collection left *unlocated*: queries
        # are then free of transport latency, so caching cannot shift
        # virtual time and any divergence would be a semantic cache bug
        meta = build_testbed(TestbedSpec(
            seed=4, n_domains=2, hosts_per_domain=4, platform_mix=2,
            background_load_mean=0.5))
        real = meta.make_scheduler
        meta.make_scheduler = (
            lambda kind="random", **kw:
            real(kind, viable_cache=viable_cache, **kw))
        return run_campaign(profile="hosts", chaos_seed=3, seed=4,
                            waves=4, per_wave=3, work=100.0,
                            wave_interval=60.0, include_events=False,
                            meta=meta)

    def test_chaos_campaign_placements_byte_identical(self):
        cached = self._campaign(viable_cache=True)
        uncached = self._campaign(viable_cache=False)
        assert cached.placements == uncached.placements
        assert cached.to_dict() == uncached.to_dict()
        assert cached.to_json() == uncached.to_json()
