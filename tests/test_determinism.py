"""Determinism regression: identical seeded runs, identical telemetry.

Two runs of the same seeded workload must produce byte-identical metrics
snapshots and equal trace counts — the property every experiment table
in benchmarks/ relies on, now pinned against regressions from new
instrumentation.  The scale snapshot at the bottom extends the guarantee
across *process boundaries* at metasystem scale (1000 hosts) with the
compiled-query and viable-hosts caches enabled.
"""

import hashlib
import os
import subprocess
import sys

from repro import Metasystem, ObjectClassRequest
from repro.obs import chrome_trace_json, json_to_snapshot, spans_to_jsonl
from repro.workload import (
    TestbedSpec,
    build_testbed,
    implementations_for_all_platforms,
    wait_for_completion,
)

#: every subsystem the tentpole instruments must show up in a real run
REQUIRED_FAMILIES = (
    "collection_queries_total",       # Collection query path
    "enactor_step_seconds",           # 13-step protocol latency
    "host_reservations_granted_total",  # reservations
    "transport_messages_total",       # transport
    "sim_events_processed",           # kernel events
)

TRACE_KEYS = ("net", "enactor", "collection", "host")


def _run_workload(seed: int):
    """One seeded end-to-end workload; returns (metrics json, counts,
    chrome trace json, span jsonl)."""
    meta = build_testbed(TestbedSpec(
        n_domains=2, hosts_per_domain=3, platform_mix=2,
        background_load_mean=0.4, seed=seed))
    app = meta.create_class("det-app",
                            implementations_for_all_platforms(),
                            work_units=120.0)
    created = []
    for kind in ("irs", "random"):
        outcome = meta.make_scheduler(kind).run(
            [ObjectClassRequest(app, count=3)])
        assert outcome.ok
        created.extend(outcome.created)
    wait_for_completion(meta, app, created)
    meta.advance(3600.0)
    counts = {key: meta.tracer.count(key) for key in TRACE_KEYS}
    return (meta.metrics.to_json(), counts,
            chrome_trace_json(meta.spans.spans),
            spans_to_jsonl(meta.spans.spans))


def _run_federated_workload(seed: int):
    """A federated run with gossip + query cache enabled; returns the
    telemetry exports that must be byte-identical across runs."""
    meta = build_testbed(TestbedSpec(
        n_domains=2, hosts_per_domain=3, platform_mix=2,
        background_load_mean=0.4, seed=seed,
        federation_shards=3, federation_replication=2,
        gossip_interval=45.0, federation_cache_ttl=30.0))
    app = meta.create_class("det-app",
                            implementations_for_all_platforms(),
                            work_units=120.0)
    outcome = meta.make_scheduler("irs").run(
        [ObjectClassRequest(app, count=3)])
    assert outcome.ok
    wait_for_completion(meta, app, outcome.created)
    meta.advance(600.0)
    gossip = (meta.gossip.rounds, meta.gossip.records_exchanged,
              meta.gossip.bytes_exchanged)
    return (meta.metrics.to_json(), gossip,
            chrome_trace_json(meta.spans.spans),
            spans_to_jsonl(meta.spans.spans))


# ---------------------------------------------------------------------------
# cross-process scale snapshot
# ---------------------------------------------------------------------------

#: pinned digest of the 1k-host scale run below.  If a change legitimately
#: alters placement or event accounting at scale, regenerate with
#:     PYTHONPATH=src python tests/test_determinism.py
#: and update this constant (the bench ledger BENCH_scale.json will need
#: regenerating too — see docs/architecture.md).
SCALE_SNAPSHOT = (
    "85f13c11b6ea02c72dbe29b95637356ee5f9f2ec16b966fc897ae3f32a760c1a")


def _scale_digest() -> str:
    """Digest of one seeded IRS run over a 1000-host testbed.

    Exercises the hot-path machinery this PR added — compiled query
    plans, the viable-hosts cache (the back-to-back second run must hit
    it), slotted records/events — and folds placements, kernel event
    counts, virtual time, and transport traffic into one value that any
    process on any run must reproduce exactly.
    """
    meta = build_testbed(TestbedSpec(
        n_domains=4, hosts_per_domain=250, platform_mix=3,
        background_load_mean=0.0, seed=100))
    app = meta.create_class("snap-app",
                            implementations_for_all_platforms(),
                            work_units=60.0)
    sched = meta.make_scheduler("irs")
    first = sched.run([ObjectClassRequest(app, count=8)])
    second = sched.run([ObjectClassRequest(app, count=8)])
    assert first.ok and second.ok
    assert sched.viable_cache_hits >= 1  # the burst ran on the cache
    meta.advance(120.0)
    payload = "|".join((
        ",".join(str(loid) for loid in first.created + second.created),
        str(meta.sim.events_processed),
        repr(meta.sim.now),
        str(meta.transport.messages_sent),
        str(meta.collection.plans_compiled),
        str(sched.viable_cache_hits),
    ))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class TestDeterminism:
    def test_identical_seeds_identical_snapshots(self):
        json_a, counts_a, chrome_a, jsonl_a = _run_workload(seed=1234)
        json_b, counts_b, chrome_b, jsonl_b = _run_workload(seed=1234)
        assert json_a == json_b  # byte-identical export
        assert counts_a == counts_b
        assert chrome_a == chrome_b  # byte-identical span exports too
        assert jsonl_a == jsonl_b

    def test_different_seeds_diverge(self):
        json_a, _, chrome_a, _ = _run_workload(seed=1)
        json_b, _, chrome_b, _ = _run_workload(seed=2)
        assert json_a != json_b
        assert chrome_a != chrome_b

    def test_federated_runs_identical(self):
        """Same seed ⇒ byte-identical telemetry with sharding, gossip,
        and the query cache all active."""
        json_a, gossip_a, chrome_a, jsonl_a = _run_federated_workload(77)
        json_b, gossip_b, chrome_b, jsonl_b = _run_federated_workload(77)
        assert json_a == json_b
        assert gossip_a == gossip_b
        assert chrome_a == chrome_b
        assert jsonl_a == jsonl_b
        # the federation actually did something in this workload
        assert gossip_a[0] > 0  # gossip rounds
        snapshot = json_to_snapshot(json_a)
        names = {m["name"] for m in snapshot["metrics"]}
        for family in ("federation_shard_queries_total",
                       "federation_gossip_rounds_total",
                       "federation_shard_members",
                       "federation_result_staleness_seconds"):
            assert family in names, family

    def test_snapshot_covers_required_families(self):
        text, _, _, _ = _run_workload(seed=7)
        snapshot = json_to_snapshot(text)
        names = {m["name"] for m in snapshot["metrics"]}
        missing = [f for f in REQUIRED_FAMILIES if f not in names]
        assert not missing, f"metric families missing: {missing}"
        # and the snapshot is non-trivial: some series actually moved
        assert any(
            s.get("value") or s.get("count")
            for m in snapshot["metrics"] for s in m["series"])


class TestCrossProcessScaleSnapshot:
    def test_pinned_digest_in_process(self):
        """The 1k-host run reproduces the committed digest (caches on)."""
        assert _scale_digest() == SCALE_SNAPSHOT

    def test_digest_stable_across_processes(self):
        """A fresh interpreter — different hash seed, import order, and
        allocator state — must still land on the pinned digest."""
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        src = os.path.join(root, "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, os.path.abspath(__file__)],
            capture_output=True, text=True, env=env, timeout=600)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == SCALE_SNAPSHOT


if __name__ == "__main__":
    print(_scale_digest())
