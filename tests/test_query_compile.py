"""Differential fuzz: compiled query plans vs the tree-walking evaluator.

The compiled closures in ``collection/query/compile.py`` carry specialized
fast paths (``$attr <op> scalar-literal`` in either operand order), so this
suite pins the one property the Collection relies on: **for every query and
every record, the plan and the tree walk agree** — same value from
``evaluate``, same boolean from ``matches``, and the same
``QueryEvaluationError`` when evaluation legitimately fails (bad regex,
unknown function actually reached).

Records are plain attribute dicts (exactly what both engines consume), with
names that only partially overlap the query's ``$attrs`` so missing-attribute
(UNDEFINED) paths are exercised constantly, and values spanning the loose
type-coercion rules: bools and ints and floats compare numerically, strings
compare exactly, lists match existentially, everything else is false.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collection.query import (
    UNDEFINED,
    And,
    Arith,
    Attr,
    Call,
    Compare,
    Literal,
    Not,
    Or,
    QueryFunctions,
    compile_query,
    evaluate,
    matches,
    parse,
)
from repro.errors import QueryEvaluationError

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

#: names the queries read; records draw from the same pool so any given
#: record defines some-but-rarely-all of what a query asks about
ATTRS = ("arch", "site", "load", "up", "mem", "tags", "loid")

_scalars = st.one_of(
    st.booleans(),
    st.integers(min_value=-100, max_value=100),
    st.floats(min_value=-100.0, max_value=100.0,
              allow_nan=False, allow_infinity=False),
    # a few regex-flavoured strings so match() sees real patterns and the
    # occasional bad one ("[" fails to compile -> both engines must raise)
    st.sampled_from(("sparc", "x86", "site1", "", "42", "^s", "a.b", "[")),
)

_values = st.one_of(_scalars, st.lists(_scalars, max_size=3))

records = st.dictionaries(st.sampled_from(ATTRS), _values,
                          max_size=len(ATTRS))

_leaf = st.one_of(
    st.builds(Attr, st.sampled_from(ATTRS)),
    st.builds(Literal, _scalars),
)

_COMPARE_OPS = ("==", "!=", "<", "<=", ">", ">=")
_ARITH_OPS = ("+", "-", "*", "/")

# the shape the fast paths specialize on, in both operand orders
_attr_lit_compare = st.one_of(
    st.builds(Compare, st.sampled_from(_COMPARE_OPS),
              st.builds(Attr, st.sampled_from(ATTRS)),
              st.builds(Literal, _scalars)),
    st.builds(Compare, st.sampled_from(_COMPARE_OPS),
              st.builds(Literal, _scalars),
              st.builds(Attr, st.sampled_from(ATTRS))),
)


def _compound(children):
    compare = st.builds(Compare, st.sampled_from(_COMPARE_OPS),
                        children, children)
    arith = st.builds(Arith, st.sampled_from(_ARITH_OPS),
                      children, children)
    calls = st.one_of(
        st.builds(lambda a: Call("defined", (a,)), children),
        st.builds(lambda a, b: Call("match", (a, b)), children, children),
        st.builds(lambda a, b: Call("contains", (a, b)), children, children),
        st.builds(lambda a, b, c: Call("oneof", (a, b, c)),
                  children, children, children),
    )
    logic = st.one_of(
        st.builds(Or, children, children),
        st.builds(And, children, children),
        st.builds(Not, children),
    )
    # weight toward the fast-path compare shape: that is where the
    # compiled engine actually diverges from a naive transcription
    return st.one_of(_attr_lit_compare, _attr_lit_compare,
                     compare, logic, arith, calls)


queries = st.recursive(_leaf, _compound, max_leaves=12)


# ---------------------------------------------------------------------------
# differential harness
# ---------------------------------------------------------------------------

def _outcome_tree(ast, record, fns):
    try:
        return ("value", evaluate(ast, record, fns))
    except QueryEvaluationError:
        return ("error", None)


def _outcome_plan(plan, record):
    try:
        return ("value", plan.evaluate(record))
    except QueryEvaluationError:
        return ("error", None)


def _same_value(a, b):
    if a is UNDEFINED or b is UNDEFINED:
        return a is b
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
    return type(a) is type(b) and a == b


def assert_engines_agree(ast, record, fns):
    plan = compile_query(ast, fns)
    tree = _outcome_tree(ast, record, fns)
    compiled = _outcome_plan(plan, record)
    assert tree[0] == compiled[0], (
        f"outcome kind diverged on {ast.unparse()!r} over {record!r}: "
        f"tree={tree[0]} compiled={compiled[0]}")
    if tree[0] == "value":
        assert _same_value(tree[1], compiled[1]), (
            f"value diverged on {ast.unparse()!r} over {record!r}: "
            f"tree={tree[1]!r} compiled={compiled[1]!r}")
        assert matches(ast, record, fns) == plan.matches(record)


# ---------------------------------------------------------------------------
# fuzz
# ---------------------------------------------------------------------------

class TestDifferentialFuzz:
    @given(queries, records)
    @settings(max_examples=300, deadline=None)
    def test_random_ast_agrees(self, ast, record):
        """Random ASTs over random records: identical values, booleans,
        and error behaviour from both engines."""
        assert_engines_agree(ast, record, QueryFunctions())

    @given(_attr_lit_compare, records)
    @settings(max_examples=200, deadline=None)
    def test_fast_path_compare_agrees(self, ast, record):
        """Concentrated fire on the specialized attr-vs-literal shape."""
        assert_engines_agree(ast, record, QueryFunctions())

    @given(records)
    @settings(max_examples=150, deadline=None)
    def test_parsed_query_texts_agree(self, record):
        """End-to-end through the parser: the queries real subsystems
        issue (scheduler viability, E19a) agree engine-to-engine."""
        texts = (
            '$arch == "sparc" and $site == "site1" and $load < 2',
            '$up == true and not ($mem <= 64)',
            '2 > $load or $arch != "x86"',
            '$load * 2 + 1 >= $mem / 4',
            'match($arch, "^s") or contains($tags, "gpu")',
            'defined($mem) and oneof($arch, "sparc", "x86")',
            '$loid == "host" or $tags == "gpu"',
        )
        fns = QueryFunctions()
        for text in texts:
            assert_engines_agree(parse(text), record, fns)


# ---------------------------------------------------------------------------
# deterministic edges
# ---------------------------------------------------------------------------

class TestEdgeSemantics:
    def test_missing_attribute_never_raises(self):
        plan = compile_query(parse('$ghost == 1 or $ghost < 2'))
        assert plan.evaluate({}) is False
        assert plan.matches({}) is False
        assert compile_query(parse('defined($ghost)')).evaluate({}) is False
        # UNDEFINED propagates through arithmetic into a false comparison
        assert compile_query(parse('$ghost + 1 == 1')).evaluate({}) is False

    def test_type_coercion_matches_tree_walk(self):
        fns = QueryFunctions()
        cases = [
            ('$x == 1', {"x": True}),       # bool coerces to number
            ('$x == 1', {"x": 1.0}),
            ('$x == 1', {"x": "1"}),        # cross-type: false, not error
            ('$x == "1"', {"x": 1}),
            ('$x < 2', {"x": True}),
            ('$x < "b"', {"x": "a"}),       # lexicographic strings
            ('$x < "b"', {"x": 1}),         # cross-type ordering: false
            ('$x == "x86"', {"x": ["sparc", "x86"]}),   # existential list
            ('$x < 2', {"x": [5, 1]}),
        ]
        for text, record in cases:
            assert_engines_agree(parse(text), record, fns)

    def test_flipped_literal_first_ordering(self):
        # "2 > $x" must behave exactly like "$x < 2"
        flipped = compile_query(parse('2 > $x'))
        straight = compile_query(parse('$x < 2'))
        for value in (1, 2, 3, 1.5, True, "1", [0, 9], None):
            record = {"x": value}
            assert flipped.evaluate(record) == straight.evaluate(record)
        assert flipped.evaluate({}) is False

    def test_match_argument_order_leniency(self):
        # footnote-5: with exactly one string literal, it is the regex
        # regardless of position — both of the paper's forms work
        rec = {"arch": "sparc"}
        for text in ('match("^sp", $arch)', 'match($arch, "^sp")'):
            plan = compile_query(parse(text))
            assert plan.evaluate(rec) is True
            assert plan.evaluate({"arch": "x86"}) is False
            assert plan.evaluate({}) is False
            assert evaluate(parse(text), rec) is True

    def test_unknown_function_short_circuit_protection(self):
        fns = QueryFunctions()
        guarded = parse('false and nope($x)')
        assert evaluate(guarded, {}, fns) is False
        assert compile_query(guarded, fns).evaluate({}) is False
        reached = parse('nope($x)')
        for run in (lambda: evaluate(reached, {}, fns),
                    lambda: compile_query(reached, fns).evaluate({})):
            try:
                run()
            except QueryEvaluationError:
                pass
            else:  # pragma: no cover - failure path
                raise AssertionError("unknown function did not raise")

    def test_late_function_registration_visible_to_plan(self):
        fns = QueryFunctions()
        plan = compile_query(parse('halved($mem) == 8'), fns)
        fns.register("halved", lambda args, record: args[0] / 2)
        assert plan.evaluate({"mem": 16}) is True
        assert plan.evaluate({"mem": 10}) is False

    def test_plan_metadata_footprint(self):
        plan = compile_query(parse('$arch == "sparc" and $load < 2'))
        assert plan.attr_names == ("arch", "load")
        assert plan.uses_loid is False
        assert plan.has_calls is False
        loidy = compile_query(parse('$loid == "x" or match($site, "s")'))
        assert loidy.uses_loid is True
        assert loidy.has_calls is True
