"""Tests for the Collection query grammar: lexer, parser, evaluator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collection.query import (
    And,
    Attr,
    Call,
    Compare,
    Literal,
    Not,
    Or,
    QueryFunctions,
    UNDEFINED,
    evaluate,
    matches,
    parse,
    tokenize,
)
from repro.errors import QueryEvaluationError, QuerySyntaxError


class TestLexer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize('$a == "x" and f(1.5)')]
        assert kinds == ["ATTR", "OP", "STRING", "AND", "IDENT", "LPAREN",
                         "NUMBER", "RPAREN", "EOF"]

    def test_attr_value(self):
        tok = tokenize("$host_os_name")[0]
        assert tok.kind == "ATTR" and tok.value == "host_os_name"

    def test_string_escapes(self):
        tok = tokenize(r'"say \"hi\""')[0]
        assert tok.value == 'say "hi"'

    def test_regex_escapes_pass_through(self):
        tok = tokenize(r'"5\..*"')[0]
        assert tok.value == "5\\..*"

    def test_single_quotes(self):
        assert tokenize("'abc'")[0].value == "abc"

    def test_numbers(self):
        values = [t.value for t in tokenize("1 2.5 -3 1e3 2.5e-2")[:-1]]
        assert values == [1, 2.5, -3, 1000.0, 0.025]
        assert isinstance(tokenize("7")[0].value, int)

    def test_keywords_case_insensitive(self):
        kinds = [t.kind for t in tokenize("AND Or noT True FALSE")[:-1]]
        assert kinds == ["AND", "OR", "NOT", "BOOL", "BOOL"]

    def test_single_equals_is_equality(self):
        assert tokenize("$a = 1")[1].value == "=="

    @pytest.mark.parametrize("bad", ["$", "$1abc", '"unterminated',
                                     "back\\slash", "@weird"])
    def test_bad_input_raises(self, bad):
        with pytest.raises(QuerySyntaxError):
            tokenize(bad)

    def test_non_string_rejected(self):
        with pytest.raises(QuerySyntaxError):
            tokenize(12345)


class TestParser:
    def test_precedence_and_binds_tighter_than_or(self):
        node = parse("$a or $b and $c")
        assert isinstance(node, Or)
        assert isinstance(node.right, And)

    def test_parentheses_override(self):
        node = parse("($a or $b) and $c")
        assert isinstance(node, And)
        assert isinstance(node.left, Or)

    def test_not_chains(self):
        node = parse("not not $a")
        assert isinstance(node, Not) and isinstance(node.operand, Not)

    def test_comparison(self):
        node = parse("$load <= 2.5")
        assert isinstance(node, Compare)
        assert node.op == "<="
        assert node.left == Attr("load")
        assert node.right == Literal(2.5)

    def test_call_with_args(self):
        node = parse('match("IRIX", $os)')
        assert node == Call("match", (Literal("IRIX"), Attr("os")))

    def test_call_no_args(self):
        assert parse("f()") == Call("f", ())

    def test_paper_example_parses(self):
        node = parse('match($host_os_name, "IRIX") and '
                     'match("5\\..*", $host_os_name)')
        assert isinstance(node, And)

    @pytest.mark.parametrize("bad", [
        "", "$a and", "and $a", "($a", "$a)", "f(,)", "$a == == 1",
        "$a $b", "1 2", "match($a, )",
    ])
    def test_syntax_errors(self, bad):
        with pytest.raises(QuerySyntaxError):
            parse(bad)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse("$a == 1 garbage(")


class TestEvaluator:
    REC = {
        "host_os_name": "IRIX 5.3",
        "host_arch": "mips",
        "host_load": 1.5,
        "host_up": True,
        "cpus": 4,
        "tags": ["fast", "cheap"],
    }

    def q(self, text, record=None):
        return matches(parse(text), record if record is not None
                       else self.REC)

    def test_equality(self):
        assert self.q('$host_arch == "mips"')
        assert not self.q('$host_arch == "sparc"')
        assert self.q('$host_arch != "sparc"')

    def test_numeric_comparisons(self):
        assert self.q("$host_load < 2")
        assert self.q("$host_load >= 1.5")
        assert not self.q("$host_load > 1.5")
        assert self.q("$cpus == 4")

    def test_int_float_coercion(self):
        assert self.q("$cpus == 4.0")
        assert self.q("$host_load > 1")

    def test_string_ordering(self):
        assert self.q('$host_arch > "aaa"')

    def test_cross_type_comparison_is_false(self):
        assert not self.q('$cpus == "4"')
        assert not self.q('$host_arch < 10')

    def test_boolean_attr(self):
        assert self.q("$host_up")
        assert self.q("$host_up == true")
        assert not self.q("not $host_up")

    def test_missing_attr_never_matches(self):
        assert not self.q("$nope == 1")
        assert not self.q('$nope != 1')   # undefined: all comparisons false
        assert not self.q("$nope < 99999")
        assert self.q("not defined($nope)")

    def test_defined(self):
        assert self.q("defined($host_load)")
        assert not self.q("defined($ghost)")

    def test_match_footnote_order(self):
        # footnote 5: first arg is the regex
        assert self.q('match("IRIX", $host_os_name)')
        assert self.q('match("5\\..*", $host_os_name)')
        assert not self.q('match("6\\..*", $host_os_name)')

    def test_match_legacy_order_lenient(self):
        # the paper's older example form: attribute first
        assert self.q('match($host_os_name, "IRIX")')

    def test_match_on_list_attr(self):
        assert self.q('match("fast", $tags)')
        assert not self.q('match("slow", $tags)')

    def test_match_bad_regex(self):
        with pytest.raises(QueryEvaluationError):
            self.q('match("(unclosed", $host_os_name)')

    def test_match_arity(self):
        with pytest.raises(QueryEvaluationError):
            self.q('match($host_os_name)')

    def test_contains(self):
        assert self.q('contains($tags, "cheap")')
        assert not self.q('contains($tags, "slow")')
        assert self.q('contains($host_os_name, "5.3")')

    def test_oneof(self):
        assert self.q('oneof($host_arch, "sparc", "mips")')
        assert not self.q('oneof($host_arch, "sparc", "x86")')

    def test_list_attr_existential_comparison(self):
        assert self.q('$tags == "fast"')
        assert not self.q('$tags == "slow"')

    def test_boolean_combinations(self):
        assert self.q('$host_up and $host_load < 2 and '
                      '($host_arch == "mips" or $host_arch == "sparc")')
        assert self.q('not ($host_load > 2)')

    def test_unknown_function(self):
        with pytest.raises(QueryEvaluationError):
            self.q("frobnicate($host_load)")

    def test_injected_function(self):
        fns = QueryFunctions()
        fns.register("double", lambda args, rec: args[0] * 2)
        node = parse("double($cpus) == 8")
        assert matches(node, self.REC, fns)

    def test_injected_function_sees_record(self):
        fns = QueryFunctions()
        fns.register("rate",
                     lambda args, rec: rec["cpus"] / (1 + rec["host_load"]))
        assert matches(parse("rate() > 1.5"), self.REC, fns)

    def test_unregister(self):
        fns = QueryFunctions()
        fns.register("f", lambda a, r: True)
        fns.unregister("f")
        assert "f" not in fns

    def test_evaluate_raw_value(self):
        assert evaluate(parse("$cpus"), self.REC) == 4
        assert evaluate(parse("$nope"), self.REC) is UNDEFINED


# ---------------------------------------------------------------------------
# property-based round trip: unparse(parse(q)) reparses to the same AST
# ---------------------------------------------------------------------------

attr_names = st.sampled_from(
    ["host_load", "host_arch", "cpus", "x", "tag_list"])
str_literals = st.text(
    alphabet="abcXYZ 0123._*", max_size=8).map(Literal)
num_literals = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.floats(min_value=-100, max_value=100, allow_nan=False,
              allow_infinity=False)).map(Literal)
leaf = st.one_of(attr_names.map(Attr), str_literals, num_literals,
                 st.booleans().map(Literal))


def node_strategy():
    return st.recursive(
        leaf,
        lambda children: st.one_of(
            st.tuples(children, children).map(lambda t: Or(*t)),
            st.tuples(children, children).map(lambda t: And(*t)),
            children.map(Not),
            st.tuples(st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
                      leaf, leaf).map(lambda t: Compare(*t)),
            leaf.map(lambda a: Call("defined", (a,))),
            st.tuples(st.sampled_from(["f", "g"]),
                      st.lists(leaf, max_size=2).map(tuple)).map(
                          lambda t: Call(*t)),
        ),
        max_leaves=8)


class TestRoundTrip:
    @given(node_strategy())
    @settings(max_examples=150, deadline=None)
    def test_unparse_reparse_identity(self, node):
        text = node.unparse()
        reparsed = parse(text)
        assert reparsed == node, f"{text!r} -> {reparsed!r}"

    @given(node_strategy(),
           st.dictionaries(attr_names,
                           st.one_of(st.integers(-5, 5), st.text(max_size=3),
                                     st.booleans()),
                           max_size=4))
    @settings(max_examples=100, deadline=None)
    def test_evaluation_total_no_crashes(self, node, record):
        """Any well-formed query evaluates on any record without raising
        (except unknown functions, which we register as stubs)."""
        fns = QueryFunctions()
        fns.register("f", lambda a, r: True)
        fns.register("g", lambda a, r: 0)
        result = matches(node, record, fns)
        assert isinstance(result, bool)
