"""Tests for the processor-sharing simulated machine."""

import pytest

from repro.errors import InsufficientResourcesError, ObjectStateError
from repro.hosts import LoadWalk, MachineSpec, SimJob, SimMachine
from repro.net import AdministrativeDomain, NetLocation, Topology
from repro.sim import RngRegistry, Simulator


def make_machine(speed=1.0, cpus=1, memory=128.0, load_walk=None,
                 initial_load=0.0):
    sim = Simulator()
    topo = Topology()
    topo.add_domain(AdministrativeDomain("d"))
    loc = topo.add_node("d", "m")
    machine = SimMachine("m", MachineSpec(cpus=cpus, speed=speed,
                                          memory_mb=memory),
                         loc, sim, RngRegistry(1), load_walk=load_walk,
                         initial_load=initial_load)
    return sim, machine


class TestExecution:
    def test_single_job_runs_at_full_speed(self):
        sim, m = make_machine(speed=2.0)
        done = []
        job = SimJob(100.0, 8.0, on_complete=lambda j: done.append(sim.now))
        m.start_job(job)
        sim.run()
        assert done == [pytest.approx(50.0)]
        assert job.done
        assert m.completed_jobs == 1

    def test_two_jobs_share_the_processor(self):
        sim, m = make_machine(speed=1.0)
        times = {}
        for name, work in (("a", 100.0), ("b", 100.0)):
            m.start_job(SimJob(work, 8.0,
                               on_complete=lambda j: times.__setitem__(
                                   j.name, sim.now), name=name))
        sim.run()
        # both jobs share 1 cpu: each runs at rate 0.5 -> finish at 200
        assert times["a"] == pytest.approx(200.0)
        assert times["b"] == pytest.approx(200.0)

    def test_short_job_departure_speeds_up_survivor(self):
        sim, m = make_machine(speed=1.0)
        times = {}
        m.start_job(SimJob(50.0, 8.0, on_complete=lambda j:
                           times.__setitem__(j.name, sim.now), name="short"))
        m.start_job(SimJob(100.0, 8.0, on_complete=lambda j:
                           times.__setitem__(j.name, sim.now), name="long"))
        sim.run()
        # shared until short finishes at t=100 (50/0.5); long then has 50
        # units left at rate 1.0 -> 150
        assert times["short"] == pytest.approx(100.0)
        assert times["long"] == pytest.approx(150.0)

    def test_multi_cpu_runs_jobs_independently(self):
        sim, m = make_machine(speed=1.0, cpus=2)
        times = {}
        for name in ("a", "b"):
            m.start_job(SimJob(100.0, 8.0, on_complete=lambda j:
                               times.__setitem__(j.name, sim.now),
                               name=name))
        sim.run()
        assert times["a"] == pytest.approx(100.0)
        assert times["b"] == pytest.approx(100.0)

    def test_background_load_slows_jobs(self):
        sim, m = make_machine(speed=1.0, initial_load=1.0)
        finish = []
        m.start_job(SimJob(100.0, 8.0,
                           on_complete=lambda j: finish.append(sim.now)))
        sim.run()
        # 1 job + 1.0 bg load share 1 cpu -> rate 0.5 -> 200s
        assert finish == [pytest.approx(200.0)]

    def test_mid_run_load_injection_slows_job(self):
        sim, m = make_machine(speed=1.0)
        finish = []
        m.start_job(SimJob(100.0, 8.0,
                           on_complete=lambda j: finish.append(sim.now)))
        sim.schedule(50.0, lambda: m.set_background_load(3.0))
        sim.run()
        # 50 units done by t=50; then rate = 1/(1+3) = 0.25 -> +200s
        assert finish == [pytest.approx(250.0)]

    def test_add_work_extends_job(self):
        sim, m = make_machine(speed=1.0)
        finish = []
        job = SimJob(100.0, 8.0,
                     on_complete=lambda j: finish.append(sim.now))
        m.start_job(job)
        sim.schedule(10.0, lambda: m.add_work(job, 40.0))
        sim.run()
        assert finish == [pytest.approx(140.0)]

    def test_add_work_rejects_negative(self):
        sim, m = make_machine()
        job = SimJob(10.0, 8.0)
        m.start_job(job)
        with pytest.raises(ValueError):
            m.add_work(job, -1.0)

    def test_zero_work_job_completes_immediately(self):
        sim, m = make_machine()
        done = []
        m.start_job(SimJob(0.0, 1.0, on_complete=lambda j: done.append(1)))
        sim.run()
        assert done == [1]


class TestAdmission:
    def test_memory_accounting(self):
        sim, m = make_machine(memory=100.0)
        m.start_job(SimJob(10.0, 60.0))
        assert m.available_memory_mb == pytest.approx(40.0)
        with pytest.raises(InsufficientResourcesError):
            m.start_job(SimJob(10.0, 50.0))

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            SimJob(-1.0, 8.0)

    def test_load_average_counts_jobs_and_background(self):
        sim, m = make_machine(initial_load=0.7)
        m.start_job(SimJob(100.0, 8.0))
        m.start_job(SimJob(100.0, 8.0))
        assert m.load_average == pytest.approx(2.7)

    def test_remove_job_returns_remaining(self):
        sim, m = make_machine(speed=1.0)
        job = SimJob(100.0, 8.0)
        m.start_job(job)
        sim.run_until(30.0)
        remaining = m.remove_job(job)
        assert remaining == pytest.approx(70.0)
        assert job.preempted
        assert not m.jobs


class TestFailure:
    def test_fail_loses_jobs(self):
        sim, m = make_machine()
        job = SimJob(100.0, 8.0)
        m.start_job(job)
        lost = m.fail()
        assert lost == [job]
        assert not m.up
        assert m.per_job_rate() == 0.0
        with pytest.raises(ObjectStateError):
            m.start_job(SimJob(1.0, 1.0))

    def test_recover_allows_new_work(self):
        sim, m = make_machine()
        m.fail()
        m.recover()
        assert m.up
        done = []
        m.start_job(SimJob(10.0, 8.0, on_complete=lambda j: done.append(1)))
        sim.run()
        assert done == [1]


class TestLoadWalk:
    def test_walk_changes_load_over_time(self):
        walk = LoadWalk(mean=1.0, sigma=0.3, interval=10.0)
        sim, m = make_machine(load_walk=walk, initial_load=0.0)
        sim.run_until(500.0)
        assert m.background_load != 0.0
        assert 0.0 <= m.background_load <= walk.cap

    def test_walk_is_deterministic_per_seed(self):
        def trace():
            walk = LoadWalk(mean=1.0, interval=10.0)
            sim, m = make_machine(load_walk=walk)
            loads = []
            for _ in range(20):
                sim.run_until(sim.now + 10.0)
                loads.append(m.background_load)
            return loads
        assert trace() == trace()

    def test_spikes_occur(self):
        walk = LoadWalk(mean=0.2, sigma=0.01, interval=1.0,
                        spike_prob=0.5, spike_size=5.0)
        sim, m = make_machine(load_walk=walk)
        peak = 0.0
        for _ in range(100):
            sim.run_until(sim.now + 1.0)
            peak = max(peak, m.background_load)
        assert peak > 3.0

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            LoadWalk(interval=0.0)

    def test_clipping_at_zero(self):
        walk = LoadWalk(mean=0.0, kappa=1.0, sigma=0.0, interval=1.0)
        import numpy as np
        rng = np.random.default_rng(0)
        assert walk.step(rng, -5.0) == 0.0
