"""Tests for the NWS-style forecasters and Collection injection."""

import math

import numpy as np
import pytest

from repro.predict import (
    AdaptiveForecaster,
    ExponentialSmoothing,
    HostLoadPredictor,
    LastValue,
    RunningMean,
    SlidingWindowMean,
    SlidingWindowMedian,
)


class TestBasicForecasters:
    def test_last_value(self):
        f = LastValue()
        assert math.isnan(f.predict())
        f.update(3.0)
        f.update(5.0)
        assert f.predict() == 5.0

    def test_running_mean(self):
        f = RunningMean()
        for x in (1.0, 2.0, 3.0):
            f.update(x)
        assert f.predict() == pytest.approx(2.0)

    def test_sliding_window_mean(self):
        f = SlidingWindowMean(window=2)
        for x in (10.0, 1.0, 3.0):
            f.update(x)
        assert f.predict() == pytest.approx(2.0)  # only last two

    def test_sliding_window_median_robust_to_spike(self):
        f = SlidingWindowMedian(window=5)
        for x in (1.0, 1.0, 100.0, 1.0, 1.0):
            f.update(x)
        assert f.predict() == 1.0

    def test_ewma(self):
        f = ExponentialSmoothing(alpha=0.5)
        f.update(0.0)
        f.update(10.0)
        assert f.predict() == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowMean(0)
        with pytest.raises(ValueError):
            SlidingWindowMedian(-1)
        with pytest.raises(ValueError):
            ExponentialSmoothing(0.0)
        with pytest.raises(ValueError):
            ExponentialSmoothing(1.5)


class TestAdaptive:
    def test_tracks_best_on_constant_series(self):
        f = AdaptiveForecaster()
        for _ in range(50):
            f.update(2.0)
        assert f.predict() == pytest.approx(2.0)

    def test_selects_low_error_forecaster(self):
        # alternating series: mean-based forecasters beat last-value
        f = AdaptiveForecaster()
        for i in range(100):
            f.update(0.0 if i % 2 == 0 else 2.0)
        last_idx = [fc.name for fc in f.bank].index("last")
        assert f.best_index() != last_idx

    def test_errors_accumulate(self):
        f = AdaptiveForecaster()
        f.update(1.0)
        f.update(2.0)
        assert any(e > 0 for e in f.errors)

    def test_best_name(self):
        f = AdaptiveForecaster()
        for _ in range(10):
            f.update(1.0)
        assert isinstance(f.best_name, str)

    def test_beats_worst_on_noisy_ar1(self):
        rng = np.random.default_rng(0)
        series = [0.0]
        for _ in range(300):
            series.append(0.9 * series[-1] + rng.normal(0, 0.3))
        adaptive = AdaptiveForecaster()
        errors = {fc.name: 0.0 for fc in adaptive.bank}
        shadow = AdaptiveForecaster()  # untouched copy for per-fc errors
        adapt_err = 0.0
        for x in series:
            pred = adaptive.predict()
            if pred == pred:
                adapt_err += abs(pred - x)
            adaptive.update(x)
        worst = max(adaptive.errors)
        assert adapt_err <= worst * 1.05


class TestHostLoadPredictor:
    def test_observe_and_predict(self):
        p = HostLoadPredictor()
        for x in (1.0, 1.0, 1.0):
            p.observe("ws0", x)
        assert p.predict("ws0") == pytest.approx(1.0)
        assert math.isnan(p.predict("unknown"))

    def test_per_host_isolation(self):
        p = HostLoadPredictor()
        p.observe("a", 1.0)
        p.observe("b", 9.0)
        assert p.predict("a") != p.predict("b")

    def test_computed_adapter_falls_back_to_host_load(self):
        p = HostLoadPredictor()
        record = {"host_name": "fresh", "host_load": 3.5}
        assert p.computed(record) == 3.5
        p.observe("fresh", 1.0)
        assert p.computed(record) == pytest.approx(1.0)

    def test_injection_into_collection(self, meta):
        p = HostLoadPredictor()
        meta.collection.inject_attribute("predicted_load", p.computed)
        host = meta.hosts[0]
        for load in (0.5, 0.5, 0.5):
            p.observe(host.machine.name, load)
        records = meta.collection.query("$predicted_load < 1.0")
        assert host.loid in {r.member for r in records}

    def test_custom_factory(self):
        p = HostLoadPredictor(factory=LastValue)
        p.observe("x", 1.0)
        p.observe("x", 7.0)
        assert p.predict("x") == 7.0
