"""Tests for the Enactor: reservation negotiation, variant fallback,
anti-thrashing, k-of-n, co-allocation, and enactment."""

import pytest

from repro.enactor import Enactor
from repro.errors import MalformedScheduleError
from repro.naming import LOID
from repro.schedule import (
    MasterSchedule,
    ScheduleMapping,
    ScheduleRequestList,
    VariantSchedule,
)
from repro.schedule.schedule import FailureKind


def entry(app_class, host, vault):
    return ScheduleMapping(app_class.loid, host.loid, vault.loid)


def fill_reservations(host, vault, app_class):
    """Exhaust a host's reservation slots so new requests are denied."""
    tokens = []
    for _ in range(host.slots):
        tokens.append(host.make_reservation(vault.loid, app_class.loid))
    return tokens


class TestMakeReservations:
    def test_master_success(self, meta, app_class):
        vault = meta.vaults[0]
        entries = [entry(app_class, h, vault) for h in meta.hosts[:3]]
        request = ScheduleRequestList([MasterSchedule(entries)])
        feedback = meta.enactor.make_reservations(request)
        assert feedback.ok
        assert feedback.master_index == 0
        assert feedback.variant is None
        assert len(feedback.reserved_entries) == 3
        assert feedback.reservation_handle is not None
        # reservations actually live on the hosts
        for host in meta.hosts[:3]:
            assert host.reservations.live_count(meta.now) == 1

    def test_requires_request_list_type(self, meta):
        with pytest.raises(MalformedScheduleError):
            meta.enactor.make_reservations("not a schedule")

    def test_failure_reports_resources_kind(self, meta, app_class):
        vault = meta.vaults[0]
        host = meta.hosts[0]
        fill_reservations(host, vault, app_class)
        request = ScheduleRequestList(
            [MasterSchedule([entry(app_class, host, vault)])])
        feedback = meta.enactor.make_reservations(request)
        assert not feedback.ok
        assert feedback.failure_kind == FailureKind.RESOURCES
        assert 0 in feedback.entry_errors

    def test_variant_rescues_failed_entry(self, meta, app_class):
        vault = meta.vaults[0]
        full, free, other = meta.hosts[0], meta.hosts[1], meta.hosts[2]
        fill_reservations(full, vault, app_class)
        master = MasterSchedule([
            entry(app_class, full, vault),     # will fail
            entry(app_class, other, vault),    # will succeed
        ])
        master.add_variant(VariantSchedule(
            {0: entry(app_class, free, vault)}, label="rescue"))
        feedback = meta.enactor.make_reservations(
            ScheduleRequestList([master]))
        assert feedback.ok
        assert feedback.variant is not None
        assert feedback.variant.label == "rescue"
        hosts_used = {m.host_loid for m in feedback.reserved_entries}
        assert hosts_used == {free.loid, other.loid}

    def test_antithrash_keeps_unaffected_reservations(self, meta,
                                                      app_class):
        vault = meta.vaults[0]
        full, free, other = meta.hosts[0], meta.hosts[1], meta.hosts[2]
        fill_reservations(full, vault, app_class)
        master = MasterSchedule([
            entry(app_class, full, vault),
            entry(app_class, other, vault),
        ])
        # the variant replaces BOTH entries, but entry 1's replacement has
        # the same target — anti-thrashing must keep its reservation
        master.add_variant(VariantSchedule({
            0: entry(app_class, free, vault),
            1: entry(app_class, other, vault),
        }))
        feedback = meta.enactor.make_reservations(
            ScheduleRequestList([master]))
        assert feedback.ok
        assert meta.enactor.stats.cancellations == 0
        assert meta.enactor.stats.thrash_count == 0
        assert other.reservations.grants == 1  # never re-asked

    def test_naive_mode_thrashes(self, meta, app_class):
        vault = meta.vaults[0]
        full, free, other = meta.hosts[0], meta.hosts[1], meta.hosts[2]
        fill_reservations(full, vault, app_class)
        naive = Enactor(meta.transport, meta.resolve,
                        naive_variant_handling=True)
        master = MasterSchedule([
            entry(app_class, full, vault),
            entry(app_class, other, vault),
        ])
        master.add_variant(VariantSchedule({
            0: entry(app_class, free, vault),
            1: entry(app_class, other, vault),
        }))
        feedback = naive.make_reservations(ScheduleRequestList([master]))
        assert feedback.ok
        # the 'other' reservation was cancelled and remade: thrash
        assert naive.stats.cancellations >= 1
        assert naive.stats.thrash_count >= 1
        assert other.reservations.grants == 2

    def test_second_master_tried_after_first_fails(self, meta, app_class):
        vault = meta.vaults[0]
        full, free = meta.hosts[0], meta.hosts[1]
        fill_reservations(full, vault, app_class)
        bad = MasterSchedule([entry(app_class, full, vault)], label="bad")
        good = MasterSchedule([entry(app_class, free, vault)], label="good")
        feedback = meta.enactor.make_reservations(
            ScheduleRequestList([bad, good]))
        assert feedback.ok
        assert feedback.master_index == 1
        assert meta.enactor.stats.master_attempts == 2

    def test_all_fail_cancels_everything(self, meta, app_class):
        vault = meta.vaults[0]
        full, free = meta.hosts[0], meta.hosts[1]
        fill_reservations(full, vault, app_class)
        # master has one feasible and one infeasible entry, no variants
        master = MasterSchedule([
            entry(app_class, free, vault),
            entry(app_class, full, vault),
        ])
        feedback = meta.enactor.make_reservations(
            ScheduleRequestList([master]))
        assert not feedback.ok
        # the granted 'free' reservation must have been released
        assert free.reservations.live_count(meta.now) == 0

    def test_unknown_host_in_schedule(self, meta, app_class):
        vault = meta.vaults[0]
        ghost = ScheduleMapping(app_class.loid,
                                meta.minter.mint("host", "ghost"),
                                vault.loid)
        feedback = meta.enactor.make_reservations(
            ScheduleRequestList([MasterSchedule([ghost])]))
        assert not feedback.ok
        assert "unknown host" in feedback.entry_errors[0]


class TestKofN:
    def test_keeps_k_cancels_surplus(self, meta, app_class):
        vault = meta.vaults[0]
        master = MasterSchedule(
            [entry(app_class, h, vault) for h in meta.hosts],
            required_k=2)
        feedback = meta.enactor.make_reservations(
            ScheduleRequestList([master]))
        assert feedback.ok
        assert len(feedback.reserved_entries) == 2
        live = sum(h.reservations.live_count(meta.now) for h in meta.hosts)
        assert live == 2

    def test_kofn_fails_below_k(self, meta, app_class):
        vault = meta.vaults[0]
        for host in meta.hosts[1:]:
            fill_reservations(host, vault, app_class)
        master = MasterSchedule(
            [entry(app_class, h, vault) for h in meta.hosts],
            required_k=2)
        feedback = meta.enactor.make_reservations(
            ScheduleRequestList([master]))
        assert not feedback.ok
        assert "k-of-n" in feedback.failure_detail
        # the single obtained reservation must be released
        assert meta.hosts[0].reservations.live_count(meta.now) == 0


class TestEnactment:
    def reserved(self, meta, app_class, n=2):
        vault = meta.vaults[0]
        entries = [entry(app_class, h, vault) for h in meta.hosts[:n]]
        request = ScheduleRequestList([MasterSchedule(entries)])
        return meta.enactor.make_reservations(request)

    def test_enact_creates_instances(self, meta, app_class):
        feedback = self.reserved(meta, app_class)
        result = meta.enactor.enact_schedule(feedback)
        assert result.ok
        assert len(result.created) == 2
        for loid in result.created:
            instance = app_class.get_instance(loid)
            assert instance.is_active
            assert instance.host_loid in {h.loid for h in meta.hosts[:2]}

    def test_enact_requires_successful_feedback(self, meta, app_class):
        from repro.errors import EnactmentError
        from repro.schedule import ScheduleFeedback
        bogus = ScheduleFeedback(request=None, ok=False)
        with pytest.raises(EnactmentError):
            meta.enactor.enact_schedule(bogus)

    def test_double_enact_rejected(self, meta, app_class):
        from repro.errors import EnactmentError
        feedback = self.reserved(meta, app_class)
        meta.enactor.enact_schedule(feedback)
        with pytest.raises(EnactmentError):
            meta.enactor.enact_schedule(feedback)

    def test_cancel_releases_reservations(self, meta, app_class):
        feedback = self.reserved(meta, app_class)
        n = meta.enactor.cancel_reservations(feedback)
        assert n == 2
        for host in meta.hosts[:2]:
            assert host.reservations.live_count(meta.now) == 0

    def test_enact_rollback_on_partial_failure(self, meta, app_class):
        vault = meta.vaults[0]
        host = meta.hosts[0]
        feedback = self.reserved(meta, app_class, n=2)
        # sabotage: fill host 0's slots so create_instance will fail there
        from repro.objects import LegionObject
        for _ in range(host.slots):
            inst = LegionObject(meta.minter.mint_instance(app_class.loid),
                                app_class.loid)
            host.start_object(inst, vault.loid)
        result = meta.enactor.enact_schedule(feedback,
                                             rollback_on_failure=True)
        assert not result.ok
        assert result.created == []          # rollback emptied it
        assert meta.enactor.stats.enact_failures == 1

    def test_enact_reports_per_entry_codes(self, meta, app_class):
        feedback = self.reserved(meta, app_class, n=2)
        result = meta.enactor.enact_schedule(feedback)
        assert set(result.entry_results) == {0, 1}
        assert all(r.ok for r in result.entry_results.values())


class TestNegotiationSpans:
    """Causal span parentage across the negotiation subtree."""

    def test_variant_fallback_is_sibling_subtree(self, meta, app_class):
        vault = meta.vaults[0]
        full, free, other = meta.hosts[0], meta.hosts[1], meta.hosts[2]
        fill_reservations(full, vault, app_class)
        master = MasterSchedule([
            entry(app_class, full, vault),
            entry(app_class, other, vault),
        ])
        master.add_variant(VariantSchedule(
            {0: entry(app_class, free, vault)}, label="rescue"))
        with meta.spans.span("test-root"):
            feedback = meta.enactor.make_reservations(
                ScheduleRequestList([master]))
        assert feedback.ok

        (m_span,) = meta.spans.find("enactor.master")
        (v_span,) = meta.spans.find("enactor.variant")
        assert v_span.attributes["label"] == "rescue"
        # the variant attempt hangs off the same master attempt ...
        assert v_span.parent_id == m_span.span_id
        # ... and its reserve batch is a sibling subtree of the master's
        reserves = meta.spans.find("enactor.reserve")
        assert [s.parent_id for s in reserves] == [m_span.span_id,
                                                   v_span.span_id]
        # the master attempt failed an entry, the variant rescued it
        assert m_span.attributes["ok"] is True
        assert v_span.attributes["ok"] is True

    def test_carried_context_parents_host_spans(self, meta, app_class):
        vault = meta.vaults[0]
        entries = [entry(app_class, h, vault) for h in meta.hosts[:2]]
        with meta.spans.span("test-root"):
            feedback = meta.enactor.make_reservations(
                ScheduleRequestList([MasterSchedule(entries)]))
        assert feedback.ok
        (reserve_span,) = meta.spans.find("enactor.reserve")
        rpcs = [s for s in meta.spans.spans
                if s.name.startswith("rpc:make_reservation")]
        assert len(rpcs) == 2
        # context rode the Call: every rpc parents under the reserve span
        assert {s.parent_id for s in rpcs} == {reserve_span.span_id}
        # and the host-side grant parents under its own rpc
        grants = meta.spans.find("host.reserve")
        assert {g.parent_id for g in grants} == {s.span_id for s in rpcs}
        assert all(g.trace_id == reserve_span.trace_id for g in grants)

    def test_denied_reservation_span_has_error_status(self, meta,
                                                      app_class):
        vault = meta.vaults[0]
        host = meta.hosts[0]
        fill_reservations(host, vault, app_class)
        request = ScheduleRequestList(
            [MasterSchedule([entry(app_class, host, vault)])])
        with meta.spans.span("test-root"):
            feedback = meta.enactor.make_reservations(request)
        assert not feedback.ok
        (grant,) = meta.spans.find("host.reserve")
        assert grant.status == "error"
        assert "ReservationDeniedError" in grant.attributes["error"]
        (m_span,) = meta.spans.find("enactor.master")
        assert m_span.status == "error"

    def test_no_spans_without_open_trace(self, meta, app_class):
        vault = meta.vaults[0]
        entries = [entry(app_class, h, vault) for h in meta.hosts[:2]]
        feedback = meta.enactor.make_reservations(
            ScheduleRequestList([MasterSchedule(entries)]))
        assert feedback.ok
        # span_if_active everywhere: direct calls record nothing
        assert len(meta.spans) == 0


class TestCoAllocation:
    def test_parallel_faster_than_sequential(self, multi, app_class=None):
        from repro.objects import Implementation
        app = multi.create_class(
            "Wide", [Implementation(a, o) for a, o, *_ in
                     __import__("repro.workload.testbed",
                                fromlist=["PLATFORMS"]).PLATFORMS],
            work_units=10.0)
        vaults = {v.location.domain: v for v in multi.vaults}
        entries = []
        for host in multi.hosts[:6]:
            entries.append(ScheduleMapping(app.loid, host.loid,
                                           vaults[host.domain].loid))
        # sequential enactor
        seq = Enactor(multi.transport, multi.resolve,
                      sequential_coallocation=True)
        t0 = multi.now
        fb = seq.make_reservations(
            ScheduleRequestList([MasterSchedule(list(entries))]))
        sequential_time = multi.now - t0
        assert fb.ok
        seq.cancel_reservations(fb)

        par = Enactor(multi.transport, multi.resolve)
        t0 = multi.now
        fb2 = par.make_reservations(
            ScheduleRequestList([MasterSchedule(list(entries))]))
        parallel_time = multi.now - t0
        assert fb2.ok
        assert parallel_time < sequential_time

    def test_domains_involved(self, multi):
        from repro.objects import Implementation
        app = multi.create_class("D", [Implementation("sparc", "SunOS")],
                                 work_units=1.0)
        vaults = {v.location.domain: v for v in multi.vaults}
        entries = [ScheduleMapping(app.loid, h.loid,
                                   vaults[h.domain].loid)
                   for h in multi.hosts[:6]]
        domains = multi.enactor.coallocator.domains_involved(entries)
        assert len(domains) >= 2
