"""Tests for Batch Queue Hosts mediating the three queue-system families."""

import pytest

from repro import Implementation, MachineSpec, Metasystem, ObjectClassRequest
from repro.errors import ReservationDeniedError
from repro.objects import LegionObject, Placement
from repro.queues import BackfillQueue, JobState


@pytest.fixture
def bmeta():
    m = Metasystem(seed=11)
    m.add_domain("hpc")
    m.add_vault("hpc")
    return m


def cluster_class(meta, work=50.0):
    return meta.create_class(
        "Job", [Implementation("sparc", "SunOS", memory_mb=16.0),
                Implementation("x86", "Linux", memory_mb=16.0)],
        work_units=work)


class TestFCFSHost:
    def test_objects_run_through_queue(self, bmeta):
        host = bmeta.add_batch_host("cluster", "hpc", queue_kind="fcfs",
                                    nodes=2)
        app = cluster_class(bmeta)
        vault = bmeta.vaults[0].loid
        results = [app.create_instance(Placement(host.loid, vault))
                   for _ in range(4)]
        assert all(r.ok for r in results)
        assert host.queue.queue_length + len(host.queue.running) == 4
        bmeta.advance(300.0)
        done = [app.get_instance(r.loid).attributes.get("completed_at")
                for r in results]
        assert all(d is not None for d in done)
        # 4 jobs, 2 nodes, 50 units each: two waves
        assert max(done) == pytest.approx(100.0, abs=5.0)

    def test_internal_reservation_table_for_fcfs(self, bmeta):
        host = bmeta.add_batch_host("cluster", "hpc", queue_kind="fcfs")
        app = cluster_class(bmeta)
        tok = host.make_reservation(bmeta.vaults[0].loid, app.loid)
        assert host.check_reservation(tok)
        assert not host.queue.supports_reservations

    def test_queue_full_denies_reservations(self, bmeta):
        host = bmeta.add_batch_host("cluster", "hpc", queue_kind="fcfs",
                                    nodes=1, max_queue_length=2)
        app = cluster_class(bmeta, work=1e6)
        vault = bmeta.vaults[0].loid
        app.create_instance(Placement(host.loid, vault))
        app.create_instance(Placement(host.loid, vault))
        app.create_instance(Placement(host.loid, vault))
        with pytest.raises(ReservationDeniedError):
            host.make_reservation(vault, app.loid)

    def test_kill_cancels_queue_job(self, bmeta):
        host = bmeta.add_batch_host("cluster", "hpc", queue_kind="fcfs",
                                    nodes=1)
        app = cluster_class(bmeta, work=1e5)
        vault = bmeta.vaults[0].loid
        r1 = app.create_instance(Placement(host.loid, vault))
        r2 = app.create_instance(Placement(host.loid, vault))
        app.destroy_instance(r1.loid)
        bmeta.advance(1.0)
        # r2 should now be running
        qjob = host._queue_jobs[r2.loid]
        assert qjob.state == JobState.RUNNING

    def test_deactivate_preserves_queue_progress(self, bmeta):
        host = bmeta.add_batch_host("cluster", "hpc", queue_kind="fcfs",
                                    nodes=1)
        app = cluster_class(bmeta, work=100.0)
        vault = bmeta.vaults[0].loid
        r = app.create_instance(Placement(host.loid, vault))
        bmeta.advance(30.0)
        opr, remaining = host.deactivate_object(r.loid)
        assert remaining == pytest.approx(70.0)

    def test_attributes_report_queue_state(self, bmeta):
        host = bmeta.add_batch_host("cluster", "hpc", queue_kind="fcfs",
                                    nodes=8)
        host.reassess()
        assert host.attributes.get("host_kind") == "batch"
        assert host.attributes.get("queue_total_nodes") == 8
        assert host.attributes.get("queue_supports_reservations") is False


class TestBackfillHost:
    def test_native_reservation_passthrough(self, bmeta):
        host = bmeta.add_batch_host("maui", "hpc", queue_kind="backfill",
                                    nodes=4)
        app = cluster_class(bmeta)
        assert host.queue.supports_reservations
        tok = host.make_reservation(bmeta.vaults[0].loid, app.loid,
                                    duration=500.0)
        # a native advance reservation backs the token
        assert tok.token_id in host._native_reservations

    def test_cancel_releases_native_window(self, bmeta):
        host = bmeta.add_batch_host("maui", "hpc", queue_kind="backfill",
                                    nodes=1)
        app = cluster_class(bmeta)
        vault = bmeta.vaults[0].loid
        tok = host.make_reservation(vault, app.loid, duration=1e6)
        # whole cluster reserved: a submitted job must wait
        other = LegionObject(bmeta.minter.mint_instance(app.loid), app.loid)
        other.attributes.set("work_units", 10.0)
        other.attributes.set("memory_mb", 8.0)
        host.start_object(other, vault)
        bmeta.advance(5.0)
        qjob = host._queue_jobs[other.loid]
        assert qjob.state == JobState.QUEUED
        host.cancel_reservation(tok)
        bmeta.advance(60.0)
        assert other.attributes.get("completed_at") is not None

    def test_start_with_token_claims_window(self, bmeta):
        host = bmeta.add_batch_host("maui", "hpc", queue_kind="backfill",
                                    nodes=1)
        app = cluster_class(bmeta, work=10.0)
        vault = bmeta.vaults[0].loid
        tok = host.make_reservation(vault, app.loid, duration=1000.0)
        result = app.create_instance(
            Placement(host.loid, vault, reservation_token=tok))
        assert result.ok
        bmeta.advance(30.0)
        inst = app.get_instance(result.loid)
        assert inst.attributes.get("completed_at") is not None

    def test_denied_when_window_oversubscribed(self, bmeta):
        host = bmeta.add_batch_host("maui", "hpc", queue_kind="backfill",
                                    nodes=1)
        app = cluster_class(bmeta)
        vault = bmeta.vaults[0].loid
        host.make_reservation(vault, app.loid, start_time=100.0,
                              duration=100.0)
        with pytest.raises(ReservationDeniedError):
            host.make_reservation(vault, app.loid, start_time=150.0,
                                  duration=100.0)


class TestCondorHost:
    def test_jobs_survive_vacations(self, bmeta):
        host = bmeta.add_batch_host("pool", "hpc", queue_kind="condor",
                                    nodes=2, mean_idle=100.0,
                                    mean_busy=50.0)
        app = cluster_class(bmeta, work=300.0)
        vault = bmeta.vaults[0].loid
        r = app.create_instance(Placement(host.loid, vault))
        assert r.ok
        bmeta.advance(20000.0)
        inst = app.get_instance(r.loid)
        assert inst.attributes.get("completed_at") is not None


class TestSchedulingOntoCluster:
    def test_scheduler_places_across_workstations_and_cluster(self, bmeta):
        for i in range(2):
            bmeta.add_unix_host(f"ws{i}", "hpc",
                                MachineSpec(arch="sparc", os_name="SunOS"))
        bmeta.add_batch_host("cluster", "hpc", queue_kind="fcfs", nodes=4)
        app = cluster_class(bmeta)
        sched = bmeta.make_scheduler("random")
        outcome = sched.run([ObjectClassRequest(app, count=6)])
        assert outcome.ok
        hosts_used = {m.host_loid for m in
                      outcome.feedback.reserved_entries}
        assert len(hosts_used) >= 2
