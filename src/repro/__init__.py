"""repro — a reproduction of the Legion Resource Management System.

Chapin, Katramatos, Karpovich, Grimshaw, *The Legion Resource Management
System*, IPPS/SPDP Workshop on Job Scheduling Strategies for Parallel
Processing, 1999.

The package implements the paper's full resource-management infrastructure
— Host and Vault objects, non-forgeable reservations, the Collection
information database with its query grammar, Schedulers (Random, IRS, and
the "smarter" policies the paper anticipates), master/variant Schedules,
the Enactor, and the execution Monitor — on top of a deterministic
discrete-event metasystem simulator (machines, domains, wide-area network,
queue-management systems).

Entry point: :class:`repro.Metasystem`.  See README.md for a quickstart.
"""

from . import errors
from .chaos import (
    ChaosInjector,
    ChaosPlan,
    FaultEvent,
    ResilienceReport,
    RetryPolicy,
    generate_campaign,
    run_campaign,
)
from .hosts import (
    ALL_TYPES,
    BatchQueueHost,
    HostObject,
    LoadWalk,
    MachineSpec,
    ONE_SHOT_SPACE,
    ONE_SHOT_TIME,
    REUSABLE_SPACE,
    REUSABLE_TIME,
    ReservationToken,
    ReservationType,
    SimMachine,
    UnixHost,
)
from .collection import Collection, DataCollectionDaemon
from .economy import (
    BudgetManager,
    EconomyComparison,
    EconomyConfig,
    EconomyReport,
    EconomyScheduler,
    Market,
    SealedBidAuction,
    run_economy,
    run_economy_comparison,
)
from .enactor import Enactor, EnactResult
from .federation import (
    ConsistentHashRing,
    CollectionShard,
    FederatedCollection,
    FederationConfig,
    GossipDaemon,
)
from .metasystem import Metasystem
from .monitor import ExecutionMonitor, MigrationReport, Migrator
from .naming import LOID, ContextSpace, LOIDMinter
from .obs import MetricsRegistry, NullMetricsRegistry
from .objects import (
    ClassObject,
    Implementation,
    LegionObject,
    ObjectState,
    Placement,
)
from .schedule import (
    MasterSchedule,
    ScheduleFeedback,
    ScheduleMapping,
    ScheduleRequestList,
    VariantSchedule,
)
from .service import (
    PlacementQueue,
    RequestGateway,
    ServiceComparison,
    ServiceConfig,
    ServiceReport,
    TrafficGenerator,
    TrafficModel,
    WorkerPool,
    run_service,
    run_service_comparison,
)
from .scheduler import (
    IRSScheduler,
    KofNScheduler,
    LoadAwareScheduler,
    ObjectClassRequest,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
    SchedulingOutcome,
    StencilScheduler,
)
from .vaults import VaultObject

__version__ = "1.0.0"

__all__ = [
    "Metasystem",
    "errors",
    # naming
    "LOID", "LOIDMinter", "ContextSpace",
    # objects
    "LegionObject", "ObjectState", "ClassObject", "Implementation",
    "Placement",
    # hosts & reservations
    "HostObject", "UnixHost", "BatchQueueHost", "SimMachine", "MachineSpec",
    "LoadWalk", "ReservationType", "ReservationToken",
    "ONE_SHOT_SPACE", "REUSABLE_SPACE", "ONE_SHOT_TIME", "REUSABLE_TIME",
    "ALL_TYPES",
    # vaults
    "VaultObject",
    # collection
    "Collection", "DataCollectionDaemon",
    # federation
    "ConsistentHashRing", "CollectionShard", "FederatedCollection",
    "FederationConfig", "GossipDaemon",
    # schedules
    "ScheduleMapping", "MasterSchedule", "VariantSchedule",
    "ScheduleRequestList", "ScheduleFeedback",
    # schedulers
    "Scheduler", "SchedulingOutcome", "ObjectClassRequest",
    "RandomScheduler", "IRSScheduler", "LoadAwareScheduler",
    "RoundRobinScheduler", "StencilScheduler", "KofNScheduler",
    # enactor & monitor
    "Enactor", "EnactResult", "ExecutionMonitor", "Migrator",
    "MigrationReport",
    # observability
    "MetricsRegistry", "NullMetricsRegistry",
    # chaos
    "ChaosInjector", "ChaosPlan", "FaultEvent", "ResilienceReport",
    "RetryPolicy", "generate_campaign", "run_campaign",
    # economy
    "BudgetManager", "EconomyComparison", "EconomyConfig",
    "EconomyReport", "EconomyScheduler", "Market", "SealedBidAuction",
    "run_economy", "run_economy_comparison",
    # service
    "PlacementQueue", "RequestGateway", "ServiceComparison",
    "ServiceConfig", "ServiceReport", "TrafficGenerator", "TrafficModel",
    "WorkerPool", "run_service", "run_service_comparison",
]
