"""Exception hierarchy for the Legion RMS reproduction.

Every error raised by the library derives from :class:`LegionError` so callers
can catch library failures without catching programming errors.  The hierarchy
mirrors the paper's failure surfaces: reservation negotiation (section 3.1),
Collection queries (section 3.2), schedule enactment (section 3.4), and the
underlying simulated metasystem substrate.
"""

from __future__ import annotations


class LegionError(Exception):
    """Base class for all errors raised by this library.

    ``retryable`` classifies whether retrying the *same* operation after a
    backoff can plausibly succeed while the fault persists.  The
    :class:`~repro.chaos.retry.RetryPolicy` consults this flag; subclasses
    override it where the failure mode is transient.
    """

    #: may an idempotent retry of the same call succeed?
    retryable = False


# ---------------------------------------------------------------------------
# Simulation substrate
# ---------------------------------------------------------------------------

class SimulationError(LegionError):
    """Base class for discrete-event simulation kernel errors."""


class SimTimeError(SimulationError):
    """An event was scheduled in the past or with a negative delay."""


class ProcessError(SimulationError):
    """A simulated process misbehaved (e.g. yielded an unknown value)."""


# ---------------------------------------------------------------------------
# Network / transport
# ---------------------------------------------------------------------------

class NetworkError(LegionError):
    """Base class for simulated-network failures."""


class HostUnreachableError(NetworkError):
    """The destination object's host cannot be reached (partition/down).

    Not retryable by default: a partition or node failure persists on
    simulation timescales, so an immediate retry hits the same wall.
    (:class:`~repro.chaos.retry.RetryPolicy` has a ``retry_unreachable``
    knob for callers that expect fast repair.)
    """

    retryable = False


class MessageLostError(NetworkError):
    """A message was dropped by the simulated network.

    Retryable: loss is a per-message coin flip, so resending an idempotent
    request is exactly the right response.
    """

    retryable = True


class RPCError(NetworkError):
    """A remote method invocation failed at the callee."""


class CircuitOpenError(NetworkError):
    """A per-destination circuit breaker refused the call without sending.

    Deliberately **not** a subclass of :class:`HostUnreachableError`: the
    breaker is a *local* judgement that the destination has been failing,
    and the ``retry_unreachable`` knob must not resurrect it.  Not
    retryable — the whole point of the breaker is to fail fast instead of
    burning the retry budget against a destination known to be sick; the
    half-open probe (not the caller) decides when to try again.
    """

    retryable = False


# ---------------------------------------------------------------------------
# Naming / object runtime
# ---------------------------------------------------------------------------

class NamingError(LegionError):
    """Base class for LOID / context-space errors."""


class InvalidLOIDError(NamingError):
    """A LOID string or component sequence could not be parsed."""


class BindingError(NamingError):
    """Context-space lookup or bind failure."""


class ObjectError(LegionError):
    """Base class for Legion object lifecycle errors."""


class ObjectStateError(ObjectError):
    """Operation invalid for the object's current lifecycle state."""


class UnknownObjectError(ObjectError):
    """No object with the given LOID is known to the class/manager."""


class NoImplementationError(ObjectError):
    """A class has no implementation compatible with the target platform."""


# ---------------------------------------------------------------------------
# Hosts, vaults, reservations (paper section 3.1)
# ---------------------------------------------------------------------------

class ResourceError(LegionError):
    """Base class for Host/Vault resource errors."""


class ReservationError(ResourceError):
    """Base class for reservation-management failures."""


class ReservationDeniedError(ReservationError):
    """The Host refused to grant the requested reservation."""


class AdmissionRejected(ReservationDeniedError):
    """Load-aware site-autonomy refusal: the Host's admission controller
    turned the request away before it reached the reservation table —
    its pending-reservation queue is full or the machine is saturated.

    Table 1's "accept/reject" made load-aware.  Not retryable: an
    immediate retry lands on the same overloaded host; the Enactor
    should fall back to a variant schedule instead.
    """

    retryable = False


class InvalidReservationError(ReservationError):
    """A presented token is unknown, expired, cancelled, or forged."""


class PlacementPolicyError(ResourceError):
    """Local placement policy (site autonomy) rejected the request."""


class VaultIncompatibleError(ResourceError):
    """The requested vault is not reachable/compatible with the host."""


class InsufficientResourcesError(ResourceError):
    """The host lacks memory/CPU/slots to honor the request."""


# ---------------------------------------------------------------------------
# Collection (paper section 3.2)
# ---------------------------------------------------------------------------

class CollectionError(LegionError):
    """Base class for Collection failures."""


class QuerySyntaxError(CollectionError):
    """The query string does not conform to the Collection grammar."""


class QueryEvaluationError(CollectionError):
    """A syntactically valid query failed during evaluation."""


class AuthenticationError(CollectionError):
    """The caller is not allowed to update the data in the Collection."""


class NotAMemberError(CollectionError):
    """Update/leave for a LOID that never joined the Collection."""


# ---------------------------------------------------------------------------
# Schedules, Enactor, Monitor (paper sections 3.3-3.5)
# ---------------------------------------------------------------------------

class ScheduleError(LegionError):
    """Base class for schedule data-structure errors."""


class MalformedScheduleError(ScheduleError):
    """A schedule violates structural invariants (e.g. bad variant bitmap)."""


class EnactmentError(LegionError):
    """Base class for Enactor failures."""


class ReservationPhaseError(EnactmentError):
    """make_reservations failed for every master/variant schedule."""


class InstantiationPhaseError(EnactmentError):
    """enact_schedule failed after reservations had been obtained."""


class SchedulingError(LegionError):
    """A Scheduler could not produce any feasible schedule."""


class MigrationError(LegionError):
    """Object migration (deactivate / move OPR / reactivate) failed."""


class BudgetExceededError(SchedulingError):
    """An economic scheduler could not place within the user's remaining
    budget (no feasible host clears the auction under the spend cap).

    A subclass of :class:`SchedulingError` so the generic negotiate/enact
    wrapper degrades to a failed :class:`SchedulingOutcome` instead of
    crashing the placement loop."""


# ---------------------------------------------------------------------------
# Chaos / fault injection
# ---------------------------------------------------------------------------

class ChaosError(LegionError):
    """A fault action could not be applied or reverted (e.g. crashing a
    host that is already down, or a shard outage on an unfederated
    metasystem)."""


# ---------------------------------------------------------------------------
# Recovery / checkpointing
# ---------------------------------------------------------------------------

class RecoveryError(LegionError):
    """The recovery layer hit an invariant violation: a double lease
    grant, a checkpoint captured at a non-quiescent point, or a restore
    against a metasystem whose service tier is still running."""
