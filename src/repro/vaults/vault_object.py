"""Vault Objects — the generic persistent-storage abstraction.

"To be executed, a Legion object must have a Vault to hold its persistent
state in an Object Persistent Representation (OPR)" (section 2.1).  "The
current implementation of Vault Objects does not contain dynamic state to
the degree that the Host Object implementation does.  Vaults, therefore,
only participate in the scheduling process at the start, when they verify
that they are compatible with a Host.  They may, in the future, be
differentiated by the amount of storage available, cost per byte, security
policy, etc." (section 3.1).

We implement both: the 1999 behaviour (compatibility verification + OPR
store/retrieve/delete) *and* the anticipated differentiation (capacity
accounting, cost per byte, and a domain-scoped security policy), since the
forward-looking attributes feed scheduler experiments.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import (
    InsufficientResourcesError,
    UnknownObjectError,
    VaultIncompatibleError,
)
from ..naming.loid import LOID
from ..net.topology import NetLocation
from ..objects.base import LegionObject
from ..objects.opr import OPR
from ..obs.spans import NULL_SPANS

__all__ = ["VaultObject"]


class VaultObject(LegionObject):
    """A persistent store for OPRs, tied to a network location."""

    def __init__(self, loid: LOID, location: NetLocation,
                 capacity_bytes: float = 10e9,
                 cost_per_byte: float = 0.0,
                 allowed_domains: Optional[List[str]] = None):
        super().__init__(loid)
        self.location = location
        self.capacity_bytes = float(capacity_bytes)
        self.cost_per_byte = float(cost_per_byte)
        #: domains whose hosts may use this vault; None = any
        self.allowed_domains = (None if allowed_domains is None
                                else list(allowed_domains))
        self._oprs: Dict[LOID, OPR] = {}
        #: span tracer (wired by the Metasystem; inert by default)
        self.spans = NULL_SPANS
        self.stores = 0
        self.retrievals = 0
        self.attributes.update({
            "vault_domain": location.domain,
            "vault_capacity_bytes": self.capacity_bytes,
            "vault_cost_per_byte": self.cost_per_byte,
        })

    # -- scheduling-time participation -----------------------------------------
    def compatible_with(self, host) -> bool:
        """Verify compatibility with a Host (the vault's sole scheduling
        role in the paper).  Compatibility = the host's domain is permitted
        and the host itself lists this vault as reachable."""
        if (self.allowed_domains is not None
                and host.domain not in self.allowed_domains):
            return False
        return host.vault_ok(self.loid)

    # -- OPR management -----------------------------------------------------------
    @property
    def used_bytes(self) -> float:
        return float(sum(o.size_bytes for o in self._oprs.values()))

    @property
    def free_bytes(self) -> float:
        return self.capacity_bytes - self.used_bytes

    def store_opr(self, opr: OPR) -> None:
        """Persist (or overwrite with a newer version of) an OPR."""
        with self.spans.span_if_active("vault.store",
                                       vault=str(self.loid),
                                       nbytes=opr.size_bytes):
            existing = self._oprs.get(opr.loid)
            delta = opr.size_bytes - (existing.size_bytes if existing else 0)
            if delta > self.free_bytes:
                raise InsufficientResourcesError(
                    f"vault {self.loid}: {delta} bytes needed, "
                    f"{self.free_bytes:.0f} free")
            if existing is not None and opr.version < existing.version:
                raise VaultIncompatibleError(
                    f"vault {self.loid}: stale OPR v{opr.version} for "
                    f"{opr.loid} (have v{existing.version})")
            self._oprs[opr.loid] = opr.clone()
            self.stores += 1

    def retrieve_opr(self, loid: LOID) -> OPR:
        with self.spans.span_if_active("vault.retrieve",
                                       vault=str(self.loid)):
            opr = self._oprs.get(loid)
            if opr is None:
                raise UnknownObjectError(
                    f"vault {self.loid} holds no OPR for {loid}")
            self.retrievals += 1
            return opr.clone()

    def has_opr(self, loid: LOID) -> bool:
        return loid in self._oprs

    def delete_opr(self, loid: LOID) -> None:
        if loid not in self._oprs:
            raise UnknownObjectError(
                f"vault {self.loid} holds no OPR for {loid}")
        del self._oprs[loid]

    def opr_count(self) -> int:
        return len(self._oprs)

    def storage_cost(self, nbytes: float) -> float:
        return nbytes * self.cost_per_byte

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<VaultObject {self.loid} at {self.location} "
                f"oprs={len(self._oprs)}>")
