"""Vault Objects: persistent storage for Object Persistent Representations."""

from .vault_object import VaultObject

__all__ = ["VaultObject"]
