"""Network-Weather-Service-style forecasting for Collection injection."""

from .nws import (
    AdaptiveForecaster,
    ExponentialSmoothing,
    Forecaster,
    HostLoadPredictor,
    LastValue,
    RunningMean,
    SlidingWindowMean,
    SlidingWindowMedian,
)

__all__ = [
    "Forecaster", "LastValue", "RunningMean", "SlidingWindowMean",
    "SlidingWindowMedian", "ExponentialSmoothing", "AdaptiveForecaster",
    "HostLoadPredictor",
]
