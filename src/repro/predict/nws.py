"""Network-Weather-Service-style resource forecasting.

Paper section 3.2: "We plan to extend Collections to support function
injection — the ability for users to install code to dynamically compute new
description information ... This capability is especially important to users
of the Network Weather Service, which predicts future resource availability
based on statistical analysis of past behavior."

Following Wolski's NWS design, several simple forecasters run side by side
over each resource's measurement history, and an adaptive selector uses
whichever forecaster has had the lowest error *so far* on that series.  The
output plugs into a Collection as an injected computed attribute
(``$predicted_load``), which the load-aware Scheduler can consume — the E14
experiment.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Mapping, Optional, Sequence

import numpy as np

__all__ = [
    "Forecaster",
    "LastValue",
    "RunningMean",
    "SlidingWindowMean",
    "SlidingWindowMedian",
    "ExponentialSmoothing",
    "AdaptiveForecaster",
    "HostLoadPredictor",
]


class Forecaster:
    """Online one-step-ahead forecaster."""

    name = "abstract"

    def update(self, value: float) -> None:
        raise NotImplementedError

    def predict(self) -> float:
        """Forecast of the next value; NaN before any data arrives."""
        raise NotImplementedError


class LastValue(Forecaster):
    """Predict the most recent measurement."""

    name = "last"

    def __init__(self) -> None:
        self._last = float("nan")

    def update(self, value: float) -> None:
        self._last = float(value)

    def predict(self) -> float:
        return self._last


class RunningMean(Forecaster):
    """Predict the mean of the entire history."""

    name = "mean"

    def __init__(self) -> None:
        self._n = 0
        self._mean = 0.0

    def update(self, value: float) -> None:
        self._n += 1
        self._mean += (float(value) - self._mean) / self._n

    def predict(self) -> float:
        return self._mean if self._n else float("nan")


class SlidingWindowMean(Forecaster):
    """Predict the mean of the last ``window`` measurements."""

    def __init__(self, window: int = 10):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.name = f"win_mean({window})"
        self._buf: Deque[float] = deque(maxlen=window)

    def update(self, value: float) -> None:
        self._buf.append(float(value))

    def predict(self) -> float:
        if not self._buf:
            return float("nan")
        return sum(self._buf) / len(self._buf)


class SlidingWindowMedian(Forecaster):
    """Predict the median of the last ``window`` measurements — robust to
    the load spikes that wreck mean-based forecasts."""

    def __init__(self, window: int = 10):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.name = f"win_median({window})"
        self._buf: Deque[float] = deque(maxlen=window)

    def update(self, value: float) -> None:
        self._buf.append(float(value))

    def predict(self) -> float:
        if not self._buf:
            return float("nan")
        return float(np.median(list(self._buf)))


class ExponentialSmoothing(Forecaster):
    """Classic EWMA forecaster."""

    def __init__(self, alpha: float = 0.3):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.name = f"ewma({alpha})"
        self._state = float("nan")

    def update(self, value: float) -> None:
        value = float(value)
        if self._state != self._state:  # NaN
            self._state = value
        else:
            self._state = self.alpha * value + (1 - self.alpha) * self._state

    def predict(self) -> float:
        return self._state


def _default_bank() -> List[Forecaster]:
    return [
        LastValue(),
        RunningMean(),
        SlidingWindowMean(5),
        SlidingWindowMean(20),
        SlidingWindowMedian(5),
        SlidingWindowMedian(20),
        ExponentialSmoothing(0.3),
        ExponentialSmoothing(0.7),
    ]


class AdaptiveForecaster(Forecaster):
    """NWS-style selector: track every forecaster's cumulative absolute
    error and predict with the current winner."""

    name = "adaptive"

    def __init__(self, bank: Optional[Sequence[Forecaster]] = None):
        self.bank: List[Forecaster] = list(bank) if bank else _default_bank()
        self.errors = [0.0] * len(self.bank)
        self._updates = 0

    def update(self, value: float) -> None:
        value = float(value)
        for i, fc in enumerate(self.bank):
            pred = fc.predict()
            if pred == pred:  # not NaN
                self.errors[i] += abs(pred - value)
            fc.update(value)
        self._updates += 1

    def best_index(self) -> int:
        if self._updates < 2:
            return 0
        return int(np.argmin(self.errors))

    def predict(self) -> float:
        return self.bank[self.best_index()].predict()

    @property
    def best_name(self) -> str:
        return self.bank[self.best_index()].name


class HostLoadPredictor:
    """Per-host adaptive load forecasting, packaged for Collection
    injection.

    >>> predictor = HostLoadPredictor()
    >>> collection.inject_attribute("predicted_load", predictor.computed)

    Feed it measurements via :meth:`observe` (e.g. from a Data Collection
    Daemon sweep); ``$predicted_load`` then resolves to the forecast, or to
    the record's current ``host_load`` before any history exists.
    """

    def __init__(self, factory: Callable[[], Forecaster]
                 = AdaptiveForecaster):
        self._factory = factory
        self._per_host: Dict[str, Forecaster] = {}

    def observe(self, host_key: str, load: float) -> None:
        fc = self._per_host.get(host_key)
        if fc is None:
            fc = self._factory()
            self._per_host[host_key] = fc
        fc.update(load)

    def predict(self, host_key: str) -> float:
        fc = self._per_host.get(host_key)
        if fc is None:
            return float("nan")
        return fc.predict()

    def computed(self, record: Mapping) -> float:
        """Computed-attribute adapter for Collection.inject_attribute."""
        key = str(record.get("host_name", ""))
        pred = self.predict(key)
        if pred == pred:
            return pred
        return float(record.get("host_load", 0.0))
