"""EconomyReport / EconomyComparison: what the economy bought, exportable.

The deliverable of an economy campaign (GridSim-style broker evaluation,
PAPERS.md): per-user cost and budget state, deadline-miss rate, cost
overrun, auction efficiency — serialized with sorted keys and rounded
floats so a committed ``BENCH_economy.json`` is byte-stable across runs
of the same seeds.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["EconomyReport", "EconomyComparison"]


def _round(value: float) -> float:
    return round(float(value), 6)


@dataclass
class EconomyReport:
    """Aggregated outcome of one seeded economy campaign."""

    scheduler: str = "economy"
    mode: str = "cost"
    seed: int = 0
    chaos_profile: Optional[str] = None
    chaos_seed: int = 0
    guardrails_enabled: bool = False
    retry_enabled: bool = False

    users: int = 1
    budget: float = 0.0
    deadline: float = 0.0
    waves: int = 0
    per_wave: int = 0
    work: float = 0.0
    wave_interval: float = 0.0
    horizon: float = 0.0

    instances_requested: int = 0
    instances_created: int = 0
    instances_completed: int = 0
    deadline_met: int = 0
    deadline_missed: int = 0

    placement_attempts: int = 0
    placement_successes: int = 0
    budget_rejections: int = 0
    bid_escalations: int = 0

    #: ground-truth metered cost (accounting Ledger, host prices)
    total_cost: float = 0.0
    #: what users were charged (auction rates for bound instances)
    user_spend: float = 0.0
    cost_overrun: float = 0.0

    auction: Optional[Dict[str, Any]] = None
    per_user: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def deadline_miss_rate(self) -> float:
        """Missed / requested — never-created instances count as missed."""
        if self.instances_requested <= 0:
            return 0.0
        return self.deadline_missed / self.instances_requested

    @property
    def auction_efficiency(self) -> float:
        if not self.auction:
            return 1.0
        return float(self.auction.get("efficiency", 1.0))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scheduler": self.scheduler,
            "mode": self.mode,
            "seed": self.seed,
            "chaos_profile": self.chaos_profile,
            "chaos_seed": self.chaos_seed,
            "guardrails_enabled": self.guardrails_enabled,
            "retry_enabled": self.retry_enabled,
            "users": self.users,
            "budget": _round(self.budget),
            "deadline": _round(self.deadline),
            "waves": self.waves,
            "per_wave": self.per_wave,
            "work": _round(self.work),
            "wave_interval": _round(self.wave_interval),
            "horizon": _round(self.horizon),
            "instances_requested": self.instances_requested,
            "instances_created": self.instances_created,
            "instances_completed": self.instances_completed,
            "deadline_met": self.deadline_met,
            "deadline_missed": self.deadline_missed,
            "deadline_miss_rate": _round(self.deadline_miss_rate),
            "placement_attempts": self.placement_attempts,
            "placement_successes": self.placement_successes,
            "budget_rejections": self.budget_rejections,
            "bid_escalations": self.bid_escalations,
            "total_cost": _round(self.total_cost),
            "user_spend": _round(self.user_spend),
            "cost_overrun": _round(self.cost_overrun),
            "auction": self.auction,
            "per_user": self.per_user,
        }

    def to_json(self, **kwargs) -> str:
        kwargs.setdefault("indent", 2)
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **kwargs)

    def summary(self) -> str:
        lines = [
            f"economy campaign: scheduler={self.scheduler} "
            f"mode={self.mode} seed={self.seed} "
            f"chaos={self.chaos_profile or 'off'} "
            f"guardrails={'on' if self.guardrails_enabled else 'off'}",
            f"  instances: requested={self.instances_requested} "
            f"created={self.instances_created} "
            f"completed={self.instances_completed}",
            f"  deadline:  met={self.deadline_met} "
            f"missed={self.deadline_missed} "
            f"miss-rate={self.deadline_miss_rate:.3f}",
            f"  cost:      metered={self.total_cost:.4f} "
            f"user-spend={self.user_spend:.4f} "
            f"overrun={self.cost_overrun:.4f}",
        ]
        if self.auction:
            lines.append(
                f"  auction:   rounds={self.auction.get('rounds', 0)} "
                f"cleared={self.auction.get('cleared_rounds', 0)} "
                f"efficiency={self.auction_efficiency:.4f} "
                f"escalations={self.bid_escalations}")
        for name in sorted(self.per_user):
            u = self.per_user[name]
            lines.append(
                f"  user {name}: spent={u.get('spent', 0.0):.4f} "
                f"missed={u.get('missed', 0)}/{u.get('requested', 0)} "
                f"overrun={u.get('overrun', 0.0):.4f}")
        return "\n".join(lines)


@dataclass
class EconomyComparison:
    """Economy vs. baseline schedulers on the identical seeded world."""

    reports: Dict[str, EconomyReport] = field(default_factory=dict)
    #: baselines the economy must beat for the benchmark gate
    gate_baselines: List[str] = field(
        default_factory=lambda: ["random", "irs"])

    def report(self, name: str) -> EconomyReport:
        return self.reports[name]

    def beats(self, baseline: str) -> bool:
        """Strictly better on deadline-miss rate AND total metered cost."""
        econ = self.reports.get("economy")
        base = self.reports.get(baseline)
        if econ is None or base is None:
            return False
        return (econ.deadline_miss_rate < base.deadline_miss_rate
                and econ.total_cost < base.total_cost)

    @property
    def economy_beats_baselines(self) -> bool:
        """The BENCH gate: economy beats Random and IRS on both axes."""
        return all(self.beats(b) for b in self.gate_baselines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "economy_beats_baselines": self.economy_beats_baselines,
            "gate": {b: self.beats(b) for b in self.gate_baselines},
            "reports": {name: self.reports[name].to_dict()
                        for name in sorted(self.reports)},
        }

    def to_json(self, **kwargs) -> str:
        kwargs.setdefault("indent", 2)
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **kwargs)

    def summary(self) -> str:
        header = (f"{'scheduler':<12} {'miss-rate':>9} {'total-cost':>10} "
                  f"{'created':>7} {'completed':>9} {'spend':>9}")
        lines = [header, "-" * len(header)]
        for name in sorted(self.reports):
            r = self.reports[name]
            lines.append(
                f"{name:<12} {r.deadline_miss_rate:>9.3f} "
                f"{r.total_cost:>10.4f} {r.instances_created:>7} "
                f"{r.instances_completed:>9} {r.user_spend:>9.4f}")
        verdict = ("economy beats " + ", ".join(self.gate_baselines)
                   if self.economy_beats_baselines
                   else "economy does NOT beat all gate baselines")
        lines.append(verdict)
        return "\n".join(lines)
