"""Per-user budgets and deadlines: the demand side of the economy.

Nimrod/G frames grid scheduling as users spending a finite **budget**
against a **deadline** (PAPERS.md).  The :class:`BudgetManager` keeps one
:class:`UserAccount` per user and enforces the spend discipline the
economic Schedulers rely on:

* **hold** — funds are committed at schedule time, *before* any
  reservation is negotiated, at the auction-cleared rate x the advertised
  work.  A hold that would exceed the remaining budget raises
  :class:`~repro.errors.BudgetExceededError`;
* **bind** — once a placement enacts, each hold transfers onto the
  created instance together with its cleared price-per-cycle, so the user
  pays the rate agreed at reservation time even if the market reprices
  the host mid-run;
* **charge** — the accounting :class:`~repro.accounting.ledger.Ledger`
  meters actual cycles on completion/kill/deactivation; its post hook
  lands here, converts cycles to spend at the bound rate, and releases
  the hold;
* **refund** — failed or aborted placements release their holds in full
  (the Scheduler's wrapper loop calls :meth:`release_all` whenever a
  schedule attempt dies), so a crashing metasystem never leaks budget.

Invariant (pinned by a hypothesis property in ``tests/test_economy.py``):
``spent + committed <= budget`` for every account, at every point, as
long as metered cycles never exceed the advertised work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import BudgetExceededError
from ..naming.loid import LOID

__all__ = ["UserAccount", "BudgetManager"]


@dataclass
class UserAccount:
    """One user's budget, deadline, and spend ledger."""

    name: str
    budget: float = float("inf")
    #: relative completion deadline (virtual seconds from submission)
    deadline: float = float("inf")
    committed: float = 0.0
    spent: float = 0.0
    refunded: float = 0.0
    holds: int = 0
    charges: int = 0

    @property
    def available(self) -> float:
        """Funds not yet spent or held against pending placements."""
        return self.budget - self.committed - self.spent

    @property
    def overrun(self) -> float:
        """How far actual spend exceeded the budget (0.0 when within)."""
        return max(0.0, self.spent - self.budget)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "budget": self.budget if self.budget != float("inf") else None,
            "deadline": (self.deadline
                         if self.deadline != float("inf") else None),
            "committed": round(self.committed, 6),
            "spent": round(self.spent, 6),
            "refunded": round(self.refunded, 6),
            "holds": self.holds,
            "charges": self.charges,
            "overrun": round(self.overrun, 6),
        }


@dataclass
class _Binding:
    """An enacted instance's price agreement."""

    user: str
    rate: float          # cleared price per cycle
    hold: float          # estimate still committed (released on charge)


class BudgetManager:
    """Accounts, holds, and the ledger hook that turns cycles into spend."""

    def __init__(self, clock=None, metrics: Any = None):
        self._clock = clock or (lambda: 0.0)
        self.metrics = metrics
        self.accounts: Dict[str, UserAccount] = {}
        #: instance -> price agreement (bound at enactment)
        self._bindings: Dict[LOID, _Binding] = {}
        #: class -> user, for attributing baseline (non-auction) charges
        self._class_users: Dict[LOID, str] = {}
        self.rejections = 0

    # -- accounts -----------------------------------------------------------
    def create_user(self, name: str, budget: float = float("inf"),
                    deadline: float = float("inf")) -> UserAccount:
        if name in self.accounts:
            raise ValueError(f"user {name!r} already exists")
        if budget <= 0 or deadline <= 0:
            raise ValueError("budget and deadline must be positive")
        account = UserAccount(name, budget=budget, deadline=deadline)
        self.accounts[name] = account
        return account

    def ensure(self, name: str, budget: float = float("inf"),
               deadline: float = float("inf")) -> UserAccount:
        """Idempotent :meth:`create_user` (used by the auto-wired CLI path)."""
        account = self.accounts.get(name)
        if account is None:
            account = self.create_user(name, budget=budget,
                                       deadline=deadline)
        return account

    def account(self, name: str) -> UserAccount:
        account = self.accounts.get(name)
        if account is None:
            raise KeyError(f"no such user {name!r}")
        return account

    def register_class(self, class_loid: LOID, user: str) -> None:
        """Attribute future charges against ``class_loid`` to ``user``
        (how baseline schedulers, which never bind rates, get per-user
        cost accounting)."""
        self._class_users[class_loid] = user

    # -- holds --------------------------------------------------------------
    def hold(self, user: str, amount: float) -> None:
        """Commit funds for a pending placement.

        Raises :class:`BudgetExceededError` when the hold would push the
        account past its budget — the economic admission control.
        """
        account = self.account(user)
        if amount < 0:
            raise ValueError("hold amount must be >= 0")
        if amount > account.available + 1e-9:
            self.rejections += 1
            if self.metrics is not None:
                self.metrics.count("economy_budget_rejections_total",
                                   user=user)
            raise BudgetExceededError(
                f"user {user!r}: hold {amount:.4f} exceeds available "
                f"budget {account.available:.4f} "
                f"(budget {account.budget:.4f}, "
                f"spent {account.spent:.4f}, "
                f"committed {account.committed:.4f})")
        account.committed += amount
        account.holds += 1
        if self.metrics is not None:
            self.metrics.count("economy_budget_held_total", amount,
                               user=user)

    def release(self, user: str, amount: float) -> None:
        """Refund a hold (failed/aborted placement)."""
        account = self.account(user)
        released = min(amount, account.committed)
        account.committed -= released
        account.refunded += released
        if self.metrics is not None:
            self.metrics.count("economy_budget_refunded_total", released,
                               user=user)

    def bind_instance(self, instance_loid: LOID, user: str, rate: float,
                      hold: float) -> None:
        """Transfer a hold onto an enacted instance at its cleared rate."""
        self._bindings[instance_loid] = _Binding(user=user, rate=rate,
                                                 hold=hold)

    def binding_of(self, instance_loid: LOID
                   ) -> Optional[Tuple[str, float]]:
        binding = self._bindings.get(instance_loid)
        if binding is None:
            return None
        return binding.user, binding.rate

    # -- the ledger hook ----------------------------------------------------
    def on_charge(self, record: Any) -> None:
        """Ledger post hook: convert metered cycles into user spend.

        Auction-bound instances pay their cleared rate; anything else is
        attributed through :meth:`register_class` at the metered price.
        """
        binding = self._bindings.get(record.instance_loid)
        if binding is not None:
            account = self.account(binding.user)
            amount = record.cycles * binding.rate
            # the hold is released on the first (usually only) charge;
            # later legs (migration) just add spend
            if binding.hold > 0:
                released = min(binding.hold, account.committed)
                account.committed -= released
                binding.hold = 0.0
        else:
            user = self._class_users.get(record.class_loid)
            if user is None:
                return
            account = self.account(user)
            amount = record.amount
        account.spent += amount
        account.charges += 1
        if self.metrics is not None:
            self.metrics.count("economy_budget_spent_total", amount,
                               user=account.name)

    def attach_ledger(self, ledger: Any) -> None:
        """Install :meth:`on_charge` as the ledger's post hook."""
        ledger.on_post = self.on_charge

    # -- reporting ----------------------------------------------------------
    @property
    def total_spent(self) -> float:
        return sum(a.spent for a in self.accounts.values())

    @property
    def total_committed(self) -> float:
        return sum(a.committed for a in self.accounts.values())

    def overrun_users(self) -> List[str]:
        return sorted(name for name, a in self.accounts.items()
                      if a.overrun > 0)

    def to_dict(self) -> Dict[str, Any]:
        return {name: self.accounts[name].to_dict()
                for name in sorted(self.accounts)}
