"""Computational-economy scheduling: budgets, deadlines, auctions.

ROADMAP item 3 — a Nimrod/G-style economy layered on the accounting
seed.  Hosts publish ask prices discovered by a seeded market daemon
(:mod:`~repro.economy.market`), reservations clear through sealed-bid
auctions (:mod:`~repro.economy.auction`), users spend finite budgets
against deadlines (:mod:`~repro.economy.budget`), and two
optimization-mode schedulers bid inside the budget/deadline box
(:mod:`~repro.economy.sched`).  Campaigns and reports
(:mod:`~repro.economy.campaign`, :mod:`~repro.economy.report`) evaluate
the economy against the Random/IRS baselines, GridSim-style.

Enable via :meth:`repro.metasystem.Metasystem.enable_economy` or
``TestbedSpec(economy=True)``; drive from the CLI with
``legion-sim economy``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .auction import Ask, AuctionResult, SealedBidAuction
from .budget import BudgetManager, UserAccount
from .campaign import run_economy, run_economy_comparison
from .config import EconomyConfig
from .market import Market
from .report import EconomyComparison, EconomyReport
from .sched import EconomyScheduler

__all__ = [
    "Ask",
    "AuctionResult",
    "BudgetManager",
    "EconomyComparison",
    "EconomyConfig",
    "EconomyReport",
    "EconomyScheduler",
    "EconomySuite",
    "Market",
    "SealedBidAuction",
    "UserAccount",
    "run_economy",
    "run_economy_comparison",
]


@dataclass
class EconomySuite:
    """Everything :meth:`Metasystem.enable_economy` installs, in one bag."""

    config: EconomyConfig
    market: Market
    auction: SealedBidAuction
    budgets: BudgetManager
    ledger: object  # repro.accounting.Ledger (avoids an import cycle)
