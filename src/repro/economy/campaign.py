"""run_economy / run_economy_comparison: seeded economy experiments.

Mirrors :func:`repro.chaos.campaign.run_campaign`: build the standard
testbed, enable the economy (market pricing + budgets active for *every*
scheduler so metered costs are comparable), optionally arm a chaos
campaign and the guardrails, drive per-user placement waves, drain, and
aggregate an :class:`~repro.economy.report.EconomyReport`.

Deadline semantics are Nimrod/G's experiment deadline: each user's clock
starts at their first submission (t=0 here) and every one of their
instances must complete within ``deadline`` virtual seconds of that —
late completions *and* instances that were never created both count as
misses.  The comparison runner replays the identical seeded world under
Random, IRS, cost-aware, and the economy scheduler; common random
numbers make the deltas pure policy.

Imports of the testbed/metasystem layers happen inside the functions to
keep ``repro.economy`` importable without a cycle.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..errors import LegionError
from .report import EconomyComparison, EconomyReport

__all__ = ["run_economy", "run_economy_comparison"]

#: scheduler kinds the comparison runner knows how to drive
BASELINES = ("random", "irs", "cost")


def _user_names(users: int) -> List[str]:
    return [f"u{i}" for i in range(users)]


def run_economy(scheduler: str = "economy",
                mode: str = "cost",
                seed: int = 0,
                chaos_profile: Optional[str] = None,
                chaos_seed: int = 0,
                guardrails: bool = False,
                retry: bool = False,
                users: int = 2,
                budget: float = 40.0,
                deadline: float = 900.0,
                waves: int = 6,
                per_wave: int = 2,
                work: float = 250.0,
                wave_interval: float = 90.0,
                deadline_safety: float = 0.6,
                n_domains: int = 3,
                hosts_per_domain: int = 6,
                platform_mix: int = 3,
                background_load: float = 0.5,
                drain_time: float = 4000.0,
                meta: Any = None) -> EconomyReport:
    """Run one seeded economy campaign and return its EconomyReport.

    ``scheduler`` is ``"economy"`` (auction-cleared, per-user
    budget/deadline boxes, ``mode`` selects time- or cost-optimize) or a
    baseline kind (``random``/``irs``/``cost``); the economy layer is
    enabled either way so every run meters identical market prices.
    """
    from ..scheduler.base import ObjectClassRequest
    from ..workload.testbed import (
        TestbedSpec,
        build_testbed,
        implementations_for_all_platforms,
    )

    if users < 1:
        raise ValueError("users must be >= 1")
    if meta is None:
        meta = build_testbed(TestbedSpec(
            seed=seed, n_domains=n_domains,
            hosts_per_domain=hosts_per_domain,
            platform_mix=platform_mix,
            background_load_mean=background_load,
            economy=True))
        meta.place_collection("dom0")
        meta.place_enactor("dom0")
    suite = meta.enable_economy()
    horizon = waves * wave_interval
    if guardrails:
        meta.enable_guardrails()
    if retry:
        meta.enable_retries()
    injector = None
    if chaos_profile:
        injector = meta.start_chaos(profile=chaos_profile,
                                    chaos_seed=chaos_seed,
                                    horizon=horizon)

    names = _user_names(users)
    apps: Dict[str, Any] = {}
    scheds: Dict[str, Any] = {}
    baseline_sched = None
    for name in names:
        suite.budgets.ensure(name, budget=budget, deadline=deadline)
        app = meta.create_class(f"econ-app-{name}",
                                implementations_for_all_platforms(),
                                work_units=work)
        apps[name] = app
        suite.budgets.register_class(app.loid, name)
        if scheduler == "economy":
            scheds[name] = meta.make_scheduler(
                "economy", mode=mode, user=name,
                deadline_safety=deadline_safety)
        else:
            if baseline_sched is None:
                if scheduler == "cost":
                    baseline_sched = meta.make_scheduler(
                        "cost", deadline=deadline)
                else:
                    baseline_sched = meta.make_scheduler(scheduler)
            scheds[name] = baseline_sched

    report = EconomyReport(
        scheduler=scheduler,
        mode=mode if scheduler == "economy" else "n/a",
        seed=seed, chaos_profile=chaos_profile, chaos_seed=chaos_seed,
        guardrails_enabled=guardrails, retry_enabled=retry,
        users=users, budget=budget, deadline=deadline,
        waves=waves, per_wave=per_wave, work=work,
        wave_interval=wave_interval, horizon=horizon,
        instances_requested=users * waves * per_wave)

    #: (user, instance_loid, submitted_at) for deadline audit
    placed: List[Tuple[str, Any, float]] = []
    t0 = meta.now
    for _wave in range(waves):
        for name in names:
            report.placement_attempts += 1
            try:
                outcome = scheds[name].run(
                    [ObjectClassRequest(apps[name], count=per_wave)])
            except LegionError:
                outcome = None
            if outcome is not None and outcome.ok:
                report.placement_successes += 1
                report.instances_created += len(outcome.created)
                now = meta.now
                for loid in outcome.created:
                    placed.append((name, loid, now))
        meta.advance(wave_interval)

    if meta.now < t0 + horizon:
        meta.advance(t0 + horizon - meta.now)
    if injector is not None:
        injector.teardown()

    # drain: let surviving jobs run out on a fault-free world
    stop = meta.now + drain_time
    while meta.now < stop:
        if not any(host.machine.jobs for host in meta.hosts):
            break
        meta.advance(50.0)

    # deadline audit: completion within the user's experiment deadline
    per_user: Dict[str, Dict[str, Any]] = {
        name: {"requested": waves * per_wave, "created": 0,
               "met": 0, "missed": 0}
        for name in names}
    for name, loid, _submitted in placed:
        per_user[name]["created"] += 1
        instance = apps[name].instances.get(loid)
        completed = (instance.attributes.get("completed_at")
                     if instance is not None else None)
        if completed is not None and completed - t0 <= deadline:
            per_user[name]["met"] += 1
            report.deadline_met += 1
        if completed is not None:
            report.instances_completed += 1
    for name in names:
        u = per_user[name]
        u["missed"] = u["requested"] - u["met"]
        account = suite.budgets.account(name)
        u["spent"] = round(account.spent, 6)
        u["overrun"] = round(account.overrun, 6)
        u["miss_rate"] = round(u["missed"] / max(1, u["requested"]), 6)
    report.deadline_missed = (report.instances_requested
                              - report.deadline_met)
    report.per_user = per_user

    report.total_cost = round(suite.ledger.total, 6)
    report.user_spend = round(suite.budgets.total_spent, 6)
    report.cost_overrun = round(
        sum(a.overrun for a in suite.budgets.accounts.values()), 6)
    report.budget_rejections = suite.budgets.rejections
    if scheduler == "economy":
        report.auction = suite.auction.to_dict()
        report.bid_escalations = sum(s.escalations
                                     for s in scheds.values())
    meta.metrics.set_gauge("economy_deadline_miss_rate",
                           report.deadline_miss_rate,
                           help="missed / requested for the last campaign",
                           scheduler=scheduler)
    return report


def run_economy_comparison(mode: str = "cost",
                           baselines: Tuple[str, ...] = BASELINES,
                           **kwargs) -> EconomyComparison:
    """Replay the identical seeded campaign under the economy scheduler
    and each baseline; the report dict feeds ``BENCH_economy.json``."""
    comparison = EconomyComparison()
    comparison.reports["economy"] = run_economy(scheduler="economy",
                                                mode=mode, **kwargs)
    for kind in baselines:
        comparison.reports[kind] = run_economy(scheduler=kind, **kwargs)
    return comparison
