"""Economic schedulers: optimize time or cost inside a budget/deadline box.

Nimrod/G's two classic optimization modes (PAPERS.md), built on
:class:`~repro.accounting.cost_sched.CostAwareScheduler`'s estimate
machinery and cleared through the sealed-bid
:class:`~repro.economy.auction.SealedBidAuction`:

* ``mode="cost"`` — **cost-minimize within deadline**: among hosts whose
  estimated completion meets the user's remaining deadline, award the
  reservation to the lowest ask (the auction's natural clearing).  As the
  deadline shrinks the feasible set drains toward faster, pricier hosts
  on its own.
* ``mode="time"`` — **time-minimize within budget**: among hosts whose
  ask fits under the current bid ceiling, take the fastest estimated
  completion; the auction clears among the tied-fastest tier so the user
  still pays the cheapest price that buys that speed.

Both modes bid under a **DBC-style adaptive ceiling**: early in the
user's deadline window the scheduler offers only a thrifty fraction
``1 / (1 + bid_escalation)`` of the affordable rate, then escalates
linearly to the full affordable rate once ``escalation_onset`` of the
deadline has elapsed — spend reluctantly while there is slack, pay
whatever the budget allows when time runs out.

Budget discipline: every awarded entry takes a **hold** of
``cleared_rate x advertised_work`` before reservations are negotiated
(raising :class:`~repro.errors.BudgetExceededError` when the account
cannot cover it); the wrapper releases all holds of a failed attempt and
binds each created instance to its cleared rate on success, so the
:class:`~repro.economy.budget.BudgetManager` charges actual cycles at
auction prices and never lets spend + holds exceed the budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..accounting.cost_sched import CostAwareScheduler
from ..collection.records import CollectionRecord
from ..errors import BudgetExceededError, SchedulingError
from ..naming.loid import LOID
from ..schedule.mapping import ScheduleMapping
from ..schedule.schedule import (
    MasterSchedule,
    ScheduleRequestList,
    VariantSchedule,
)
from ..scheduler.base import ObjectClassRequest, SchedulingOutcome
from .auction import Ask
from .budget import BudgetManager

__all__ = ["EconomyScheduler"]


@dataclass
class _PendingBid:
    """One awarded entry, not yet enacted: the money at stake."""

    user: str
    work: float
    hold: float                      # committed = rate x work
    rate: float                      # cleared price per cycle (master host)
    #: affordable rates per candidate host (price-protects variant swaps)
    rate_by_host: Dict[str, float] = field(default_factory=dict)


class EconomyScheduler(CostAwareScheduler):
    """Budget/deadline-boxed placement cleared by sealed-bid auction."""

    def __init__(self, *args, budgets: BudgetManager, auction,
                 market=None, user: str = "default", mode: str = "cost",
                 bid_escalation: float = 0.5,
                 escalation_onset: float = 0.5,
                 deadline_safety: float = 0.6, **kwargs):
        super().__init__(*args, **kwargs)
        if mode not in ("cost", "time"):
            raise ValueError("mode must be 'cost' or 'time'")
        if not 0 < deadline_safety <= 1.0:
            raise ValueError("deadline_safety must be in (0, 1]")
        self.budgets = budgets
        self.auction = auction
        self.market = market
        #: completion estimates must fit inside this fraction of the
        #: remaining deadline — headroom for estimate error, background
        #: load growth, and (under chaos) a re-run after a host crash
        self.deadline_safety = deadline_safety
        self.user = user
        self.mode = mode
        self.bid_escalation = bid_escalation
        self.escalation_onset = escalation_onset
        #: virtual time the user's deadline clock started (first run)
        self._t0: Optional[float] = None
        #: bids awaiting enactment, in master-schedule entry order
        self._pending: List[_PendingBid] = []
        self.escalations = 0

    # -- deadline pressure --------------------------------------------------
    def _now(self) -> float:
        return self.transport.sim.now

    def deadline_remaining(self) -> float:
        """Virtual seconds left on the user's deadline."""
        deadline = self.budgets.account(self.user).deadline
        if deadline == float("inf"):
            return float("inf")
        t0 = self._t0 if self._t0 is not None else self._now()
        return deadline - (self._now() - t0)

    def bid_ceiling_factor(self) -> float:
        """DBC escalation: fraction of the affordable rate we bid now."""
        thrift = 1.0 / (1.0 + self.bid_escalation)
        deadline = self.budgets.account(self.user).deadline
        if deadline == float("inf") or self.bid_escalation <= 0:
            return 1.0
        t0 = self._t0 if self._t0 is not None else self._now()
        elapsed = (self._now() - t0) / deadline
        onset = self.escalation_onset
        if elapsed <= onset:
            return thrift
        pressure = min(1.0, (elapsed - onset) / max(1e-9, 1.0 - onset))
        if pressure > 0:
            self.escalations += 1
        return thrift + (1.0 - thrift) * pressure

    # -- asks ----------------------------------------------------------------
    def _ask_of(self, record: CollectionRecord) -> float:
        value = record.get("host_ask_price")
        if value is None:
            value = record.get("host_price", 0.0)
        return float(value)

    def _round_ask(self, record: CollectionRecord,
                   assigned: Dict[LOID, int]) -> float:
        """The record's ask inflated by this round's own awards to the
        same host — the local mirror of the market's demand bump, since
        the Collection record we hold is a snapshot."""
        ask = self._ask_of(record)
        n = assigned.get(record.member, 0)
        if n and self.market is not None and self.market.demand_bump > 0:
            ask *= (1.0 + self.market.demand_bump) ** n
        return round(ask, 6)

    # -- hold bookkeeping ----------------------------------------------------
    def release_pending(self) -> None:
        """Refund every hold of a not-yet-enacted attempt."""
        for bid in self._pending:
            self.budgets.release(bid.user, bid.hold)
        self._pending = []

    # -- placement ------------------------------------------------------------
    def compute_schedule(self, requests: Sequence[ObjectClassRequest]
                         ) -> ScheduleRequestList:
        # a recomputation abandons the previous attempt's holds first,
        # otherwise the wrapper's retries would bleed the budget dry
        self.release_pending()
        if self._t0 is None:
            self._t0 = self._now()
        account = self.budgets.account(self.user)
        remaining_deadline = self.deadline_remaining()
        ceiling_factor = self.bid_ceiling_factor()

        entries: List[ScheduleMapping] = []
        alternates: List[List[ScheduleMapping]] = []
        pending: List[_PendingBid] = []
        assigned: Dict[LOID, int] = {}
        metrics = self.transport.metrics
        try:
            for request in requests:
                class_obj = request.class_obj
                records = self.viable_hosts(
                    class_obj, extra_query="$host_slots_free > 0")
                records = [r for r in records
                           if r.get("host_health") != "down"]
                if not records:
                    raise SchedulingError(
                        f"no viable hosts for class {class_obj.name!r}")
                work = self._work_of(request)
                self.budgets.register_class(class_obj.loid, self.user)
                for _i in range(request.count):
                    # the budget box: most we can pay per cycle right now
                    affordable = account.available / max(work, 1e-9)
                    ceiling = affordable * ceiling_factor
                    candidates, pool = self._candidates(
                        records, work, assigned, remaining_deadline,
                        ceiling)
                    if not candidates:
                        # escalate once to the full affordable rate
                        # before giving up (deadline-pressure override)
                        if ceiling < affordable:
                            self.escalations += 1
                            candidates, pool = self._candidates(
                                records, work, assigned,
                                remaining_deadline, affordable)
                            ceiling = affordable
                    if not candidates:
                        raise BudgetExceededError(
                            f"user {self.user!r}: no host asks <= "
                            f"affordable rate {affordable:.6f} "
                            f"(budget available {account.available:.4f}, "
                            f"work {work:.2f})")
                    result = self.auction.clear(
                        [Ask(r.member, self._round_ask(r, assigned),
                             record=r)
                         for r in candidates],
                        ceiling=ceiling)
                    best = result.winner.record
                    rate = result.clearing_price
                    hold = round(rate * work, 6)
                    self.budgets.hold(self.user, hold)
                    assigned[best.member] = assigned.get(best.member, 0) + 1
                    if self.market is not None:
                        # demand signal: republish the winner's ask so
                        # concurrent bidders see the award immediately
                        self.market.note_award(best.member)
                    vaults = self.compatible_vaults_of(best)
                    if not vaults:
                        raise SchedulingError(
                            f"host {best.member} advertises no compatible "
                            f"vaults")
                    entries.append(ScheduleMapping(
                        class_obj.loid, best.member, vaults[0]))
                    # alternates: next-best from the ranked affordable
                    # pool, price-protected at the cleared rate (a
                    # variant swap never costs the user more than the
                    # agreed master rate)
                    rate_by_host = {str(best.member): rate}
                    alts = []
                    runners = [r for r in pool
                               if r.member != best.member]
                    for record in runners[: self.n_variants]:
                        v = self.compatible_vaults_of(record)
                        if not v:
                            continue
                        alts.append(ScheduleMapping(
                            class_obj.loid, record.member, v[0]))
                        rate_by_host[str(record.member)] = round(
                            min(self._ask_of(record), rate), 6)
                    alternates.append(alts)
                    pending.append(_PendingBid(
                        user=self.user, work=work, hold=hold, rate=rate,
                        rate_by_host=rate_by_host))
                    metrics.count("economy_bids_total", mode=self.mode,
                                  user=self.user)
        except Exception:
            # abandon this attempt's holds before propagating
            for bid in pending:
                self.budgets.release(bid.user, bid.hold)
            raise
        self._pending = pending

        label = f"economy-{self.mode}"
        master = MasterSchedule(entries, label=label)
        for v in range(self.n_variants):
            replacements = {
                j: alts[v] for j, alts in enumerate(alternates)
                if v < len(alts) and not alts[v].same_target(entries[j])}
            if replacements:
                master.add_variant(VariantSchedule(
                    replacements, label=f"{label}-alt-{v + 1}"))
        return ScheduleRequestList([master], label=label)

    def _candidates(self, records, work, assigned, remaining_deadline,
                    ceiling):
        """Mode-dependent auction tier plus the ranked fallback pool.

        Returns ``(tier, pool)``: ``tier`` is the candidate set handed to
        the auction; ``pool`` is every affordable record ranked by the
        mode's preference, from which variant schedules are drawn (the
        tier can be a single host, but enactment still needs fallbacks).
        """
        # never overcommit a host past its advertised free slots: piling
        # this round's award onto an already-chosen cheap host slows every
        # job there AND drives its ask up before the work even lands
        records = [r for r in records
                   if assigned.get(r.member, 0)
                   < int(r.get("host_slots_free", 1))]
        # risk spreading: while untouched hosts remain this round, don't
        # stack a second award on one — a single host failure then costs
        # at most one instance (and the stacked jobs would contend anyway)
        fresh = [r for r in records if not assigned.get(r.member, 0)]
        if fresh:
            records = fresh
        affordable = [r for r in records
                      if self._round_ask(r, assigned) <= ceiling]
        if not affordable:
            return [], []

        def completion(r):
            return self.estimated_completion(r, work,
                                             assigned.get(r.member, 0))

        feasible = [r for r in affordable
                    if completion(r)
                    <= remaining_deadline * self.deadline_safety]
        if self.mode == "cost":
            tier = feasible
            pool = sorted(feasible or affordable,
                          key=lambda r: (self._round_ask(r, assigned),
                                         completion(r), str(r.member)))
            if not tier:
                # deadline unreachable: degrade to the fastest affordable
                # tier so the run still completes (matching the parent's
                # degrade semantics)
                pool = sorted(affordable,
                              key=lambda r: (completion(r),
                                             self._round_ask(r, assigned),
                                             str(r.member)))
                tier = feasible
        else:
            pool = sorted(feasible or affordable,
                          key=lambda r: (completion(r),
                                         self._round_ask(r, assigned),
                                         str(r.member)))
            tier = []
        if not tier:
            # fastest tier: everything tied with the front of the pool
            best_t = completion(pool[0])
            tier = [r for r in pool if completion(r) <= best_t + 1e-9]
        return tier, pool

    # -- the wrapper, with refund/bind hooks --------------------------------
    def run(self, requests: Sequence[ObjectClassRequest],
            reservation_duration: float = 3600.0,
            rollback_on_failure: bool = True) -> SchedulingOutcome:
        outcome = super().run(requests,
                              reservation_duration=reservation_duration,
                              rollback_on_failure=rollback_on_failure)
        metrics = self.transport.metrics
        if outcome.ok and outcome.feedback is not None:
            reserved = outcome.feedback.reserved_entries
            for bid, mapping, loid in zip(self._pending, reserved,
                                          outcome.created):
                rate = bid.rate_by_host.get(str(mapping.host_loid),
                                            bid.rate)
                self.budgets.bind_instance(loid, bid.user, rate, bid.hold)
            self._pending = []
            metrics.count("economy_placements_total", mode=self.mode,
                          outcome="ok")
        else:
            # failed or partially-failed placement: refund everything
            self.release_pending()
            metrics.count("economy_placements_total", mode=self.mode,
                          outcome="failed")
        return outcome
