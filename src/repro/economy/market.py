"""Resource price discovery: hosts publish ask prices into the Collection.

The supply side of the computational economy.  Each enrolled host gets a
**base ask** derived from its hardware (faster machines charge a speed
premium, the GRACE "resource owners set prices" idea from Nimrod/G), and
a seeded, deterministic **repricing daemon** adjusts the ask with demand:

    ask = base x (1 + load_factor x load) x (1 + util_factor x busy/slots)
              x (1 +- jitter)

The adjusted ask is written to ``host.price`` (so the accounting Ledger
meters at the market rate) and published as ``host_ask_price`` in the
host's Collection record (so Schedulers can bid against it at query
time).  All randomness draws from the dedicated ``("economy", "market")``
stream; asks are rounded to 6 decimals, keeping every exported report
byte-stable for a fixed seed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["Market"]


class Market:
    """Per-host ask pricing plus the periodic repricing daemon."""

    def __init__(self, sim: Any, rng: Any = None,
                 base_price: float = 0.01,
                 speed_premium: float = 1.0,
                 load_factor: float = 0.25,
                 util_factor: float = 0.5,
                 repricing_interval: float = 60.0,
                 repricing_jitter: float = 0.05,
                 demand_bump: float = 0.25,
                 metrics: Any = None, spans: Any = None):
        if base_price <= 0:
            raise ValueError("base_price must be positive")
        self.sim = sim
        self.rng = rng
        self.base_price = base_price
        self.speed_premium = speed_premium
        self.load_factor = load_factor
        self.util_factor = util_factor
        self.repricing_interval = repricing_interval
        self.repricing_jitter = repricing_jitter
        self.demand_bump = demand_bump
        self.metrics = metrics
        self.spans = spans
        self._hosts: List[Any] = []
        self._by_loid: Dict[Any, Any] = {}
        self._base: Dict[Any, float] = {}
        self.repricings = 0
        self.awards = 0
        self._running = False

    # -- enrollment ---------------------------------------------------------
    def base_ask_for(self, host: Any) -> float:
        """The demand-independent floor price for one host: a speed-1.0
        machine asks ``base_price`` per cycle; faster hardware charges a
        linear premium per unit of extra speed."""
        speed = float(host.machine.spec.speed)
        return round(self.base_price
                     * (1.0 + self.speed_premium * max(0.0, speed - 1.0)),
                     6)

    def enroll(self, host: Any) -> float:
        """Price a host into the market and publish its initial ask."""
        base = self.base_ask_for(host)
        self._base[host.loid] = base
        self._hosts.append(host)
        self._by_loid[host.loid] = host
        self._publish(host, base)
        return base

    def _publish(self, host: Any, ask: float) -> None:
        host.price = ask
        host.attributes.set("host_ask_price", ask, now=self.sim.now)
        # refresh the Collection record so queries see the new ask
        host.reassess()

    def ask_of(self, host: Any) -> float:
        return float(host.price)

    def note_award(self, host_loid: Any) -> None:
        """Demand signal: a reservation auction just awarded this host,
        so its *advertised ask* rises immediately (before the work even
        lands) and the refreshed Collection record steers concurrent
        bidders elsewhere.  Only the ask moves — ``host.price``, the
        metered billing rate, stays anchored to real load/utilization by
        the repricing sweeps, which also re-anchor the ask once the
        awarded job *is* the load."""
        host = self._by_loid.get(host_loid)
        if host is None or self.demand_bump <= 0:
            return
        self.awards += 1
        ask = float(host.attributes.get("host_ask_price", host.price))
        host.attributes.set("host_ask_price",
                            round(ask * (1.0 + self.demand_bump), 6),
                            now=self.sim.now)
        host.reassess()
        if self.metrics is not None:
            self.metrics.count("economy_demand_bumps_total")

    # -- repricing ----------------------------------------------------------
    def reprice(self) -> None:
        """One repricing sweep over every enrolled, live host."""
        for host in self._hosts:
            if not host.machine.up:
                continue
            base = self._base.get(host.loid)
            if base is None:
                continue
            load = max(0.0, float(host.machine.load_average))
            busy = 1.0 - host.free_slots / max(1, host.slots)
            ask = base * (1.0 + self.load_factor * load) \
                       * (1.0 + self.util_factor * busy)
            if self.repricing_jitter > 0 and self.rng is not None:
                ask *= 1.0 + float(self.rng.uniform(
                    -self.repricing_jitter, self.repricing_jitter))
            ask = round(max(ask, base * 0.5), 6)
            self._publish(host, ask)
            if self.metrics is not None:
                self.metrics.observe("economy_ask_price", ask,
                                     buckets=(0.005, 0.01, 0.02, 0.04,
                                              0.08, 0.16))
        self.repricings += 1
        if self.metrics is not None:
            self.metrics.count("economy_repricings_total")

    def start(self) -> "Market":
        """Begin periodic repricing on the simulator (idempotent)."""
        if self._running or self.repricing_interval <= 0:
            return self
        self._running = True

        def tick():
            if not self._running:
                return
            self.reprice()
            self.sim.schedule(self.repricing_interval, tick)

        self.sim.schedule(self.repricing_interval, tick)
        return self

    def stop(self) -> None:
        self._running = False

    def __len__(self) -> int:
        return len(self._hosts)
