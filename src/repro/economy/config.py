"""EconomyConfig: one knob bundle for the computational-economy layer.

Prices are per-cycle (the Ledger's unit); deadlines and repricing
intervals are virtual seconds.  Defaults are sized against the standard
testbed (host speeds 1.0-2.0, ~1 work-unit apps): a speed-1.0 machine
asks 0.01/cycle at idle, so a unit of work costs about a cent and a
100-unit budget funds ~10k placements — roomy unless an experiment
deliberately starves it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EconomyConfig"]


@dataclass(frozen=True)
class EconomyConfig:
    """Parameters for :meth:`repro.metasystem.Metasystem.enable_economy`."""

    # -- market (supply side) ----------------------------------------------
    #: ask price per cycle for a speed-1.0 host at idle
    base_price: float = 0.01
    #: extra ask per unit of speed above 1.0 (faster hardware costs more)
    speed_premium: float = 1.0
    #: ask multiplier contribution per unit of machine load average
    load_factor: float = 0.25
    #: ask multiplier contribution at full slot utilization
    util_factor: float = 0.5
    #: repricing daemon period on the virtual clock (<= 0 disables)
    repricing_interval: float = 60.0
    #: symmetric relative noise on each repricing (seeded, deterministic)
    repricing_jitter: float = 0.05
    #: immediate relative ask increase when an auction awards a host a
    #: reservation (demand signal; the next sweep re-anchors to load)
    demand_bump: float = 0.25

    # -- auction (clearing) ------------------------------------------------
    #: "first" — winner pays own ask; "second" — winner pays runner-up's
    #: ask (Vickrey-style, removes the incentive to shade asks)
    auction_pricing: str = "second"

    # -- scheduler (demand side) -------------------------------------------
    #: DBC-style bid escalation: multiply the affordable ceiling by up to
    #: ``1 + bid_escalation`` as the user's deadline approaches
    bid_escalation: float = 0.5
    #: fraction of the deadline elapsed before escalation starts
    escalation_onset: float = 0.5

    # -- default user accounts (CLI auto-provisioning) ---------------------
    default_budget: float = 100.0
    default_deadline: float = 3600.0

    def __post_init__(self) -> None:
        if self.base_price <= 0:
            raise ValueError("base_price must be positive")
        if self.speed_premium < 0 or self.load_factor < 0 \
                or self.util_factor < 0:
            raise ValueError("market factors must be >= 0")
        if self.repricing_jitter < 0:
            raise ValueError("repricing_jitter must be >= 0")
        if self.demand_bump < 0:
            raise ValueError("demand_bump must be >= 0")
        if self.auction_pricing not in ("first", "second"):
            raise ValueError("auction_pricing must be 'first' or 'second'")
        if self.bid_escalation < 0:
            raise ValueError("bid_escalation must be >= 0")
        if not 0.0 <= self.escalation_onset <= 1.0:
            raise ValueError("escalation_onset must be in [0, 1]")
        if self.default_budget <= 0 or self.default_deadline <= 0:
            raise ValueError("default budget/deadline must be positive")
