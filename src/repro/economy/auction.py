"""Sealed-bid reservation auctions: clearing ask prices deterministically.

A placement round is a **reverse auction**: every feasible host submits
its published ask (sealed — asks are set by the market daemon, not
adjusted per-round), and the auctioneer awards the reservation to the
*lowest* ask, breaking ties deterministically by ``(price, str(loid))``.

Two pricing rules, selected by :class:`~repro.economy.config.EconomyConfig`:

* **first-price** — the winner is paid its own ask;
* **second-price** (default) — the winner is paid the runner-up's ask
  (reverse-Vickrey: truthful asking is dominant because undercutting
  cannot change what you are paid, only whether you win).

The cleared price becomes the rate the user's budget hold is taken at;
``efficiency`` (minimum feasible ask / cleared price, summed across
rounds) measures how much the pricing rule cost users relative to the
theoretical cheapest clearing — 1.0 for first-price, <= 1.0 for
second-price.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["Ask", "AuctionResult", "SealedBidAuction"]


@dataclass(frozen=True)
class Ask:
    """One host's sealed ask for a reservation round."""

    host_loid: Any
    price: float
    #: the Collection record the ask came from (carried for the winner)
    record: Any = None

    @property
    def sort_key(self):
        return (self.price, str(self.host_loid))


@dataclass
class AuctionResult:
    """Outcome of one clearing round."""

    winner: Optional[Ask]
    #: price the winner is actually paid (== rate the user is charged)
    clearing_price: float = 0.0
    #: lowest feasible ask in the round (efficiency numerator)
    min_ask: float = 0.0
    #: number of feasible asks considered
    n_asks: int = 0

    @property
    def cleared(self) -> bool:
        return self.winner is not None


class SealedBidAuction:
    """Deterministic sealed-bid clearing with running efficiency stats."""

    def __init__(self, pricing: str = "second", metrics: Any = None):
        if pricing not in ("first", "second"):
            raise ValueError("pricing must be 'first' or 'second'")
        self.pricing = pricing
        self.metrics = metrics
        self.rounds = 0
        self.cleared_rounds = 0
        self.sum_min_ask = 0.0
        self.sum_clearing = 0.0

    def clear(self, asks: Sequence[Ask],
              ceiling: float = float("inf")) -> AuctionResult:
        """Run one round over ``asks``; only asks <= ``ceiling`` (the
        bidder's affordable price) are feasible."""
        self.rounds += 1
        feasible = sorted((a for a in asks if a.price <= ceiling),
                          key=lambda a: a.sort_key)
        if not feasible:
            if self.metrics is not None:
                self.metrics.count("economy_auction_rounds_total",
                                   outcome="uncleared")
            return AuctionResult(winner=None, n_asks=0)
        winner = feasible[0]
        if self.pricing == "first" or len(feasible) == 1:
            price = winner.price
        else:
            # reverse second-price: pay the runner-up's ask, but never
            # more than the bidder declared affordable
            price = min(feasible[1].price, ceiling)
        price = round(price, 6)
        self.cleared_rounds += 1
        self.sum_min_ask += winner.price
        self.sum_clearing += price
        if self.metrics is not None:
            self.metrics.count("economy_auction_rounds_total",
                               outcome="cleared")
            self.metrics.observe("economy_clearing_price", price,
                                 buckets=(0.005, 0.01, 0.02, 0.04,
                                          0.08, 0.16))
        return AuctionResult(winner=winner, clearing_price=price,
                             min_ask=winner.price, n_asks=len(feasible))

    @property
    def efficiency(self) -> float:
        """sum(min feasible ask) / sum(cleared price) across all cleared
        rounds — 1.0 means users paid the theoretical minimum."""
        if self.sum_clearing <= 0:
            return 1.0
        return min(1.0, self.sum_min_ask / self.sum_clearing)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "pricing": self.pricing,
            "rounds": self.rounds,
            "cleared_rounds": self.cleared_rounds,
            "efficiency": round(self.efficiency, 6),
            "sum_clearing": round(self.sum_clearing, 6),
        }
