"""The federation facade: scatter-gather routing over peer Collections.

A :class:`FederatedCollection` presents the exact Fig. 4 interface —
Join / Leave / UpdateCollectionEntry / QueryCollection — so every
existing Scheduler, the Data Collection Daemon, the Monitor, and the
default placer run against a federation without a single call-site
change.  Behind the facade:

* **writes** (join/update/leave/pull) route to the record's *replica
  set* — the consistent-hash ring's home shard plus ``replication - 1``
  successors.  A write succeeds if any replica accepts it; replicas
  missed while unreachable are repaired later by anti-entropy gossip
  (:mod:`repro.federation.sync`);
* **queries** scatter to every shard concurrently (located shards go
  through :meth:`Transport.parallel_invoke`, so the cost is the
  *slowest* shard, not the sum), gather with per-shard timeouts, and
  merge with dedup — for a member seen on several replicas the freshest
  ``(updated_at, update_count)`` version wins — in deterministic
  LOID-sorted order.  An unreachable or late shard degrades the result
  to a partial answer instead of failing the query;
* **caching** — an optional TTL-bounded, router-side query cache
  absorbs repeated identical queries (schedulers re-query the same
  viability expression every attempt) at an explicit staleness cost,
  which the metrics account for (cache age histogram, hit/miss
  counters).

With every shard healthy and no cache, a federated query returns
byte-for-byte the records a single monolithic Collection would — the
equivalence the acceptance test pins.
"""

from __future__ import annotations

import hmac
import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..collection.collection import Credential
from ..collection.records import CollectionRecord
from ..errors import (
    AuthenticationError,
    HostUnreachableError,
    NotAMemberError,
)
from ..naming.loid import LOID
from ..net.topology import NetLocation
from ..net.transport import Call, Transport
from ..obs.registry import DEFAULT_SIZE_BUCKETS, MetricsRegistry
from ..obs.spans import NULL_SPANS
from .ring import ConsistentHashRing
from .shard import CollectionShard

__all__ = ["FederatedCollection", "FederationConfig"]

#: histogram buckets for record/cache staleness (virtual seconds)
STALENESS_BUCKETS: Tuple[float, ...] = (
    0.0, 1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 900.0, 3600.0)


@dataclass(frozen=True)
class FederationConfig:
    """The ``Metasystem(federation=...)`` knob, normalized.

    ``shards=0`` (or passing ``None``) means federation off — the
    Metasystem keeps its single monolithic Collection.
    """

    shards: int = 3
    replication: int = 2
    vnodes: int = 64
    #: anti-entropy sweep period in virtual seconds; 0 disables gossip
    gossip_interval: float = 60.0
    #: router-side query cache TTL in virtual seconds; 0 disables
    cache_ttl: float = 0.0
    #: drop a shard's gather slot if its reply lands later than this
    #: many virtual seconds after scatter start (inf = wait for all)
    shard_timeout: float = math.inf

    def __post_init__(self) -> None:
        if self.shards < 2:
            raise ValueError("federation needs at least 2 shards")
        if not 1 <= self.replication <= self.shards:
            raise ValueError("replication must be in [1, shards]")

    @classmethod
    def normalize(cls, value: Any) -> Optional["FederationConfig"]:
        """Accept ``None`` / int / (shards, replication) / config."""
        if value is None:
            return None
        if isinstance(value, FederationConfig):
            return value
        if isinstance(value, int):
            return cls(shards=value)
        if isinstance(value, tuple) and len(value) == 2:
            return cls(shards=int(value[0]), replication=int(value[1]))
        raise TypeError(
            f"federation must be None, an int shard count, a "
            f"(shards, replication) tuple, or a FederationConfig; "
            f"got {value!r}")


class FederatedCollection:
    """Fig. 4 interface over a ring of :class:`CollectionShard` peers."""

    def __init__(self, loid: LOID, shards: List[CollectionShard],
                 ring: ConsistentHashRing, replication: int,
                 transport: Optional[Transport] = None,
                 location: Optional[NetLocation] = None,
                 clock: Optional[Callable[[], float]] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 require_auth: bool = True,
                 cache_ttl: float = 0.0,
                 shard_timeout: float = math.inf):
        if not shards:
            raise ValueError("federation needs at least one shard")
        self.loid = loid
        self.shards = list(shards)
        self.shards_by_id = {s.shard_id: s for s in self.shards}
        self.ring = ring
        self.replication = replication
        self.transport = transport
        self.location = location
        self._clock = clock or (lambda: 0.0)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.require_auth = require_auth
        self.cache_ttl = cache_ttl
        self.shard_timeout = shard_timeout
        self.spans = NULL_SPANS
        #: per-(shard, member) write credentials held by the router
        self._credentials: Dict[Tuple[str, str], Credential] = {}
        #: member -> the credential handed back to the caller at join
        self._member_credentials: Dict[LOID, Credential] = {}
        self._computed: Dict[str, Callable[[Mapping], Any]] = {}
        #: query text -> (stored_at, results)
        self._cache: Dict[str, Tuple[float, List[CollectionRecord]]] = {}
        self.queries_served = 0
        self.updates_applied = 0
        self.partial_queries = 0

    # -- reachability --------------------------------------------------------
    def _shard_reachable(self, shard: CollectionShard) -> bool:
        if shard.forced_down:
            return False
        if shard.location is not None and self.transport is not None:
            return self.transport.topology.reachable(self.location,
                                                     shard.location)
        return True

    def healthy_shards(self) -> List[str]:
        return [s.shard_id for s in self.shards if self._shard_reachable(s)]

    def set_shard_down(self, shard_id: str, down: bool = True) -> None:
        """Fault injection for unlocated shards (located shards should be
        failed through the topology so the transport sees it too)."""
        self.shards_by_id[shard_id].forced_down = down

    # -- replica routing -----------------------------------------------------
    def replicas_for(self, member: LOID) -> List[CollectionShard]:
        """The record's replica set, home shard first."""
        return [self.shards_by_id[sid]
                for sid in self.ring.preference_list(str(member),
                                                     self.replication)]

    def home_shard(self, member: LOID) -> CollectionShard:
        return self.replicas_for(member)[0]

    def _write_call(self, shard: CollectionShard, fn: Callable, *args,
                    label: str) -> Any:
        """One replica write, through the transport when the shard is
        located (so the message is charged and can honestly fail)."""
        if shard.forced_down:
            raise HostUnreachableError(
                f"shard {shard.shard_id} unreachable (forced down)")
        if shard.location is not None and self.transport is not None:
            return self.transport.invoke(self.location, shard.location,
                                         fn, *args, label=label)
        return fn(*args)

    def _check_credential(self, member: LOID,
                          credential: Optional[Credential]) -> None:
        """Router-side authentication against the credential minted at
        join time — uniform whether or not the home shard is reachable."""
        if not self.require_auth:
            return
        stored = self._member_credentials.get(member)
        if (credential is None or stored is None
                or credential.member != member
                or not hmac.compare_digest(credential._mac, stored._mac)):
            self.metrics.count("federation_auth_failures_total")
            raise AuthenticationError(
                f"caller is not authorized to modify the record of "
                f"{member}")

    # -- the Fig. 4 write paths ----------------------------------------------
    def join(self, joiner: LOID,
             attributes: Optional[Mapping[str, Any]] = None) -> Credential:
        """JoinCollection, fanned out to the record's replica set.

        Succeeds if any replica accepts the join; the others are
        repaired by gossip.  Returns one credential valid for future
        updates through this router.
        """
        reached = 0
        for shard in self.replicas_for(joiner):
            try:
                cred = self._write_call(
                    shard, shard.collection.join, joiner,
                    attributes, label="JoinCollection")
            except HostUnreachableError:
                self.metrics.count("federation_shard_unreachable_total",
                                   shard=shard.shard_id)
                continue
            self._credentials[(shard.shard_id, str(joiner))] = cred
            reached += 1
            self.metrics.count("federation_shard_writes_total",
                               shard=shard.shard_id, op="join")
        if not reached:
            raise HostUnreachableError(
                f"no replica of {joiner} reachable for join")
        member_cred = self._member_credentials.get(joiner)
        if member_cred is None:
            member_cred = Credential(
                joiner, self._credential_seed(joiner))
            self._member_credentials[joiner] = member_cred
        return member_cred

    def _credential_seed(self, member: LOID) -> bytes:
        """A router-scoped MAC derived from the home shard's secret, so
        the returned credential is as unforgeable as a shard's own."""
        home = self.home_shard(member)
        return home.collection._mac_for(member)

    def update_entry(self, member: LOID, attributes: Mapping[str, Any],
                     credential: Optional[Credential] = None) -> None:
        """UpdateCollectionEntry across the replica set."""
        self._check_credential(member, credential)
        reached = 0
        missing = 0
        for shard in self.replicas_for(member):
            cred = self._credentials.get((shard.shard_id, str(member)))
            try:
                if cred is None:
                    # replica missed the join (it was down); repair now
                    cred = self._write_call(
                        shard, shard.collection.join, member,
                        attributes, label="JoinCollection")
                    self._credentials[(shard.shard_id, str(member))] = cred
                else:
                    self._write_call(
                        shard, shard.collection.update_entry, member,
                        attributes, cred, label="UpdateCollectionEntry")
            except HostUnreachableError:
                self.metrics.count("federation_shard_unreachable_total",
                                   shard=shard.shard_id)
                continue
            except NotAMemberError:
                missing += 1
                continue
            reached += 1
            self.metrics.count("federation_shard_writes_total",
                               shard=shard.shard_id, op="update")
        if missing and not reached:
            raise NotAMemberError(f"{member} is not a member")
        if not reached:
            raise HostUnreachableError(
                f"no replica of {member} reachable for update")
        self.updates_applied += 1

    def leave(self, leaver: LOID,
              credential: Optional[Credential] = None) -> None:
        """LeaveCollection across the replica set."""
        self._check_credential(leaver, credential)
        found = 0
        for shard in self.shards:
            if leaver not in shard.collection:
                continue
            cred = self._credentials.get((shard.shard_id, str(leaver)))
            try:
                self._write_call(shard, shard.collection.leave, leaver,
                                 cred, label="LeaveCollection")
            except HostUnreachableError:
                self.metrics.count("federation_shard_unreachable_total",
                                   shard=shard.shard_id)
                continue
            self._credentials.pop((shard.shard_id, str(leaver)), None)
            found += 1
        if not found:
            raise NotAMemberError(f"{leaver} is not a member")
        self._member_credentials.pop(leaver, None)

    def pull_from(self, source: Any) -> None:
        """Collection-initiated pull, fanned to the replica set."""
        for shard in self.replicas_for(source.loid):
            try:
                self._write_call(shard, shard.collection.pull_from,
                                 source, label="pull")
            except HostUnreachableError:
                self.metrics.count("federation_shard_unreachable_total",
                                   shard=shard.shard_id)
                continue
            self.metrics.count("federation_shard_writes_total",
                               shard=shard.shard_id, op="pull")
        self.updates_applied += 1

    # -- the Fig. 4 read path ------------------------------------------------
    def query(self, query: str) -> List[CollectionRecord]:
        """QueryCollection: cache, scatter, gather, merge.

        Raises :class:`HostUnreachableError` only when *every* shard is
        unreachable; any partial shard coverage degrades to a partial
        (still deterministic, still LOID-sorted) result instead.
        """
        self.queries_served += 1
        now = self._clock()
        if self.cache_ttl > 0:
            hit = self._cache.get(query)
            if hit is not None:
                stored_at, results = hit
                age = now - stored_at
                if age <= self.cache_ttl:
                    self.metrics.count("federation_cache_events_total",
                                       outcome="hit")
                    self.metrics.observe("federation_cache_age_seconds",
                                         age, buckets=STALENESS_BUCKETS)
                    return list(results)
                del self._cache[query]
                self.metrics.count("federation_cache_events_total",
                                   outcome="expired")
            else:
                self.metrics.count("federation_cache_events_total",
                                   outcome="miss")
        with self.spans.span_if_active("federation.query", step="2",
                                       shards=len(self.shards)) as sp:
            merged, reached = self._scatter_gather(query)
            sp.set_attribute("reached", reached)
            sp.set_attribute("results", len(merged))
        if reached == 0:
            raise HostUnreachableError("no federation shard reachable")
        partial = reached < len(self.shards)
        if partial:
            self.partial_queries += 1
            self.metrics.count("federation_partial_queries_total")
        for record in merged:
            self.metrics.observe("federation_result_staleness_seconds",
                                 record.staleness(self._clock()),
                                 buckets=STALENESS_BUCKETS)
        self.metrics.observe("federation_query_results", len(merged),
                             buckets=DEFAULT_SIZE_BUCKETS)
        if self.cache_ttl > 0 and not partial:
            # partial answers are not cached: recovery should be seen
            # on the next query, not after a TTL
            self._cache[query] = (self._clock(), list(merged))
        return merged

    def _scatter_gather(self, query: str
                        ) -> Tuple[List[CollectionRecord], int]:
        """Fan the query out, count reachable shards, merge and dedup."""
        start = self.transport.sim.now if self.transport is not None \
            else self._clock()
        per_shard: List[Tuple[CollectionShard, List[CollectionRecord]]] = []
        reached = 0
        remote: List[Tuple[CollectionShard, Call]] = []
        for shard in self.shards:
            if shard.forced_down:
                self.metrics.count("federation_shard_unreachable_total",
                                   shard=shard.shard_id)
                continue
            if shard.location is not None and self.transport is not None:
                remote.append((shard, Call(
                    src=self.location, dst=shard.location,
                    fn=shard.collection.query, args=(query,),
                    label=f"QueryCollection@{shard.shard_id}",
                    context=self.spans.current_context())))
            else:
                per_shard.append((shard, shard.collection.query(query)))
                reached += 1
                self.metrics.count("federation_shard_queries_total",
                                   shard=shard.shard_id)
        if remote:
            outcomes = self.transport.parallel_invoke(
                [call for _, call in remote])
            for (shard, _), outcome in zip(remote, outcomes):
                self.metrics.count("federation_shard_queries_total",
                                   shard=shard.shard_id)
                if not outcome.ok:
                    self.metrics.count(
                        "federation_shard_unreachable_total",
                        shard=shard.shard_id)
                    continue
                if outcome.completed_at - start > self.shard_timeout:
                    self.metrics.count("federation_shard_timeouts_total",
                                       shard=shard.shard_id)
                    continue
                per_shard.append((shard, outcome.value))
                reached += 1
        best: Dict[LOID, CollectionRecord] = {}
        for _shard, records in per_shard:
            for record in records:
                mine = best.get(record.member)
                if mine is None or record.version() > mine.version():
                    best[record.member] = record
        return [best[m] for m in sorted(best)], reached

    def query_loids(self, query: str) -> List[LOID]:
        return [r.member for r in self.query(query)]

    # -- guardrails -----------------------------------------------------------
    @property
    def exclude_down_members(self) -> bool:
        """Quarantine filter state (see Collection.exclude_down_members).

        Shards hold plain Collections, so the filter is applied where the
        records live — the scatter-gather merge never sees a DOWN record."""
        return all(s.collection.exclude_down_members for s in self.shards)

    @exclude_down_members.setter
    def exclude_down_members(self, value: bool) -> None:
        for shard in self.shards:
            shard.collection.exclude_down_members = bool(value)

    # -- function injection ---------------------------------------------------
    def inject_function(self, name: str, fn: Callable) -> None:
        for shard in self.shards:
            shard.collection.inject_function(name, fn)

    def inject_attribute(self, name: str,
                         fn: Callable[[Mapping], Any]) -> None:
        if not callable(fn):
            raise TypeError("computed attribute requires a callable")
        self._computed[name] = fn
        for shard in self.shards:
            shard.collection.inject_attribute(name, fn)

    def record_attr(self, record: CollectionRecord, name: str,
                    default: Any = None) -> Any:
        if name == "loid":
            return str(record.member)
        if name in record.attributes:
            return record.attributes[name]
        fn = self._computed.get(name)
        if fn is not None:
            return fn(record.attributes)
        return default

    # -- introspection ---------------------------------------------------------
    def data_version(self) -> Any:
        """Change token for the Scheduler's viable-hosts cache.

        Folds in every shard's mutation version *and* the reachable-shard
        fingerprint, so a shard outage (or recovery) — which changes what
        a scatter-gather query can see — invalidates cached placements
        even though no record was written."""
        return (tuple(s.collection.mutation_version for s in self.shards),
                tuple(self.healthy_shards()),
                self.exclude_down_members)

    def members(self) -> List[LOID]:
        seen = set()
        for shard in self.shards:
            seen.update(shard.collection.members())
        return sorted(seen)

    def record_of(self, member: LOID) -> CollectionRecord:
        """The freshest replica copy of one member's record."""
        best: Optional[CollectionRecord] = None
        for shard in self.shards:
            if member not in shard.collection:
                continue
            record = shard.collection.record_of(member)
            if best is None or record.version() > best.version():
                best = record
        if best is None:
            raise NotAMemberError(f"{member} is not a member")
        return best

    def mean_staleness(self, now: Optional[float] = None) -> float:
        members = self.members()
        if not members:
            return float("nan")
        t = self._clock() if now is None else now
        ages = [self.record_of(m).staleness(t) for m in members]
        return sum(ages) / len(ages)

    def cache_stats(self) -> Dict[str, float]:
        """Hit/miss/expired counts plus the derived hit ratio."""
        out = {"hit": 0.0, "miss": 0.0, "expired": 0.0}
        counter = self.metrics.get("federation_cache_events_total")
        if counter is not None:
            for labels, leaf in counter._series():
                outcome = labels.get("outcome")
                if outcome in out:
                    out[outcome] = leaf.value
        lookups = out["hit"] + out["miss"] + out["expired"]
        out["hit_ratio"] = out["hit"] / lookups if lookups else 0.0
        return out

    def __len__(self) -> int:
        return len(self.members())

    def __contains__(self, member: LOID) -> bool:
        return any(member in s.collection for s in self.shards)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<FederatedCollection shards={len(self.shards)} "
                f"replication={self.replication} "
                f"members={len(self.members())}>")
