"""repro.federation — a federation of peer Collections.

The paper anticipates that Collections "can be organized into
hierarchies" and that Schedulers may consult several Collections; this
package realizes that direction as a sharded, replicated information
database.  A seeded consistent-hash ring (:mod:`repro.federation.ring`)
assigns every record a home shard plus replicas; each peer is an
ordinary Collection wrapped by a :class:`CollectionShard`; anti-entropy
gossip (:mod:`repro.federation.sync`) repairs replicas missed while
unreachable; and the :class:`FederatedCollection` facade
(:mod:`repro.federation.router`) scatter-gathers queries with partial-
result tolerance behind the unchanged Fig. 4 interface.

Enable it with ``Metasystem(federation=3)`` (or a
:class:`FederationConfig` for replication/gossip/cache knobs); every
bundled Scheduler then runs against the federation transparently.
"""

from .ring import ConsistentHashRing
from .router import FederatedCollection, FederationConfig
from .shard import CollectionShard
from .sync import GossipDaemon

__all__ = [
    "ConsistentHashRing",
    "CollectionShard",
    "FederatedCollection",
    "FederationConfig",
    "GossipDaemon",
]
