"""One peer of a federated Collection.

A :class:`CollectionShard` wraps an ordinary
:class:`~repro.collection.collection.Collection` with ring awareness:
it knows its shard id, which records it is *supposed* to hold (the
ring's preference lists), and how to summarize its contents for the
anti-entropy protocol (:mod:`repro.federation.sync`).

The wrapped Collection stays a full-fledged Collection — queries,
credentials, computed attributes, and metrics all work unchanged — the
shard layer only adds ownership bookkeeping.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..collection.collection import Collection
from ..naming.loid import LOID
from ..net.topology import NetLocation
from .ring import ConsistentHashRing

__all__ = ["CollectionShard"]

#: version summary used in gossip digests: (updated_at, update_count)
Version = Tuple[float, int]


class CollectionShard:
    """A ring-aware wrapper around one peer Collection."""

    def __init__(self, shard_id: str, collection: Collection,
                 ring: ConsistentHashRing, replication: int,
                 location: Optional[NetLocation] = None):
        if replication < 1:
            raise ValueError("replication must be >= 1")
        self.shard_id = shard_id
        self.collection = collection
        self.ring = ring
        self.replication = replication
        self.location = location
        #: fault-injection override: an unlocated shard can still be
        #: forced unreachable (located shards use the topology instead)
        self.forced_down = False
        self.merges_applied = 0

    # -- ownership ----------------------------------------------------------
    def preference_list(self, member: LOID) -> List[str]:
        return self.ring.preference_list(str(member), self.replication)

    def is_home(self, member: LOID) -> bool:
        return self.preference_list(member)[0] == self.shard_id

    def owns(self, member: LOID) -> bool:
        """Is this shard in the record's replica set?"""
        return self.shard_id in self.preference_list(member)

    def misplaced_members(self) -> List[LOID]:
        """Members stored here that the ring no longer assigns here —
        non-empty only after ring membership changed under live data."""
        return [m for m in self.collection.members() if not self.owns(m)]

    # -- anti-entropy surface ------------------------------------------------
    def digest(self) -> Dict[str, Version]:
        """Version summary of every record held, keyed by LOID text.

        This is what a pulling peer sends: the remote replies only with
        records that are missing here or strictly newer than the digest
        entry (a pull-based delta exchange).
        """
        return {str(m): self.collection.record_of(m).version()
                for m in self.collection.members()}

    def delta_for(self, peer_shard_id: str,
                  digest: Dict[str, Version]) -> List[Any]:
        """Records the pulling peer should adopt: ones it is assigned by
        the ring, held here, and newer than (or absent from) its digest."""
        out = []
        for member in self.collection.members():
            plist = self.ring.preference_list(str(member), self.replication)
            if peer_shard_id not in plist:
                continue
            record = self.collection.record_of(member)
            known = digest.get(str(member))
            if known is None or record.version() > known:
                out.append(record)
        return out

    def merge_records(self, records: List[Any]) -> int:
        """Adopt a batch of peer records; returns how many changed us."""
        changed = 0
        for record in records:
            if self.collection.merge_record(record):
                changed += 1
        self.merges_applied += changed
        return changed

    # -- introspection -------------------------------------------------------
    def __len__(self) -> int:
        return len(self.collection)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<CollectionShard {self.shard_id} "
                f"members={len(self.collection)}>")
