"""Deterministic consistent-hash ring for Collection federation.

The ring assigns every record (keyed by its member LOID) a *home shard*
plus ``replication - 1`` replica shards.  Design requirements, in order:

* **determinism** — ring positions come from ``blake2b`` digests of
  ``"{seed}|{shard}#{vnode}"``; neither Python's randomized ``hash()``
  nor any wall-clock input is involved, so two processes built with the
  same seed and shard set agree on every placement (the property the
  determinism suite pins);
* **balance** — each shard contributes ``vnodes`` virtual nodes, which
  smooths the classic consistent-hashing imbalance (pinned by a
  property-based test: max/min shard load stays bounded);
* **minimal disruption** — adding a shard only moves keys *onto* the new
  shard; removing one only moves the keys it owned (also pinned by a
  property-based test).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Tuple

__all__ = ["ConsistentHashRing"]


def _position(seed: int, token: str) -> int:
    """A ring position in [0, 2**64) for one token."""
    digest = hashlib.blake2b(f"{seed}|{token}".encode("utf-8"),
                             digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """A seeded, virtual-node consistent-hash ring over shard names."""

    def __init__(self, seed: int = 0, vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.seed = seed
        self.vnodes = vnodes
        #: sorted vnode positions and their owning shard, kept in lockstep
        self._positions: List[int] = []
        self._owners: List[str] = []
        self._shards: List[str] = []

    # -- membership ---------------------------------------------------------
    def add_shard(self, name: str) -> None:
        if name in self._shards:
            raise ValueError(f"duplicate shard {name!r}")
        self._shards.append(name)
        for v in range(self.vnodes):
            pos = _position(self.seed, f"{name}#{v}")
            i = bisect.bisect_left(self._positions, pos)
            # ties are astronomically unlikely with 64-bit digests, but
            # break them by shard name so insertion order never matters
            while (i < len(self._positions) and self._positions[i] == pos
                   and self._owners[i] < name):
                i += 1
            self._positions.insert(i, pos)
            self._owners.insert(i, name)

    def remove_shard(self, name: str) -> None:
        if name not in self._shards:
            raise ValueError(f"unknown shard {name!r}")
        self._shards.remove(name)
        keep = [(p, o) for p, o in zip(self._positions, self._owners)
                if o != name]
        self._positions = [p for p, _ in keep]
        self._owners = [o for _, o in keep]

    def shards(self) -> List[str]:
        return sorted(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    # -- placement ----------------------------------------------------------
    def key_position(self, key: str) -> int:
        return _position(self.seed, f"key:{key}")

    def owner(self, key: str) -> str:
        """The home shard for ``key``."""
        return self.preference_list(key, 1)[0]

    def preference_list(self, key: str, n: int) -> List[str]:
        """The first ``n`` *distinct* shards clockwise from ``key``.

        Entry 0 is the home shard; the rest are replicas.  ``n`` is
        clamped to the shard count, so a 2-shard ring with replication 3
        simply replicates everywhere.
        """
        if not self._shards:
            raise ValueError("ring has no shards")
        n = min(n, len(self._shards))
        start = bisect.bisect_right(self._positions,
                                    self.key_position(key))
        out: List[str] = []
        for step in range(len(self._positions)):
            owner = self._owners[(start + step) % len(self._positions)]
            if owner not in out:
                out.append(owner)
                if len(out) == n:
                    break
        return out

    # -- introspection -------------------------------------------------------
    def layout(self) -> Dict[str, int]:
        """Per-shard vnode counts (constant, but useful to print)."""
        counts: Dict[str, int] = {name: 0 for name in sorted(self._shards)}
        for owner in self._owners:
            counts[owner] += 1
        return counts

    def arc_fractions(self) -> Dict[str, float]:
        """Fraction of the key space each shard owns as home."""
        total = 1 << 64
        fractions: Dict[str, float] = {n: 0.0 for n in self._shards}
        if not self._positions:
            return fractions
        for i, pos in enumerate(self._positions):
            prev = self._positions[i - 1] if i else self._positions[-1]
            arc = (pos - prev) % total
            if len(self._positions) == 1:
                arc = total
            fractions[self._owners[i]] += arc / total
        return {n: fractions[n] for n in sorted(fractions)}

    def assignments(self, keys: List[str], replication: int
                    ) -> Dict[str, Tuple[str, ...]]:
        """Full placement map: key -> (home, replica, ...)."""
        return {key: tuple(self.preference_list(key, replication))
                for key in keys}
