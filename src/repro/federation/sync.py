"""Anti-entropy gossip between federated Collection shards.

Synchronous replication (:mod:`repro.federation.router`) keeps replicas
hot while every shard is reachable; gossip repairs what it misses —
records written while a replica was down, partitioned, or newly added
to the ring.  The protocol is the classic pull-based delta exchange:

1. each round, every shard picks one peer (seeded RNG stream
   ``("federation", "gossip")``);
2. the puller sends its *digest* — ``{loid: (updated_at,
   update_count)}`` for everything it holds;
3. the peer answers with the records the ring assigns to the puller
   that are missing from, or strictly newer than, the digest;
4. the puller merges them (``Collection.merge_record`` — timestamps
   travel with the record, so repeated exchanges of identical data
   converge instead of churning).

Rounds are driven by the sim kernel at a tunable interval; exchanges
between *located* shards go through the transport (charged latency,
honest unreachability), unlocated shards exchange directly.  In
federated mode this supersedes the single
:class:`~repro.collection.daemon.DataCollectionDaemon`: resource pushes
land on the home replica set and gossip spreads repairs, rather than
one daemon fanning every record to one Collection.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import NetworkError
from ..net.transport import Transport
from ..obs.registry import MetricsRegistry
from ..obs.spans import NULL_SPANS
from ..sim.kernel import Simulator
from .shard import CollectionShard

__all__ = ["GossipDaemon", "estimate_digest_bytes", "estimate_record_bytes"]


def estimate_digest_bytes(digest: dict) -> int:
    """Wire-size estimate of a version digest (LOID text + 16B version)."""
    return sum(len(key) + 16 for key in digest)


def estimate_record_bytes(record) -> int:
    """Wire-size estimate of one shipped record (attrs repr + header)."""
    return len(str(record.member)) + len(repr(record.attributes)) + 24


class GossipDaemon:
    """Periodic anti-entropy sweeps over a set of peer shards."""

    def __init__(self, sim: Simulator, shards: List[CollectionShard],
                 interval: float = 60.0, rng=None,
                 transport: Optional[Transport] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 spans=None):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if len(shards) < 2:
            raise ValueError("gossip needs at least two shards")
        self.sim = sim
        self.shards = list(shards)
        self.interval = interval
        self.rng = rng
        self.transport = transport
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans = spans if spans is not None else NULL_SPANS
        self.rounds = 0
        self.records_exchanged = 0
        self.bytes_exchanged = 0
        self._running = False

    # -- one exchange -------------------------------------------------------
    def _pick_peer(self, puller_index: int) -> CollectionShard:
        if self.rng is not None:
            offset = 1 + int(self.rng.integers(0, len(self.shards) - 1))
        else:
            offset = 1 + self.rounds % (len(self.shards) - 1)
        return self.shards[(puller_index + offset) % len(self.shards)]

    def _pull(self, puller: CollectionShard, peer: CollectionShard) -> None:
        with self.spans.span_if_active(
                "federation.gossip.pull", puller=puller.shard_id,
                peer=peer.shard_id) as sp:
            digest = puller.digest()
            digest_bytes = estimate_digest_bytes(digest)
            try:
                if puller.forced_down or peer.forced_down:
                    raise NetworkError(
                        f"{peer.shard_id} unreachable (forced down)")
                if (self.transport is not None
                        and peer.location is not None):
                    delta = self.transport.invoke(
                        puller.location, peer.location, peer.delta_for,
                        puller.shard_id, digest, label="gossip-pull")
                else:
                    delta = peer.delta_for(puller.shard_id, digest)
            except NetworkError as exc:
                sp.set_status("error")
                sp.set_attribute("error", f"{type(exc).__name__}: {exc}")
                self.metrics.count("federation_gossip_exchanges_total",
                                   outcome="unreachable")
                return
            nbytes = digest_bytes + sum(estimate_record_bytes(r)
                                        for r in delta)
            changed = puller.merge_records(delta)
            self.records_exchanged += len(delta)
            self.bytes_exchanged += nbytes
            self.metrics.count("federation_gossip_exchanges_total",
                               outcome="ok")
            self.metrics.count("federation_gossip_records_total",
                               len(delta))
            self.metrics.count("federation_gossip_bytes_total", nbytes)
            if changed:
                self.metrics.count("federation_gossip_repairs_total",
                                   changed)
            sp.set_attribute("records", len(delta))
            sp.set_attribute("changed", changed)

    def sweep(self) -> None:
        """One gossip round: every shard pulls from one peer."""
        with self.spans.span("federation.gossip", round=self.rounds):
            for i, shard in enumerate(self.shards):
                self._pull(shard, self._pick_peer(i))
        self.rounds += 1
        self.metrics.count("federation_gossip_rounds_total")

    # -- kernel wiring -------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True

        def tick():
            if not self._running:
                return
            self.sweep()
            self.sim.schedule(self.interval, tick)

        self.sim.schedule(self.interval, tick)

    def stop(self) -> None:
        self._running = False
