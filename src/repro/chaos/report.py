"""ResilienceReport: what survived a chaos campaign, with JSON export.

The report is the campaign's measurable outcome — the "resilience
trajectory" datapoint written to ``BENCH_chaos.json`` by CI.  All
fields are plain data and the JSON export sorts keys, so two runs with
the same seeds produce byte-identical documents (pinned by
``tests/test_chaos.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["ResilienceReport"]


@dataclass
class ResilienceReport:
    """Aggregated survival metrics for one campaign run."""

    profile: str = ""
    chaos_seed: int = 0
    testbed_seed: int = 0
    scheduler: str = ""
    retry_enabled: bool = False
    horizon: float = 0.0
    waves: int = 0
    per_wave: int = 0

    # placement under fire
    placement_attempts: int = 0
    placement_successes: int = 0
    instances_requested: int = 0
    instances_created: int = 0
    #: host names chosen per successful wave (empty list = failed wave)
    placements: List[List[str]] = field(default_factory=list)

    # work completed vs. lost
    instances_completed: int = 0
    jobs_lost: int = 0
    work_lost: float = 0.0

    # resilience machinery
    transport_retries: int = 0
    reservation_retries: int = 0

    # guardrails machinery (PR 5); wasted_reservation_attempts is counted
    # in every mode — it is the benchmark's comparison metric
    guardrails_enabled: bool = False
    wasted_reservation_attempts: int = 0
    load_shed: int = 0
    breaker_opens: int = 0
    breaker_fast_fails: int = 0
    health_transitions: int = 0
    admission_rejections: int = 0

    # fault accounting (from ChaosInjector.stats())
    faults_planned: int = 0
    faults_injected: Dict[str, int] = field(default_factory=dict)
    faults_reverted: Dict[str, int] = field(default_factory=dict)
    faults_skipped: int = 0
    fault_errors: int = 0
    forced_repairs: int = 0
    residual_faults: List[str] = field(default_factory=list)
    mttr_mean: float = 0.0
    mttr_max: float = 0.0

    #: SLO summary when the campaign armed a metrics sampler
    #: (``sampler_window`` > 0): minutes lost, alert count, budget
    #: consumption per objective.  Empty when sampling was off, and
    #: omitted from :meth:`to_dict` then so pre-sampler benchmark
    #: ledgers stay byte-identical.
    slo: Dict[str, Any] = field(default_factory=dict)

    #: full per-fault event log (FaultRecord.to_dict())
    events: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def placement_success_rate(self) -> float:
        if not self.placement_attempts:
            return 0.0
        return self.placement_successes / self.placement_attempts

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "profile": self.profile,
            "chaos_seed": self.chaos_seed,
            "testbed_seed": self.testbed_seed,
            "scheduler": self.scheduler,
            "retry_enabled": self.retry_enabled,
            "horizon": self.horizon,
            "waves": self.waves,
            "per_wave": self.per_wave,
            "placement": {
                "attempts": self.placement_attempts,
                "successes": self.placement_successes,
                "success_rate": self.placement_success_rate,
                "instances_requested": self.instances_requested,
                "instances_created": self.instances_created,
                "placements": self.placements,
            },
            "work": {
                "instances_completed": self.instances_completed,
                "jobs_lost": self.jobs_lost,
                "work_lost": self.work_lost,
            },
            "retries": {
                "transport": self.transport_retries,
                "reservation": self.reservation_retries,
            },
            "guardrails": {
                "enabled": self.guardrails_enabled,
                "wasted_reservation_attempts":
                    self.wasted_reservation_attempts,
                "load_shed": self.load_shed,
                "breaker_opens": self.breaker_opens,
                "breaker_fast_fails": self.breaker_fast_fails,
                "health_transitions": self.health_transitions,
                "admission_rejections": self.admission_rejections,
            },
            "faults": {
                "planned": self.faults_planned,
                "injected": dict(sorted(self.faults_injected.items())),
                "reverted": dict(sorted(self.faults_reverted.items())),
                "skipped": self.faults_skipped,
                "errors": self.fault_errors,
                "forced_repairs": self.forced_repairs,
                "residual_faults": list(self.residual_faults),
                "mttr_mean": self.mttr_mean,
                "mttr_max": self.mttr_max,
            },
            "events": self.events,
        }
        if self.slo:
            doc["slo"] = self.slo
        return doc

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        """A compact human-readable digest for the CLI."""
        injected = sum(self.faults_injected.values())
        reverted = sum(self.faults_reverted.values())
        lines = [
            f"chaos campaign {self.profile!r} "
            f"(chaos-seed {self.chaos_seed}, horizon {self.horizon:.0f}s, "
            f"retry {'on' if self.retry_enabled else 'off'})",
            f"  faults             {injected} injected / {reverted} "
            f"reverted / {self.faults_skipped} skipped "
            f"(of {self.faults_planned} planned)",
            f"  forced repairs     {self.forced_repairs}",
            f"  residual faults    {len(self.residual_faults)}",
            f"  placement          {self.placement_successes}/"
            f"{self.placement_attempts} waves ok "
            f"({100.0 * self.placement_success_rate:.1f}%)",
            f"  instances          {self.instances_created} created, "
            f"{self.instances_completed} completed, "
            f"{self.jobs_lost} job(s) lost "
            f"({self.work_lost:.0f} work units)",
            f"  retries            transport {self.transport_retries}, "
            f"reservation {self.reservation_retries}",
            f"  guardrails         "
            f"{'on' if self.guardrails_enabled else 'off'}: "
            f"{self.wasted_reservation_attempts} wasted reservation(s), "
            f"{self.load_shed} shed, {self.breaker_opens} breaker open(s), "
            f"{self.breaker_fast_fails} fast-fail(s)",
            f"  MTTR               mean {self.mttr_mean:.1f}s, "
            f"max {self.mttr_max:.1f}s",
        ]
        if self.slo:
            lines.append(
                f"  slo                {self.slo['minutes_lost']:g} "
                f"minute(s) lost, {self.slo['alerts']} burn alert(s), "
                f"{self.slo['exhausted']} budget(s) exhausted "
                f"(window {self.slo['window_seconds']:g}s)")
        return "\n".join(lines)
