"""run_campaign: a complete seeded chaos experiment over a testbed.

Builds the standard testbed, arms a generated campaign, drives placement
waves through a Scheduler while faults land, tears the injector down,
and aggregates everything into a
:class:`~repro.chaos.report.ResilienceReport`.  This is the engine
behind ``legion-sim chaos`` and the determinism/retry-benefit tests.

Imports of the testbed/metasystem layers happen inside the function to
keep ``repro.chaos`` importable without a cycle
(metasystem → chaos → testbed → metasystem).
"""

from __future__ import annotations

from typing import Any, Optional

from ..errors import LegionError
from .report import ResilienceReport

__all__ = ["run_campaign"]


def run_campaign(profile: str = "mixed",
                 chaos_seed: int = 0,
                 seed: int = 0,
                 scheduler: str = "irs",
                 waves: int = 6,
                 per_wave: int = 4,
                 work: float = 250.0,
                 wave_interval: float = 90.0,
                 horizon: Optional[float] = None,
                 retry: bool = False,
                 guardrails: bool = False,
                 n_domains: int = 3,
                 hosts_per_domain: int = 6,
                 platform_mix: int = 3,
                 background_load: float = 0.5,
                 shards: int = 0,
                 drain_time: float = 4000.0,
                 include_events: bool = True,
                 sampler_window: float = 0.0,
                 meta: Any = None) -> ResilienceReport:
    """Run one seeded campaign and return its ResilienceReport.

    ``retry`` flips the resilience layer
    (:meth:`~repro.metasystem.Metasystem.enable_retries`) and
    ``guardrails`` the failure-detection layer
    (:meth:`~repro.metasystem.Metasystem.enable_guardrails`) — the
    fault timeline is identical either way, so flipping either knob
    measures the policy, not different luck.  Pass a prebuilt ``meta``
    to reuse a custom testbed (it must not have chaos started yet).
    """
    from ..scheduler.base import ObjectClassRequest
    from ..workload.testbed import (
        TestbedSpec,
        build_testbed,
        implementations_for_all_platforms,
    )

    if meta is None:
        meta = build_testbed(TestbedSpec(
            seed=seed, n_domains=n_domains,
            hosts_per_domain=hosts_per_domain,
            platform_mix=platform_mix,
            background_load_mean=background_load,
            federation_shards=shards))
        # give the services network locations so information queries and
        # reservations cost messages — and can honestly be lost
        meta.place_collection("dom0")
        meta.place_enactor("dom0")
        if shards:
            meta.place_federation()
    if horizon is None:
        horizon = waves * wave_interval
    if sampler_window and meta.sampler is None:
        meta.start_sampler(window=sampler_window)
    if guardrails:
        meta.enable_guardrails()
    if retry:
        meta.enable_retries()
    injector = meta.start_chaos(profile=profile, chaos_seed=chaos_seed,
                                horizon=horizon)

    app = meta.create_class("chaos-app",
                            implementations_for_all_platforms(),
                            work_units=work)
    sched = meta.make_scheduler(scheduler)

    report = ResilienceReport(
        profile=profile, chaos_seed=chaos_seed, testbed_seed=seed,
        scheduler=scheduler, retry_enabled=retry,
        guardrails_enabled=guardrails, horizon=horizon,
        waves=waves, per_wave=per_wave,
        instances_requested=waves * per_wave)

    for _wave in range(waves):
        report.placement_attempts += 1
        try:
            outcome = sched.run([ObjectClassRequest(app, count=per_wave)])
        except LegionError:
            outcome = None
        if outcome is not None and outcome.ok:
            report.placement_successes += 1
            report.instances_created += len(outcome.created)
            hosts = []
            for mapping in outcome.feedback.reserved_entries:
                host = meta.resolve(mapping.host_loid)
                hosts.append(host.machine.name if host is not None
                             else str(mapping.host_loid))
            report.placements.append(sorted(hosts))
        else:
            report.placements.append([])
        meta.advance(wave_interval)

    if meta.now < horizon:
        meta.advance(horizon - meta.now)
    injector.teardown()

    # drain: let surviving jobs run to completion on a fault-free world
    deadline = meta.now + drain_time
    while meta.now < deadline:
        if not any(host.machine.jobs for host in meta.hosts):
            break
        meta.advance(50.0)

    stats = injector.stats()
    report.instances_completed = sum(h.machine.completed_jobs
                                     for h in meta.hosts)
    report.jobs_lost = stats["jobs_lost"]
    report.work_lost = stats["work_lost"]
    report.transport_retries = meta.transport.retries
    report.reservation_retries = meta.enactor.stats.reservation_retries
    # counted in every mode — the benchmark's comparison metric
    report.wasted_reservation_attempts = \
        meta.enactor.stats.wasted_reservation_attempts
    report.load_shed = meta.enactor.stats.load_shed
    if meta.guardrails is not None:
        report.breaker_opens = meta.guardrails.board.total_opens()
        report.breaker_fast_fails = meta.guardrails.board.total_fast_fails()
        report.health_transitions = meta.guardrails.monitor.transitions
        report.admission_rejections = meta.guardrails.admission.rejections
    report.faults_planned = stats["planned"]
    report.faults_injected = stats["injected"]
    report.faults_reverted = stats["reverted"]
    report.faults_skipped = stats["skipped"]
    report.fault_errors = stats["errors"]
    report.forced_repairs = stats["forced_repairs"]
    report.residual_faults = stats["residual_faults"]
    report.mttr_mean = stats["mttr_mean"]
    report.mttr_max = stats["mttr_max"]
    if meta.sampler is not None:
        from ..obs.slo import evaluate_slos
        meta.sampler.flush()
        results = evaluate_slos(meta.default_slos(), meta.sampler.windows)
        report.slo = {
            "window_seconds": meta.sampler.window,
            "windows": len(meta.sampler.windows),
            "minutes_lost": round(sum(r.minutes_lost for r in results), 6),
            "alerts": sum(len(r.alerts) for r in results),
            "exhausted": sum(1 for r in results if r.exhausted),
            "budgets": {r.spec.name: round(r.budget_consumed, 6)
                        for r in results},
        }
    if include_events:
        report.events = [r.to_dict() for r in injector.records]
    return report
