"""Typed, revertible fault actions.

Each :class:`Fault` wraps one of the metasystem's existing failure
primitives (``SimMachine.fail``/``recover``, ``Topology.partition``/
``set_node_down``, the transport's loss/latency spike hooks, federation
shard outages) behind a uniform ``apply(meta)`` / ``revert(meta)`` pair,
so the :class:`~repro.chaos.injector.ChaosInjector` can schedule them on
the virtual clock and guarantee every applied fault is reverted.

Design rules:

* **revertible** — ``revert`` restores exactly the state ``apply``
  changed.  Transport-level spikes use the composable push/pop hooks on
  :class:`~repro.net.transport.Transport` (max of loss spikes, product
  of latency factors), so overlapping faults may revert in any order;
* **explicit failure** — applying a fault that cannot take effect (e.g.
  crashing a host that is already down) raises
  :class:`~repro.errors.ChaosError` rather than silently no-oping, so
  campaign reports never over-count injected faults;
* **bookkeeping** — ``apply`` records collateral damage (jobs lost with
  a crashed host) in :attr:`Fault.info` for the ResilienceReport.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Type

from ..errors import ChaosError, NetworkError

if TYPE_CHECKING:  # pragma: no cover — avoid the metasystem import cycle
    from ..metasystem import Metasystem

__all__ = [
    "Fault",
    "HostCrash",
    "HostRecover",
    "DomainPartition",
    "DomainHeal",
    "MessageLossSpike",
    "LatencySpike",
    "LoadSurge",
    "FederationShardOutage",
    "WorkerCrash",
    "WorkerRevive",
    "FAULT_CLASSES",
    "make_fault",
]


class Fault:
    """One revertible fault action against a metasystem."""

    kind = "fault"
    #: one-shot faults are repairs (recover/heal): applied once, nothing
    #: to revert
    one_shot = False
    #: faults sharing a lock group may not overlap on the same target;
    #: None means the group is the fault's own kind
    lock_group: Optional[str] = None

    def __init__(self, target: str = "", magnitude: float = 0.0):
        self.target = target
        self.magnitude = float(magnitude)
        self.applied = False
        #: collateral recorded by apply() (lost jobs, routing used, ...)
        self.info: Dict[str, Any] = {}

    @property
    def lock_key(self) -> Tuple[str, str]:
        return (self.lock_group or self.kind, self.target)

    # -- lifecycle ----------------------------------------------------------
    def apply(self, meta: "Metasystem") -> None:
        if self.applied:
            raise ChaosError(f"{self!r} already applied")
        self._apply(meta)
        self.applied = True

    def revert(self, meta: "Metasystem") -> None:
        if not self.applied:
            raise ChaosError(f"{self!r} was never applied")
        self._revert(meta)
        self.applied = False

    def _apply(self, meta: "Metasystem") -> None:
        raise NotImplementedError

    def _revert(self, meta: "Metasystem") -> None:
        pass

    def describe(self) -> Dict[str, Any]:
        return {"kind": self.kind, "target": self.target,
                "magnitude": self.magnitude}

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.target or '*'}>"


def _machine_of(meta: "Metasystem", name: str):
    try:
        return meta.host_by_name(name).machine
    except Exception:
        raise ChaosError(f"unknown host {name!r}") from None


def _domain_pair(target: str) -> Tuple[str, str]:
    parts = target.split("|")
    if len(parts) != 2 or not all(parts):
        raise ChaosError(
            f"partition target must be 'domainA|domainB', got {target!r}")
    return parts[0], parts[1]


class HostCrash(Fault):
    """Crash a host: its machine fails (running jobs are lost) and its
    network node goes down, so in-flight RPCs to it fail honestly."""

    kind = "host_crash"
    lock_group = "host"

    def _apply(self, meta: "Metasystem") -> None:
        machine = _machine_of(meta, self.target)
        if not machine.up:
            raise ChaosError(f"host {self.target} is already down")
        lost = machine.fail()
        meta.topology.set_node_down(machine.location, True)
        self.info["lost_jobs"] = len(lost)
        self.info["lost_work"] = float(sum(j.remaining for j in lost))

    def _revert(self, meta: "Metasystem") -> None:
        machine = _machine_of(meta, self.target)
        meta.topology.set_node_down(machine.location, False)
        machine.recover()


class HostRecover(Fault):
    """One-shot repair: bring a crashed host back (declarative plans)."""

    kind = "host_recover"
    lock_group = "host"
    one_shot = True

    def _apply(self, meta: "Metasystem") -> None:
        machine = _machine_of(meta, self.target)
        if machine.up:
            raise ChaosError(f"host {self.target} is already up")
        meta.topology.set_node_down(machine.location, False)
        machine.recover()


class DomainPartition(Fault):
    """Cut connectivity between two administrative domains."""

    kind = "domain_partition"
    lock_group = "partition"

    def _apply(self, meta: "Metasystem") -> None:
        a, b = _domain_pair(self.target)
        if tuple(sorted((a, b))) in meta.topology.partitions():
            raise ChaosError(f"{a}|{b} is already partitioned")
        try:
            meta.topology.partition(a, b)
        except NetworkError as exc:
            raise ChaosError(str(exc)) from None

    def _revert(self, meta: "Metasystem") -> None:
        a, b = _domain_pair(self.target)
        meta.topology.heal(a, b)


class DomainHeal(Fault):
    """One-shot repair: heal a partition (declarative plans)."""

    kind = "domain_heal"
    lock_group = "partition"
    one_shot = True

    def _apply(self, meta: "Metasystem") -> None:
        a, b = _domain_pair(self.target)
        if tuple(sorted((a, b))) not in meta.topology.partitions():
            raise ChaosError(f"{a}|{b} is not partitioned")
        meta.topology.heal(a, b)


class MessageLossSpike(Fault):
    """Raise the transport's message-loss probability to ``magnitude``
    (effective loss is the max of base probability and active spikes)."""

    kind = "message_loss_spike"

    def _apply(self, meta: "Metasystem") -> None:
        if not 0.0 < self.magnitude <= 1.0:
            raise ChaosError(
                f"loss spike magnitude must be in (0, 1], "
                f"got {self.magnitude}")
        meta.transport.push_loss_spike(self.magnitude)

    def _revert(self, meta: "Metasystem") -> None:
        try:
            meta.transport.pop_loss_spike(self.magnitude)
        except ValueError:
            pass  # already force-cleared by teardown


class LatencySpike(Fault):
    """Multiply sampled network latency by ``magnitude`` (active spikes
    compose as a product)."""

    kind = "latency_spike"

    def _apply(self, meta: "Metasystem") -> None:
        if self.magnitude <= 1.0:
            raise ChaosError(
                f"latency spike factor must exceed 1, got {self.magnitude}")
        meta.transport.push_latency_factor(self.magnitude)

    def _revert(self, meta: "Metasystem") -> None:
        try:
            meta.transport.pop_latency_factor(self.magnitude)
        except ValueError:
            pass  # already force-cleared by teardown


class LoadSurge(Fault):
    """Add ``magnitude`` background load to one host (another user's
    heavy job), slowing every object placed there."""

    kind = "load_surge"

    def _apply(self, meta: "Metasystem") -> None:
        if self.magnitude <= 0.0:
            raise ChaosError(
                f"load surge magnitude must be positive, "
                f"got {self.magnitude}")
        machine = _machine_of(meta, self.target)
        machine.set_background_load(machine.background_load + self.magnitude)

    def _revert(self, meta: "Metasystem") -> None:
        machine = _machine_of(meta, self.target)
        machine.set_background_load(machine.background_load - self.magnitude)


class FederationShardOutage(Fault):
    """Take one federated Collection shard offline — through the topology
    when the shard has a network node, else via the router's forced-down
    override."""

    kind = "shard_outage"

    def _shard(self, meta: "Metasystem"):
        shards = getattr(meta.collection, "shards_by_id", None)
        if not shards or self.target not in shards:
            raise ChaosError(
                f"no federation shard {self.target!r} "
                f"(is the metasystem federated?)")
        return shards[self.target]

    def _apply(self, meta: "Metasystem") -> None:
        shard = self._shard(meta)
        if shard.location is not None:
            if not meta.topology.node_up(shard.location):
                raise ChaosError(f"shard {self.target} is already down")
            meta.topology.set_node_down(shard.location, True)
            self.info["via"] = "topology"
        else:
            if shard.forced_down:
                raise ChaosError(f"shard {self.target} is already down")
            shard.forced_down = True
            self.info["via"] = "forced"

    def _revert(self, meta: "Metasystem") -> None:
        shard = self._shard(meta)
        if self.info.get("via") == "topology":
            meta.topology.set_node_down(shard.location, False)
        else:
            shard.forced_down = False


def _worker_pool(meta: "Metasystem", target: str) -> Tuple[Any, int]:
    suite = getattr(meta, "service", None)
    if suite is None:
        raise ChaosError(
            f"no live service tier to crash {target!r} in "
            f"(call start_service first)")
    try:
        idx = int(target.rsplit("-", 1)[1])
    except (IndexError, ValueError):
        raise ChaosError(
            f"worker target must be 'worker-N', got {target!r}") from None
    if not 0 <= idx < suite.pool.size:
        raise ChaosError(f"no worker {idx} in a pool of {suite.pool.size}")
    return suite.pool, idx


class WorkerCrash(Fault):
    """Kill one service-tier placement worker mid-whatever-it-is-doing.

    The worker's generator dies at its next resume point (no cleanup
    runs — in particular its lease is never released, which is the whole
    point: the Supervisor must detect the expiry and recover the orphan).
    The pool is resolved **lazily** at apply/revert time, so the same
    fault object keeps working across a checkpoint-restore that rebuilt
    the pool.
    """

    kind = "worker_crash"
    lock_group = "worker"

    def _apply(self, meta: "Metasystem") -> None:
        pool, idx = _worker_pool(meta, self.target)
        pool.kill(idx)  # ChaosError if already dead

    def _revert(self, meta: "Metasystem") -> None:
        pool, idx = _worker_pool(meta, self.target)
        pool.revive(idx)


class WorkerRevive(Fault):
    """One-shot repair: restart a killed worker (declarative plans)."""

    kind = "worker_revive"
    lock_group = "worker"
    one_shot = True

    def _apply(self, meta: "Metasystem") -> None:
        pool, idx = _worker_pool(meta, self.target)
        pool.revive(idx)  # ChaosError if alive


#: registry used by plans to instantiate faults from serialized events
FAULT_CLASSES: Dict[str, Type[Fault]] = {
    cls.kind: cls
    for cls in (HostCrash, HostRecover, DomainPartition, DomainHeal,
                MessageLossSpike, LatencySpike, LoadSurge,
                FederationShardOutage, WorkerCrash, WorkerRevive)
}


def make_fault(kind: str, target: str = "",
               magnitude: float = 0.0) -> Fault:
    cls = FAULT_CLASSES.get(kind)
    if cls is None:
        raise ChaosError(f"unknown fault kind {kind!r}; choose from "
                         f"{sorted(FAULT_CLASSES)}")
    return cls(target=target, magnitude=magnitude)
