"""chaos — deterministic fault-injection campaigns for the metasystem.

The paper claims the RMI "accommodates failure at any step in the
scheduling process" (section 3.1); this subsystem turns that claim into
measured behaviour:

* :mod:`~repro.chaos.faults` — typed, revertible fault actions over the
  existing failure primitives (host crash, domain partition, message
  loss, latency spikes, load surges, federation shard outages);
* :mod:`~repro.chaos.plan` — declarative fault timelines and seeded
  MTBF/MTTR campaign generators (same seed ⇒ byte-identical campaign);
* :mod:`~repro.chaos.injector` — the ChaosInjector daemon that applies
  and reverts faults on the virtual clock, emits ``chaos_*`` metrics
  and trace spans, and guarantees revert-on-teardown;
* :mod:`~repro.chaos.retry` — the opt-in RetryPolicy (seeded backoff)
  that lets the system *survive* transient faults;
* :mod:`~repro.chaos.report` / :mod:`~repro.chaos.campaign` —
  ResilienceReport aggregation and the end-to-end ``run_campaign``
  driver behind ``legion-sim chaos``.

Entry points: ``Metasystem.start_chaos(...)``,
``Metasystem.enable_retries(...)``, and
:func:`repro.chaos.campaign.run_campaign`.
"""

from .campaign import run_campaign
from .faults import (
    FAULT_CLASSES,
    DomainHeal,
    DomainPartition,
    Fault,
    FederationShardOutage,
    HostCrash,
    HostRecover,
    LatencySpike,
    LoadSurge,
    MessageLossSpike,
    make_fault,
)
from .injector import ChaosInjector, FaultRecord
from .plan import (
    PROFILES,
    CampaignConfig,
    ChaosPlan,
    FaultClassConfig,
    FaultEvent,
    generate_campaign,
)
from .report import ResilienceReport
from .retry import RetryPolicy

__all__ = [
    "Fault",
    "HostCrash",
    "HostRecover",
    "DomainPartition",
    "DomainHeal",
    "MessageLossSpike",
    "LatencySpike",
    "LoadSurge",
    "FederationShardOutage",
    "FAULT_CLASSES",
    "make_fault",
    "FaultEvent",
    "FaultClassConfig",
    "CampaignConfig",
    "ChaosPlan",
    "PROFILES",
    "generate_campaign",
    "ChaosInjector",
    "FaultRecord",
    "RetryPolicy",
    "ResilienceReport",
    "run_campaign",
]
