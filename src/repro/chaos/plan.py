"""Declarative fault timelines and seeded campaign generators.

A :class:`ChaosPlan` is a sorted list of :class:`FaultEvent`\\ s — pure
data, independent of any live metasystem — that the
:class:`~repro.chaos.injector.ChaosInjector` schedules on the virtual
clock.  Plans come from two places:

* **hand-written timelines** for scripted scenarios (tests, demos):
  ``ChaosPlan([FaultEvent(at=30, kind="host_crash", target="dom0-ws1",
  duration=60)])``;
* **seeded campaign generation** (:func:`generate_campaign`): each
  (fault class, target) pair gets its own named RNG stream from a
  registry rooted at the campaign seed, and outages arrive as a renewal
  process — exponential MTBF gaps between exponential-MTTR busy periods
  — so per-target faults never overlap and the same seed over the same
  testbed yields a byte-identical campaign regardless of what else the
  simulation does (common random numbers discipline, as in
  :mod:`repro.sim.rng`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import combinations
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Tuple

from ..errors import ChaosError
from ..sim.rng import RngRegistry, derive_seed

if TYPE_CHECKING:  # pragma: no cover
    from ..metasystem import Metasystem

__all__ = [
    "FaultEvent",
    "FaultClassConfig",
    "CampaignConfig",
    "ChaosPlan",
    "PROFILES",
    "generate_campaign",
]


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: apply at ``at``, revert ``duration`` later.

    ``duration=0`` means the fault persists until injector teardown
    (one-shot repair kinds ignore duration entirely)."""

    at: float
    kind: str
    target: str = ""
    duration: float = 0.0
    magnitude: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"at": self.at, "kind": self.kind, "target": self.target,
                "duration": self.duration, "magnitude": self.magnitude}


@dataclass(frozen=True)
class FaultClassConfig:
    """Renewal-process parameters for one fault class.

    ``mtbf`` is the mean gap between outages *per target*; ``mttr`` the
    mean outage duration; ``magnitude`` the (lo, hi) uniform range for
    the fault's intensity (loss probability, latency factor, load delta).
    """

    mtbf: float
    mttr: float
    magnitude: Tuple[float, float] = (0.0, 0.0)

    def __post_init__(self) -> None:
        if self.mtbf <= 0 or self.mttr <= 0:
            raise ValueError("mtbf and mttr must be positive")


@dataclass(frozen=True)
class CampaignConfig:
    """A full campaign: a horizon plus per-fault-class renewal configs."""

    horizon: float = 600.0
    classes: Dict[str, FaultClassConfig] = field(default_factory=dict)

    def with_horizon(self, horizon: float) -> "CampaignConfig":
        return replace(self, horizon=float(horizon))


@dataclass
class ChaosPlan:
    """A sorted, serializable fault timeline."""

    events: List[FaultEvent] = field(default_factory=list)
    horizon: float = 0.0
    seed: int = 0
    profile: str = ""

    def __post_init__(self) -> None:
        from .faults import FAULT_CLASSES
        for event in self.events:
            if event.kind not in FAULT_CLASSES:
                raise ChaosError(f"unknown fault kind {event.kind!r}")
            if event.at < 0 or event.duration < 0:
                raise ChaosError(
                    f"event times must be non-negative: {event}")
        self.events = sorted(self.events,
                             key=lambda e: (e.at, e.kind, e.target))
        if not self.horizon and self.events:
            self.horizon = max(e.at + e.duration for e in self.events)

    def __len__(self) -> int:
        return len(self.events)

    def counts_by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {"horizon": self.horizon, "seed": self.seed,
                "profile": self.profile,
                "events": [e.to_dict() for e in self.events]}

    def describe(self) -> str:
        counts = ", ".join(f"{k} x{n}"
                           for k, n in sorted(self.counts_by_kind().items()))
        return (f"{len(self.events)} fault(s) over {self.horizon:.0f}s"
                + (f": {counts}" if counts else ""))


#: named campaign shapes for the CLI / testbed knob.  MTBF/MTTR are per
#: target, in virtual seconds.
PROFILES: Dict[str, CampaignConfig] = {
    "light": CampaignConfig(horizon=600.0, classes={
        "host_crash": FaultClassConfig(mtbf=1200.0, mttr=60.0),
    }),
    "hosts": CampaignConfig(horizon=600.0, classes={
        "host_crash": FaultClassConfig(mtbf=400.0, mttr=90.0),
    }),
    "partitions": CampaignConfig(horizon=600.0, classes={
        "domain_partition": FaultClassConfig(mtbf=500.0, mttr=80.0),
    }),
    "lossy": CampaignConfig(horizon=600.0, classes={
        "message_loss_spike": FaultClassConfig(
            mtbf=150.0, mttr=150.0, magnitude=(0.35, 0.6)),
    }),
    "mixed": CampaignConfig(horizon=600.0, classes={
        "host_crash": FaultClassConfig(mtbf=900.0, mttr=80.0),
        "domain_partition": FaultClassConfig(mtbf=1000.0, mttr=70.0),
        "message_loss_spike": FaultClassConfig(
            mtbf=300.0, mttr=100.0, magnitude=(0.25, 0.5)),
        "latency_spike": FaultClassConfig(
            mtbf=500.0, mttr=90.0, magnitude=(2.0, 5.0)),
        "load_surge": FaultClassConfig(
            mtbf=400.0, mttr=120.0, magnitude=(2.0, 6.0)),
    }),
    "heavy": CampaignConfig(horizon=600.0, classes={
        "host_crash": FaultClassConfig(mtbf=300.0, mttr=100.0),
        "domain_partition": FaultClassConfig(mtbf=400.0, mttr=90.0),
        "message_loss_spike": FaultClassConfig(
            mtbf=150.0, mttr=130.0, magnitude=(0.4, 0.7)),
        "latency_spike": FaultClassConfig(
            mtbf=300.0, mttr=100.0, magnitude=(3.0, 8.0)),
        "load_surge": FaultClassConfig(
            mtbf=200.0, mttr=150.0, magnitude=(3.0, 8.0)),
        "shard_outage": FaultClassConfig(mtbf=500.0, mttr=120.0),
    }),
}


def _targets_for(meta: "Metasystem", kind: str) -> List[str]:
    """Deterministic target universe for one fault class."""
    if kind in ("host_crash", "host_recover", "load_surge"):
        return sorted(h.machine.name for h in meta.hosts)
    if kind in ("domain_partition", "domain_heal"):
        names = sorted(d.name for d in meta.topology.domains())
        return [f"{a}|{b}" for a, b in combinations(names, 2)]
    if kind in ("message_loss_spike", "latency_spike"):
        return [""]  # transport-wide
    if kind == "shard_outage":
        if meta.federation_config is None:
            return []
        return sorted(s.shard_id for s in meta.collection_shards)
    if kind in ("worker_crash", "worker_revive"):
        if meta.service is None:
            return []
        return [f"worker-{i}" for i in range(meta.service.pool.size)]
    raise ChaosError(f"unknown fault kind {kind!r}")


def generate_campaign(meta: "Metasystem",
                      config: CampaignConfig,
                      seed: int = 0,
                      profile: str = "") -> ChaosPlan:
    """Generate a seeded campaign over the metasystem's current topology.

    Pure function of (topology names, config, seed): the generator uses
    its *own* RNG registry rooted at the campaign seed — never the
    metasystem's streams — so generating a campaign perturbs nothing and
    the same seed reproduces the same timeline byte for byte.
    """
    rngs = RngRegistry(derive_seed(seed, "chaos", "campaign"))
    events: List[FaultEvent] = []
    for kind in sorted(config.classes):
        cls_cfg = config.classes[kind]
        for target in _targets_for(meta, kind):
            rng = rngs.stream(kind, target or "-")
            t = 0.0
            while True:
                t += float(rng.exponential(cls_cfg.mtbf))
                if t >= config.horizon:
                    break
                duration = float(rng.exponential(cls_cfg.mttr))
                lo, hi = cls_cfg.magnitude
                magnitude = (float(rng.uniform(lo, hi)) if hi > lo
                             else float(lo))
                events.append(FaultEvent(at=t, kind=kind, target=target,
                                         duration=duration,
                                         magnitude=magnitude))
                t += duration  # sequential renewal: no per-target overlap
    return ChaosPlan(events=events, horizon=config.horizon, seed=seed,
                     profile=profile)
