"""RetryPolicy: seeded exponential backoff for transient faults.

"Legion objects are built to accommodate failure at any step in the
scheduling process" (paper section 3.1) — this is the *policy* half of
that claim.  A :class:`RetryPolicy` is installed opt-in
(:meth:`repro.metasystem.Metasystem.enable_retries`) on:

* :meth:`repro.net.transport.Transport.invoke` — retries network
  failures of calls the caller marked ``idempotent=True`` (Collection
  queries are; ``create_instance`` is not);
* the Enactor's reservation round
  (:meth:`repro.enactor.enactor.Enactor._retry_failed`) — re-issues
  reservation requests whose failures were transient before falling
  back to variant schedules.

Retryability is classified by the error hierarchy
(:attr:`repro.errors.LegionError.retryable`): a
:class:`~repro.errors.MessageLostError` is a per-message coin flip, so
resending is exactly right; a
:class:`~repro.errors.HostUnreachableError` persists on simulation
timescales, so it is not retried unless ``retry_unreachable`` is set.

Backoff jitter draws from a seeded stream, keeping retry-enabled runs
fully deterministic.
"""

from __future__ import annotations

import math
from typing import Any, Optional

__all__ = ["RetryPolicy"]


class RetryPolicy:
    """Exponential backoff + jitter with attempt cap and deadline.

    ``attempt`` counts failures so far: after the first failure
    ``next_delay(exc, 1, elapsed)`` is consulted, and retries stop when
    ``attempt >= max_attempts`` (so ``max_attempts`` bounds *total*
    tries), when ``elapsed`` exceeds ``deadline`` virtual seconds, or
    when the error is not retryable.
    """

    def __init__(self, max_attempts: int = 4,
                 base_delay: float = 0.5,
                 multiplier: float = 2.0,
                 max_delay: float = 30.0,
                 jitter: float = 0.5,
                 deadline: float = math.inf,
                 retry_unreachable: bool = False,
                 rng: Any = None):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be non-negative")
        if multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.max_attempts = int(max_attempts)
        self.base_delay = float(base_delay)
        self.multiplier = float(multiplier)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self.deadline = float(deadline)
        self.retry_unreachable = retry_unreachable
        #: seeded numpy Generator for jitter; None disables jitter
        self.rng = rng

    # -- classification -----------------------------------------------------
    def is_retryable(self, exc: BaseException) -> bool:
        """Generic flag-driven classification.

        An instance-level ``retryable`` attribute is authoritative in
        both directions — ``exc.retryable = False`` set on a single
        raised error vetoes retries even for a class whose default is
        retryable, and the ``retry_unreachable`` escape hatch never
        overrides an explicit veto (so a
        :class:`~repro.errors.CircuitOpenError` always fails fast).
        """
        override = exc.__dict__.get("retryable") if hasattr(exc, "__dict__") \
            else None
        if override is not None:
            return bool(override)
        if getattr(exc, "retryable", False):
            return True
        if self.retry_unreachable:
            from ..errors import HostUnreachableError
            return isinstance(exc, HostUnreachableError)
        return False

    # -- backoff ------------------------------------------------------------
    def backoff(self, attempt: int) -> float:
        """Jittered delay before retry number ``attempt`` (1-based)."""
        raw = min(self.base_delay * self.multiplier ** (attempt - 1),
                  self.max_delay)
        if self.jitter > 0.0 and self.rng is not None:
            raw *= 1.0 + self.jitter * float(self.rng.uniform(-1.0, 1.0))
        return max(raw, 0.0)

    def next_delay(self, exc: BaseException, attempt: int,
                   elapsed: float) -> Optional[float]:
        """Delay before the next try, or None to give up."""
        if not self.is_retryable(exc):
            return None
        if attempt >= self.max_attempts:
            return None
        if elapsed >= self.deadline:
            return None
        return self.backoff(attempt)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<RetryPolicy attempts={self.max_attempts} "
                f"base={self.base_delay} x{self.multiplier} "
                f"max={self.max_delay} jitter={self.jitter}>")
