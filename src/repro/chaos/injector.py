"""ChaosInjector: a fault-injection daemon on the simulation kernel.

:meth:`ChaosInjector.arm` schedules every event of a
:class:`~repro.chaos.plan.ChaosPlan` on the virtual clock; faults apply
and revert at their planned times while the protocol under test runs.
The injector

* **locks targets** — two faults sharing a lock key (e.g. two crashes of
  the same host) never overlap; the later one is recorded as skipped;
* **emits telemetry** — ``chaos_*`` counters/gauges in the metrics
  registry, and one detached root span per fault window
  (``chaos:<kind>``) via :meth:`SpanTracer.record_span`, so injected
  faults appear alongside protocol spans in Chrome-trace exports;
* **guarantees revert-on-teardown** — :meth:`teardown` reverts every
  still-active fault (reverse apply order), then sweeps the whole
  substrate (topology, transport spikes, machines, federation shards)
  and force-repairs anything left, reporting residuals so tests and CI
  can assert the world ends fault-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..errors import ChaosError
from .faults import Fault, make_fault
from .plan import ChaosPlan

if TYPE_CHECKING:  # pragma: no cover
    from ..metasystem import Metasystem

__all__ = ["ChaosInjector", "FaultRecord"]


@dataclass
class FaultRecord:
    """The injector's log entry for one planned fault."""

    index: int
    kind: str
    target: str
    scheduled_at: float
    duration: float
    magnitude: float
    applied_at: Optional[float] = None
    reverted_at: Optional[float] = None
    skipped: bool = False
    error: str = ""
    #: reverted by teardown rather than at its planned time
    forced: bool = False
    lost_jobs: int = 0
    lost_work: float = 0.0
    fault: Optional[Fault] = field(default=None, repr=False)

    @property
    def active(self) -> bool:
        return self.applied_at is not None and self.reverted_at is None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index, "kind": self.kind, "target": self.target,
            "scheduled_at": self.scheduled_at, "duration": self.duration,
            "magnitude": self.magnitude, "applied_at": self.applied_at,
            "reverted_at": self.reverted_at, "skipped": self.skipped,
            "error": self.error, "forced": self.forced,
            "lost_jobs": self.lost_jobs, "lost_work": self.lost_work,
        }


class ChaosInjector:
    """Applies and reverts a plan's faults at virtual times."""

    def __init__(self, meta: "Metasystem", plan: ChaosPlan):
        self.meta = meta
        self.plan = plan
        self.records: List[FaultRecord] = []
        self.armed = False
        self.torn_down = False
        #: residual fault descriptions found at teardown (should be [])
        self.residuals: List[str] = []
        #: repairs the teardown sweep had to force (should be 0)
        self.forced_repairs = 0
        self._locks: Dict[Tuple[str, str], int] = {}

    # -- arming --------------------------------------------------------------
    def arm(self) -> "ChaosInjector":
        """Schedule every planned fault on the simulator."""
        if self.armed:
            raise ChaosError("injector is already armed")
        self.armed = True
        for i, event in enumerate(self.plan.events):
            fault = make_fault(event.kind, event.target, event.magnitude)
            record = FaultRecord(
                index=i, kind=event.kind, target=event.target,
                scheduled_at=event.at, duration=event.duration,
                magnitude=event.magnitude, fault=fault)
            self.records.append(record)
            self.meta.sim.schedule_at(event.at,
                                      lambda r=record: self._apply(r))
        return self

    # -- apply / revert -------------------------------------------------------
    def _apply(self, record: FaultRecord) -> None:
        if self.torn_down:
            record.skipped = True
            return
        key = record.fault.lock_key
        if key in self._locks:
            record.skipped = True
            record.error = "target busy (overlapping fault)"
            self.meta.metrics.count("chaos_faults_skipped_total",
                                    kind=record.kind)
            return
        try:
            record.fault.apply(self.meta)
        except ChaosError as exc:
            record.error = str(exc)
            self.meta.metrics.count("chaos_fault_errors_total",
                                    kind=record.kind)
            return
        record.applied_at = self.meta.now
        record.lost_jobs = int(record.fault.info.get("lost_jobs", 0))
        record.lost_work = float(record.fault.info.get("lost_work", 0.0))
        self.meta.metrics.count("chaos_faults_injected_total",
                                kind=record.kind)
        if record.lost_jobs:
            self.meta.metrics.count("chaos_jobs_lost_total",
                                    record.lost_jobs)
        if record.fault.one_shot:
            # a repair action: done the moment it applies
            record.reverted_at = record.applied_at
            self.meta.spans.record_span(
                f"chaos:{record.kind}", start=record.applied_at,
                end=record.applied_at, target=record.target)
            return
        self._locks[key] = record.index
        self.meta.metrics.set_gauge("chaos_active_faults",
                                    float(len(self._locks)))
        if record.duration > 0:
            self.meta.sim.schedule(record.duration,
                                   lambda r=record: self._revert(r))
        # duration == 0: the fault persists until teardown

    def _revert(self, record: FaultRecord, forced: bool = False) -> None:
        if self.torn_down and not forced:
            return
        if not record.active:
            return
        try:
            record.fault.revert(self.meta)
        except ChaosError as exc:
            record.error = str(exc)
            self.meta.metrics.count("chaos_fault_errors_total",
                                    kind=record.kind)
        record.reverted_at = self.meta.now
        record.forced = forced
        key = record.fault.lock_key
        if self._locks.get(key) == record.index:
            del self._locks[key]
        self.meta.metrics.count("chaos_faults_reverted_total",
                                kind=record.kind)
        self.meta.metrics.set_gauge("chaos_active_faults",
                                    float(len(self._locks)))
        self.meta.spans.record_span(
            f"chaos:{record.kind}", start=record.applied_at,
            end=record.reverted_at, target=record.target,
            magnitude=record.magnitude, forced=forced)

    # -- teardown ------------------------------------------------------------
    def teardown(self) -> "ChaosInjector":
        """Revert every active fault, then force-repair anything left.

        After teardown the metasystem is guaranteed fault-free:
        :attr:`residuals` lists whatever the sweep found still broken
        (a correct run leaves it empty) and :attr:`forced_repairs`
        counts the repairs it had to make.
        """
        if self.torn_down:
            return self
        for record in sorted(
                (r for r in self.records if r.active),
                key=lambda r: r.applied_at, reverse=True):
            self._revert(record, forced=True)
        self.torn_down = True  # pending apply/revert callbacks now no-op
        self.residuals = self.residual_faults()
        self.forced_repairs = self._force_repair()
        self.meta.metrics.set_gauge("chaos_residual_faults",
                                    float(len(self.residuals)))
        self.meta.metrics.set_gauge("chaos_active_faults", 0.0)
        return self

    def residual_faults(self) -> List[str]:
        """Every fault-like condition currently present in the world."""
        issues: List[str] = []
        topology = self.meta.topology
        for a, b in topology.partitions():
            issues.append(f"partition {a}|{b}")
        for loc in topology.down_nodes():
            issues.append(f"node down {loc}")
        for host in self.meta.hosts:
            if not host.machine.up:
                issues.append(f"machine down {host.machine.name}")
        transport = self.meta.transport
        if transport._loss_spikes:
            issues.append(
                f"{len(transport._loss_spikes)} loss spike(s) active")
        if transport._latency_factors:
            issues.append(
                f"{len(transport._latency_factors)} latency factor(s) "
                f"active")
        for shard in self.meta.collection_shards:
            if shard.forced_down:
                issues.append(f"shard forced down {shard.shard_id}")
        service = getattr(self.meta, "service", None)
        if service is not None:
            for idx in service.pool.dead_workers:
                issues.append(f"service worker dead worker-{idx}")
        return issues

    def _force_repair(self) -> int:
        repairs = self.meta.topology.clear_faults()
        repairs += self.meta.transport.clear_spikes()
        for host in self.meta.hosts:
            if not host.machine.up:
                host.machine.recover()
                repairs += 1
        for shard in self.meta.collection_shards:
            if shard.forced_down:
                shard.forced_down = False
                repairs += 1
        service = getattr(self.meta, "service", None)
        if service is not None:
            for idx in service.pool.dead_workers:
                service.pool.revive(idx)
                repairs += 1
        return repairs

    # -- introspection --------------------------------------------------------
    @property
    def active_count(self) -> int:
        return len(self._locks)

    def stats(self) -> Dict[str, Any]:
        """Aggregate view of the campaign for reports."""
        injected: Dict[str, int] = {}
        reverted: Dict[str, int] = {}
        skipped = errors = jobs_lost = 0
        work_lost = 0.0
        repair_times: List[float] = []
        for r in self.records:
            if r.skipped:
                skipped += 1
                continue
            if r.error and r.applied_at is None:
                errors += 1
                continue
            if r.applied_at is not None:
                injected[r.kind] = injected.get(r.kind, 0) + 1
                jobs_lost += r.lost_jobs
                work_lost += r.lost_work
            if r.applied_at is not None and r.reverted_at is not None:
                reverted[r.kind] = reverted.get(r.kind, 0) + 1
                if not r.fault.one_shot:
                    repair_times.append(r.reverted_at - r.applied_at)
        return {
            "planned": len(self.records),
            "injected": injected,
            "reverted": reverted,
            "skipped": skipped,
            "errors": errors,
            "jobs_lost": jobs_lost,
            "work_lost": work_lost,
            "forced_repairs": self.forced_repairs,
            "residual_faults": list(self.residuals),
            "mttr_mean": (sum(repair_times) / len(repair_times)
                          if repair_times else 0.0),
            "mttr_max": max(repair_times) if repair_times else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<ChaosInjector plan={len(self.plan)} "
                f"active={self.active_count} "
                f"torn_down={self.torn_down}>")
