"""The Collection subsystem: the information database, its query language,
and the Data Collection Daemon."""

from .collection import Collection, Credential
from .daemon import DataCollectionDaemon
from .indexing import IndexedCollection
from .records import CollectionRecord
from .query import (
    UNDEFINED,
    CompiledQuery,
    QueryFunctions,
    compile_query,
    evaluate,
    matches,
    parse,
)

__all__ = [
    "Collection", "IndexedCollection", "Credential", "CollectionRecord",
    "DataCollectionDaemon",
    "parse", "evaluate", "matches", "QueryFunctions", "UNDEFINED",
    "compile_query", "CompiledQuery",
]
