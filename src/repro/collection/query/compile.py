"""Compiled query plans: closure-based evaluation of Collection queries.

The tree-walking evaluator in :mod:`.evaluate` re-dispatches on node types
for every record it tests; on a metasystem-scale Collection that dispatch
dominates query cost (the E19a measurement).  :func:`compile_query` walks
the AST **once** and emits a tree of plain Python closures — one callable
per node — so matching a record is straight calls with no ``isinstance``
chain.  Common selective shapes get specialized fast paths:

* ``$attr == "literal"``     — direct string equality on the snapshot value;
* ``$attr == <number|bool>`` — direct numeric equality (bools coerce, as in
  :func:`.evaluate._loose_eq`);
* ``$attr < <number>`` (and ``<= > >=``) — direct numeric ordering.

Every fast path guards on the runtime type of the attribute value and
falls back to the shared semantic helpers (``_compare``, ``_arith``,
``_truthy``) from :mod:`.evaluate` the moment anything unusual shows up
(lists, UNDEFINED, cross-type comparisons), so a compiled plan is
**semantically identical** to the tree walk — pinned by the differential
fuzz test in ``tests/test_query_compile.py``.

Injected functions are looked up *at call time* through the captured
:class:`~.evaluate.QueryFunctions` registry, preserving two tree-walk
behaviours: functions registered after compilation are visible, and an
unknown function only raises if evaluation actually reaches it (short
circuits still protect it).

A plan also records what it needs from the record mapping
(:attr:`CompiledQuery.uses_loid`, :attr:`CompiledQuery.has_calls`), which
lets the Collection skip building a record view entirely for plans that
read nothing but stored attributes — the common scheduler viability query.
"""

from __future__ import annotations

from typing import Any, Callable, List, Mapping, Optional

from ...errors import QueryEvaluationError
from .ast import And, Arith, Attr, Call, Compare, Literal, Node, Not, Or
from .evaluate import (
    UNDEFINED,
    QueryFunctions,
    _arith,
    _compare,
    _truthy,
)

__all__ = ["CompiledQuery", "compile_query"]

#: a compiled node: record mapping -> value
_PlanFn = Callable[[Mapping[str, Any]], Any]


class CompiledQuery:
    """A reusable, closure-based plan for one parsed query."""

    __slots__ = ("ast", "uses_loid", "has_calls", "attr_names", "_fn")

    def __init__(self, ast: Node, fn: _PlanFn, uses_loid: bool,
                 has_calls: bool, attr_names: tuple):
        self.ast = ast
        self._fn = fn
        #: the plan reads the implicit ``$loid`` attribute
        self.uses_loid = uses_loid
        #: the plan invokes query functions (which receive the record)
        self.has_calls = has_calls
        #: every ``$attr`` name the plan reads
        self.attr_names = attr_names

    def evaluate(self, record: Mapping[str, Any]) -> Any:
        """The compiled analogue of :func:`.evaluate.evaluate`."""
        return self._fn(record)

    def matches(self, record: Mapping[str, Any]) -> bool:
        """The compiled analogue of :func:`.evaluate.matches`."""
        return _truthy(self._fn(record))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CompiledQuery attrs={self.attr_names}>"


class _Compiler:
    """One compilation pass; accumulates the plan's attribute footprint."""

    def __init__(self, functions: QueryFunctions):
        self.fns = functions
        self.attr_names: List[str] = []
        self.has_calls = False

    # -- node dispatch ------------------------------------------------------
    def compile(self, node: Node) -> _PlanFn:
        if isinstance(node, Literal):
            value = node.value
            return lambda record: value
        if isinstance(node, Attr):
            name = node.name
            if name not in self.attr_names:
                self.attr_names.append(name)
            return lambda record: record.get(name, UNDEFINED)
        if isinstance(node, Or):
            left, right = self.compile(node.left), self.compile(node.right)
            return lambda record: (_truthy(left(record))
                                   or _truthy(right(record)))
        if isinstance(node, And):
            left, right = self.compile(node.left), self.compile(node.right)
            return lambda record: (_truthy(left(record))
                                   and _truthy(right(record)))
        if isinstance(node, Not):
            operand = self.compile(node.operand)
            return lambda record: not _truthy(operand(record))
        if isinstance(node, Compare):
            return self._compile_compare(node)
        if isinstance(node, Arith):
            op = node.op
            left, right = self.compile(node.left), self.compile(node.right)
            return lambda record: _arith(op, left(record), right(record))
        if isinstance(node, Call):
            return self._compile_call(node)
        raise QueryEvaluationError(f"cannot compile node {node!r}")

    # -- comparisons --------------------------------------------------------
    def _compile_compare(self, node: Compare) -> _PlanFn:
        op = node.op
        # fast path: $attr <op> scalar-literal (either side)
        attr_node: Optional[Attr] = None
        lit_node: Optional[Literal] = None
        flipped = False
        if isinstance(node.left, Attr) and isinstance(node.right, Literal):
            attr_node, lit_node = node.left, node.right
        elif isinstance(node.right, Attr) and isinstance(node.left, Literal):
            attr_node, lit_node, flipped = node.right, node.left, True
        if attr_node is not None and lit_node is not None:
            fast = self._attr_literal_compare(op, attr_node.name,
                                              lit_node.value, flipped)
            if fast is not None:
                if attr_node.name not in self.attr_names:
                    self.attr_names.append(attr_node.name)
                return fast
        left, right = self.compile(node.left), self.compile(node.right)
        return lambda record: _compare(op, left(record), right(record))

    def _attr_literal_compare(self, op: str, name: str, lit: Any,
                              flipped: bool) -> Optional[_PlanFn]:
        """A specialized ``$name <op> lit`` closure, or None.

        The guard checks the runtime type of the stored value and defers
        to :func:`._compare` (which handles lists, UNDEFINED, and
        cross-type rules) whenever the value is not a plain scalar of a
        directly comparable kind.
        """
        if isinstance(lit, str):
            if op == "==":
                def fn(record: Mapping[str, Any]) -> bool:
                    v = record.get(name, UNDEFINED)
                    if type(v) is str:
                        return v == lit
                    return _compare("==", v, lit)
                return fn
            if op == "!=":
                def fn(record: Mapping[str, Any]) -> bool:
                    v = record.get(name, UNDEFINED)
                    if type(v) is str:
                        return v != lit
                    return _compare("!=", v, lit)
                return fn
            return None
        if isinstance(lit, (bool, int, float)):
            litf = float(lit)
            if op == "==":
                def fn(record: Mapping[str, Any]) -> bool:
                    v = record.get(name, UNDEFINED)
                    t = type(v)
                    if t is int or t is float or t is bool:
                        return float(v) == litf
                    return _compare("==", v, lit)
                return fn
            if op == "!=":
                def fn(record: Mapping[str, Any]) -> bool:
                    v = record.get(name, UNDEFINED)
                    t = type(v)
                    if t is int or t is float or t is bool:
                        return float(v) != litf
                    return _compare("!=", v, lit)
                return fn
            if op in ("<", "<=", ">", ">="):
                # the stored value sits on the attr side: when the query
                # was written literal-first ($x in ``2 > $x``), the
                # effective operator over the attr value is mirrored
                eff = op
                if flipped:
                    eff = {"<": ">", "<=": ">=",
                           ">": "<", ">=": "<="}[op]

                def make(eff_op: str) -> _PlanFn:
                    if eff_op == "<":
                        cmp = lambda a, b: a < b  # noqa: E731
                    elif eff_op == "<=":
                        cmp = lambda a, b: a <= b  # noqa: E731
                    elif eff_op == ">":
                        cmp = lambda a, b: a > b  # noqa: E731
                    else:
                        cmp = lambda a, b: a >= b  # noqa: E731

                    def fn(record: Mapping[str, Any]) -> bool:
                        v = record.get(name, UNDEFINED)
                        t = type(v)
                        if t is int or t is float or t is bool:
                            return cmp(float(v), litf)
                        if flipped:
                            return _compare(op, lit, v)
                        return _compare(op, v, lit)
                    return fn
                return make(eff)
        return None

    # -- calls --------------------------------------------------------------
    def _compile_call(self, node: Call) -> _PlanFn:
        self.has_calls = True
        fns = self.fns
        name = node.name
        if name == "match" and len(node.args) == 2:
            # argument-order leniency (see evaluate()): with exactly one
            # string-literal argument, that literal is the regex
            a0, a1 = node.args
            lit0 = isinstance(a0, Literal) and isinstance(a0.value, str)
            lit1 = isinstance(a1, Literal) and isinstance(a1.value, str)
            if lit1 and not lit0:
                regex_fn = self.compile(a1)
                value_fn = self.compile(a0)
                return lambda record: fns.get("match")(
                    [regex_fn(record), value_fn(record)], record)
        arg_fns = tuple(self.compile(a) for a in node.args)
        return lambda record: fns.get(name)(
            [fn(record) for fn in arg_fns], record)


def compile_query(node: Node,
                  functions: Optional[QueryFunctions] = None
                  ) -> CompiledQuery:
    """Compile a parsed query AST into a reusable closure plan.

    The plan is bound to ``functions`` (defaulting to a fresh registry
    with the built-ins): later registrations on the same registry are
    picked up because function resolution happens per evaluation.
    """
    fns = functions if functions is not None else QueryFunctions()
    compiler = _Compiler(fns)
    fn = compiler.compile(node)
    attr_names = tuple(compiler.attr_names)
    return CompiledQuery(node, fn, uses_loid="loid" in attr_names,
                         has_calls=compiler.has_calls,
                         attr_names=attr_names)
