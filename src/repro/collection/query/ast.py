"""AST node types for the Collection query grammar.

The grammar reproduces the MESSIAHS-derived query language the paper cites
(section 3.2): logical expressions over record attributes with field
matching, semantic comparisons, and boolean combination; identifiers are of
the form ``$AttributeName``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

__all__ = ["Node", "Or", "And", "Not", "Compare", "Arith", "Call", "Attr",
           "Literal"]


class Node:
    """Base query AST node."""

    def unparse(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Or(Node):
    left: Node
    right: Node

    def unparse(self) -> str:
        return f"({self.left.unparse()} or {self.right.unparse()})"


@dataclass(frozen=True)
class And(Node):
    left: Node
    right: Node

    def unparse(self) -> str:
        return f"({self.left.unparse()} and {self.right.unparse()})"


@dataclass(frozen=True)
class Not(Node):
    operand: Node

    def unparse(self) -> str:
        return f"(not {self.operand.unparse()})"


@dataclass(frozen=True)
class Compare(Node):
    """A semantic comparison: ==, !=, <, <=, >, >=."""

    op: str
    left: Node
    right: Node

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"


@dataclass(frozen=True)
class Arith(Node):
    """An arithmetic expression: +, -, *, /."""

    op: str
    left: Node
    right: Node

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"


@dataclass(frozen=True)
class Call(Node):
    """A built-in or injected function call, e.g. ``match(...)``."""

    name: str
    args: Tuple[Node, ...]

    def unparse(self) -> str:
        inner = ", ".join(a.unparse() for a in self.args)
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class Attr(Node):
    """An attribute reference: ``$AttributeName``."""

    name: str

    def unparse(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class Literal(Node):
    """A string, number, or boolean literal."""

    value: Any

    def unparse(self) -> str:
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        if isinstance(self.value, str):
            escaped = self.value.replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        return repr(self.value)
