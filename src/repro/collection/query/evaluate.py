"""Evaluator for Collection query ASTs.

Semantics
---------
* ``$attr`` resolves against the record's attribute snapshot; a missing
  attribute yields the ``UNDEFINED`` sentinel.  Any comparison or function
  over UNDEFINED is false (except ``defined()``), so records lacking a field
  simply fail to match — they never raise.
* List-valued attributes match existentially: ``$compatible_archs == "x86"``
  holds if any element equals ``"x86"``.
* ``match(regex, value)`` applies the regex (Python :mod:`re`, standing in
  for the Unix ``regexp()`` library the paper used) with *search* semantics.
  The paper's own text is inconsistent about argument order (its footnote 5
  corrects its first example), so when exactly one argument is a string
  literal and the other an attribute, the literal is taken as the regex —
  both of the paper's example forms therefore work.
* Numeric comparisons coerce int/float/bool; string comparisons are exact.
  Cross-type comparisons are false rather than errors.

Injected functions (section 3.2 "function injection") receive the evaluated
arguments plus the whole record and may compute new description information
on the fly.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Mapping, Optional

from ...errors import QueryEvaluationError
from .ast import And, Arith, Attr, Call, Compare, Literal, Node, Not, Or

__all__ = ["UNDEFINED", "evaluate", "matches", "QueryFunctions"]


class _Undefined:
    """Sentinel for a missing attribute."""

    _instance: Optional["_Undefined"] = None

    def __new__(cls) -> "_Undefined":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNDEFINED"

    def __bool__(self) -> bool:
        return False


UNDEFINED = _Undefined()

#: signature of an injected function: (args, record_attributes) -> value
InjectedFn = Callable[[List[Any], Mapping[str, Any]], Any]


class QueryFunctions:
    """Registry of callable query functions (built-ins + injected)."""

    def __init__(self) -> None:
        self._fns: Dict[str, InjectedFn] = {}
        self.register("match", _fn_match)
        self.register("defined", _fn_defined)
        self.register("contains", _fn_contains)
        self.register("oneof", _fn_oneof)

    def register(self, name: str, fn: InjectedFn) -> None:
        if not callable(fn):
            raise TypeError(f"injected function {name!r} must be callable")
        self._fns[name] = fn

    def unregister(self, name: str) -> None:
        self._fns.pop(name, None)

    def get(self, name: str) -> InjectedFn:
        fn = self._fns.get(name)
        if fn is None:
            raise QueryEvaluationError(f"unknown query function {name!r}")
        return fn

    def __contains__(self, name: str) -> bool:
        return name in self._fns


# ---------------------------------------------------------------------------
# built-in functions
# ---------------------------------------------------------------------------

_REGEX_CACHE: Dict[str, re.Pattern] = {}


def _compiled(pattern: str) -> re.Pattern:
    pat = _REGEX_CACHE.get(pattern)
    if pat is None:
        try:
            pat = re.compile(pattern)
        except re.error as err:
            raise QueryEvaluationError(
                f"bad regular expression {pattern!r}: {err}") from None
        _REGEX_CACHE[pattern] = pat
    return pat


def _fn_match(args: List[Any], record: Mapping[str, Any]) -> bool:
    if len(args) != 2:
        raise QueryEvaluationError(
            f"match() takes 2 arguments, got {len(args)}")
    a, b = args
    if a is UNDEFINED or b is UNDEFINED:
        return False
    # Footnote-5 rule: the first argument is the regex.  (The literal/attr
    # reordering for the paper's older example form happens in evaluate().)
    regex, value = a, b
    pattern = _compiled(str(regex))
    if isinstance(value, list):
        return any(pattern.search(str(v)) is not None for v in value)
    return pattern.search(str(value)) is not None


def _fn_defined(args: List[Any], record: Mapping[str, Any]) -> bool:
    if len(args) != 1:
        raise QueryEvaluationError(
            f"defined() takes 1 argument, got {len(args)}")
    return args[0] is not UNDEFINED


def _fn_contains(args: List[Any], record: Mapping[str, Any]) -> bool:
    if len(args) != 2:
        raise QueryEvaluationError(
            f"contains() takes 2 arguments, got {len(args)}")
    haystack, needle = args
    if haystack is UNDEFINED or needle is UNDEFINED:
        return False
    if isinstance(haystack, list):
        return any(_loose_eq(v, needle) for v in haystack)
    if isinstance(haystack, str):
        return str(needle) in haystack
    return False


def _fn_oneof(args: List[Any], record: Mapping[str, Any]) -> bool:
    if len(args) < 2:
        raise QueryEvaluationError("oneof() takes a value plus candidates")
    value, candidates = args[0], args[1:]
    if value is UNDEFINED:
        return False
    return any(_loose_eq(value, c) for c in candidates)


# ---------------------------------------------------------------------------
# comparison semantics
# ---------------------------------------------------------------------------

def _is_number(v: Any) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool) or \
        isinstance(v, bool)


def _loose_eq(a: Any, b: Any) -> bool:
    if isinstance(a, str) and isinstance(b, str):
        return a == b
    if _is_number(a) and _is_number(b):
        return float(a) == float(b)
    return a == b if type(a) is type(b) else False


def _compare_scalar(op: str, a: Any, b: Any) -> bool:
    if a is UNDEFINED or b is UNDEFINED:
        return False
    if op == "==":
        return _loose_eq(a, b)
    if op == "!=":
        return not _loose_eq(a, b)
    # ordering comparisons
    if isinstance(a, str) and isinstance(b, str):
        pass  # lexicographic
    elif _is_number(a) and _is_number(b):
        a, b = float(a), float(b)
    else:
        return False
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    if op == ">=":
        return a >= b
    raise QueryEvaluationError(f"unknown comparison operator {op!r}")


def _compare(op: str, a: Any, b: Any) -> bool:
    """Existential semantics over list-valued sides."""
    a_list = a if isinstance(a, list) else [a]
    b_list = b if isinstance(b, list) else [b]
    return any(_compare_scalar(op, x, y) for x in a_list for y in b_list)


# ---------------------------------------------------------------------------
# evaluation
# ---------------------------------------------------------------------------

def evaluate(node: Node, record: Mapping[str, Any],
             functions: Optional[QueryFunctions] = None) -> Any:
    """Evaluate a query AST against one record's attribute mapping."""
    fns = functions or _DEFAULT_FUNCTIONS

    def ev(n: Node) -> Any:
        if isinstance(n, Literal):
            return n.value
        if isinstance(n, Attr):
            return record.get(n.name, UNDEFINED)
        if isinstance(n, Or):
            return _truthy(ev(n.left)) or _truthy(ev(n.right))
        if isinstance(n, And):
            return _truthy(ev(n.left)) and _truthy(ev(n.right))
        if isinstance(n, Not):
            return not _truthy(ev(n.operand))
        if isinstance(n, Compare):
            return _compare(n.op, ev(n.left), ev(n.right))
        if isinstance(n, Arith):
            return _arith(n.op, ev(n.left), ev(n.right))
        if isinstance(n, Call):
            if n.name == "match" and len(n.args) == 2:
                # argument-order leniency: if exactly one arg is a string
                # literal, it is the regex regardless of position
                a0, a1 = n.args
                lit0 = isinstance(a0, Literal) and isinstance(a0.value, str)
                lit1 = isinstance(a1, Literal) and isinstance(a1.value, str)
                if lit1 and not lit0:
                    return fns.get("match")([ev(a1), ev(a0)], record)
            args = [ev(a) for a in n.args]
            return fns.get(n.name)(args, record)
        raise QueryEvaluationError(f"cannot evaluate node {n!r}")

    return ev(node)


def _arith(op: str, a: Any, b: Any) -> Any:
    """Numeric arithmetic; anything non-numeric (or division by zero)
    yields UNDEFINED, which downstream comparisons treat as no-match."""
    if not (_is_number(a) and _is_number(b)):
        return UNDEFINED
    a, b = float(a), float(b)
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if b == 0.0:
            return UNDEFINED
        return a / b
    raise QueryEvaluationError(f"unknown arithmetic operator {op!r}")


def _truthy(value: Any) -> bool:
    if value is UNDEFINED:
        return False
    return bool(value)


def matches(node: Node, record: Mapping[str, Any],
            functions: Optional[QueryFunctions] = None) -> bool:
    """Boolean form of :func:`evaluate`."""
    return _truthy(evaluate(node, record, functions))


_DEFAULT_FUNCTIONS = QueryFunctions()
