"""The Collection query language: lexer, parser, AST, evaluator, and the
closure-based plan compiler."""

from .ast import And, Arith, Attr, Call, Compare, Literal, Node, Not, Or
from .compile import CompiledQuery, compile_query
from .evaluate import UNDEFINED, QueryFunctions, evaluate, matches
from .lexer import Token, tokenize
from .parser import parse

__all__ = [
    "parse", "tokenize", "Token",
    "evaluate", "matches", "QueryFunctions", "UNDEFINED",
    "compile_query", "CompiledQuery",
    "Node", "Or", "And", "Not", "Compare", "Arith", "Call", "Attr",
    "Literal",
]
