"""The Collection query language: lexer, parser, AST, and evaluator."""

from .ast import And, Arith, Attr, Call, Compare, Literal, Node, Not, Or
from .evaluate import UNDEFINED, QueryFunctions, evaluate, matches
from .lexer import Token, tokenize
from .parser import parse

__all__ = [
    "parse", "tokenize", "Token",
    "evaluate", "matches", "QueryFunctions", "UNDEFINED",
    "Node", "Or", "And", "Not", "Compare", "Arith", "Call", "Attr",
    "Literal",
]
