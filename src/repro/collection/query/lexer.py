"""Tokenizer for the Collection query grammar."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ...errors import QuerySyntaxError

__all__ = ["Token", "tokenize"]

KEYWORDS = {"and", "or", "not", "true", "false"}
OPERATORS = ("==", "!=", "<=", ">=", "<", ">", "=")
PUNCT = {"(": "LPAREN", ")": "RPAREN", ",": "COMMA"}


@dataclass(frozen=True)
class Token:
    kind: str     # AND OR NOT BOOL ATTR IDENT STRING NUMBER OP LPAREN RPAREN COMMA EOF
    text: str
    value: object
    pos: int


def _ident_start(c: str) -> bool:
    return c.isalpha() or c == "_"


def _ident_char(c: str) -> bool:
    return c.isalnum() or c == "_"


def tokenize(source: str) -> List[Token]:
    """Tokenize a query string; raises QuerySyntaxError on bad input."""
    if not isinstance(source, str):
        raise QuerySyntaxError(f"query must be a string, got "
                               f"{type(source).__name__}")
    tokens: List[Token] = []
    i, n = 0, len(source)
    while i < n:
        c = source[i]
        if c.isspace():
            i += 1
            continue
        if c in PUNCT:
            tokens.append(Token(PUNCT[c], c, c, i))
            i += 1
            continue
        # operators (two-char first)
        matched_op = None
        for op in OPERATORS:
            if source.startswith(op, i):
                matched_op = op
                break
        if matched_op is not None:
            canon = "==" if matched_op == "=" else matched_op
            tokens.append(Token("OP", canon, canon, i))
            i += len(matched_op)
            continue
        if c == "$":
            j = i + 1
            if j >= n or not _ident_start(source[j]):
                raise QuerySyntaxError(
                    f"bad attribute reference at position {i}")
            while j < n and _ident_char(source[j]):
                j += 1
            tokens.append(Token("ATTR", source[i:j], source[i + 1:j], i))
            i = j
            continue
        if c == '"' or c == "'":
            quote = c
            j = i + 1
            buf = []
            while j < n:
                ch = source[j]
                if ch == "\\":
                    if j + 1 >= n:
                        raise QuerySyntaxError(
                            f"dangling escape at position {j}")
                    nxt = source[j + 1]
                    # pass regex escapes through; unescape quote/backslash
                    if nxt in (quote, "\\"):
                        buf.append(nxt)
                    else:
                        buf.append("\\")
                        buf.append(nxt)
                    j += 2
                    continue
                if ch == quote:
                    break
                buf.append(ch)
                j += 1
            else:
                raise QuerySyntaxError(
                    f"unterminated string starting at position {i}")
            tokens.append(Token("STRING", source[i:j + 1], "".join(buf), i))
            i = j + 1
            continue
        if c.isdigit() or (c in "+-" and i + 1 < n
                           and (source[i + 1].isdigit()
                                or source[i + 1] == ".")):
            j = i + 1 if c in "+-" else i
            seen_dot = False
            seen_exp = False
            while j < n:
                ch = source[j]
                if ch.isdigit():
                    j += 1
                elif ch == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif ch in "eE" and not seen_exp and j + 1 < n:
                    k = j + 1
                    if source[k] in "+-":
                        k += 1
                    if k < n and source[k].isdigit():
                        seen_exp = True
                        j = k
                    else:
                        break
                else:
                    break
            text = source[i:j]
            try:
                value = float(text) if (seen_dot or seen_exp) else int(text)
            except ValueError:
                raise QuerySyntaxError(
                    f"bad number {text!r} at position {i}") from None
            tokens.append(Token("NUMBER", text, value, i))
            i = j
            continue
        if c in "+-*/":
            # arithmetic operator (signed literals were consumed above, so
            # `-` here is binary/unary-in-expression: write `$a - 1`, not
            # `$a -1`)
            tokens.append(Token("ARITH", c, c, i))
            i += 1
            continue
        if _ident_start(c):
            j = i
            while j < n and _ident_char(source[j]):
                j += 1
            word = source[i:j]
            low = word.lower()
            if low in ("and", "or", "not"):
                tokens.append(Token(low.upper(), word, low, i))
            elif low in ("true", "false"):
                tokens.append(Token("BOOL", word, low == "true", i))
            else:
                tokens.append(Token("IDENT", word, word, i))
            i = j
            continue
        raise QuerySyntaxError(f"unexpected character {c!r} at position {i}")
    tokens.append(Token("EOF", "", None, n))
    return tokens
