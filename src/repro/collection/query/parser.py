"""Recursive-descent parser for the Collection query grammar.

Grammar (lowest precedence first)::

    query      := or_expr EOF
    or_expr    := and_expr ( 'or' and_expr )*
    and_expr   := not_expr ( 'and' not_expr )*
    not_expr   := 'not' not_expr | comparison
    comparison := sum ( ('==' | '!=' | '<' | '<=' | '>' | '>=') sum )?
    sum        := term ( ('+' | '-') term )*
    term       := value ( ('*' | '/') value )*
    value      := '(' or_expr ')' | ATTR | STRING | NUMBER | BOOL
                | IDENT '(' [ or_expr (',' or_expr)* ] ')'

A bare value at comparison level is allowed when it is boolean-valued
(an attribute, a boolean literal, or a function call) — e.g. the query
``$host_up`` or ``defined($host_price)``.  Arithmetic needs spaces around
``-`` (``$a - 1``): ``-1`` directly after a value lexes as a signed
literal.
"""

from __future__ import annotations

from typing import List

from ...errors import QuerySyntaxError
from .ast import And, Arith, Attr, Call, Compare, Literal, Node, Not, Or
from .lexer import Token, tokenize

__all__ = ["parse"]

_COMPARE_OPS = {"==", "!=", "<", "<=", ">", ">="}


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers -----------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "EOF":
            self.pos += 1
        return tok

    def expect(self, kind: str) -> Token:
        tok = self.current
        if tok.kind != kind:
            raise QuerySyntaxError(
                f"expected {kind} but found {tok.kind} "
                f"({tok.text!r}) at position {tok.pos}")
        return self.advance()

    # -- grammar ------------------------------------------------------------
    def parse_query(self) -> Node:
        node = self.parse_or()
        if self.current.kind != "EOF":
            tok = self.current
            raise QuerySyntaxError(
                f"unexpected trailing input {tok.text!r} at position "
                f"{tok.pos}")
        return node

    def parse_or(self) -> Node:
        node = self.parse_and()
        while self.current.kind == "OR":
            self.advance()
            node = Or(node, self.parse_and())
        return node

    def parse_and(self) -> Node:
        node = self.parse_not()
        while self.current.kind == "AND":
            self.advance()
            node = And(node, self.parse_not())
        return node

    def parse_not(self) -> Node:
        if self.current.kind == "NOT":
            self.advance()
            return Not(self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> Node:
        left = self.parse_sum()
        if self.current.kind == "OP" and self.current.value in _COMPARE_OPS:
            op = self.advance().value
            right = self.parse_sum()
            return Compare(str(op), left, right)
        return left

    def parse_sum(self) -> Node:
        node = self.parse_term()
        while (self.current.kind == "ARITH"
               and self.current.value in ("+", "-")):
            op = str(self.advance().value)
            node = Arith(op, node, self.parse_term())
        return node

    def parse_term(self) -> Node:
        node = self.parse_value()
        while (self.current.kind == "ARITH"
               and self.current.value in ("*", "/")):
            op = str(self.advance().value)
            node = Arith(op, node, self.parse_value())
        return node

    def parse_value(self) -> Node:
        tok = self.current
        if tok.kind == "LPAREN":
            self.advance()
            node = self.parse_or()
            self.expect("RPAREN")
            return node
        if tok.kind == "ATTR":
            self.advance()
            return Attr(str(tok.value))
        if tok.kind == "STRING":
            self.advance()
            return Literal(tok.value)
        if tok.kind == "NUMBER":
            self.advance()
            return Literal(tok.value)
        if tok.kind == "BOOL":
            self.advance()
            return Literal(bool(tok.value))
        if tok.kind == "IDENT":
            name = str(self.advance().value)
            self.expect("LPAREN")
            args: List[Node] = []
            if self.current.kind != "RPAREN":
                args.append(self.parse_or())
                while self.current.kind == "COMMA":
                    self.advance()
                    args.append(self.parse_or())
            self.expect("RPAREN")
            return Call(name, tuple(args))
        raise QuerySyntaxError(
            f"unexpected {tok.kind} ({tok.text!r}) at position {tok.pos}")


def parse(source: str) -> Node:
    """Parse a query string into an AST; raises QuerySyntaxError."""
    return _Parser(tokenize(source)).parse_query()
