"""Indexed Collections: attribute indexes for metasystem-scale queries.

Legion was "intended to connect many thousands, perhaps millions, of
hosts"; a linear scan per query (the 1999 Collection, reproduced by
:class:`~repro.collection.collection.Collection`) does not survive that
vision.  :class:`IndexedCollection` keeps the same Fig. 4 interface and
exact query semantics while maintaining inverted indexes over scalar
attribute values.

Query planning is deliberately simple and sound: the planner walks the
AST's *top-level conjunction* collecting equality constraints of the form
``$attr == literal`` (or ``literal == $attr``); the candidate set is the
intersection of the matching index buckets, and the full evaluator then
runs only over the candidates.  Any query without such a constraint falls
back to the scan.  Because the index only ever *narrows* the candidate
set for records that could satisfy the conjunction, results are identical
to the unindexed Collection (property-tested).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from ..naming.loid import LOID
from .collection import Collection
from .query.ast import And, Attr, Compare, Literal, Node
from .records import CollectionRecord

__all__ = ["IndexedCollection", "equality_constraints"]

_SCALAR = (str, int, float, bool)


def _index_key(value: Any) -> Optional[tuple]:
    """Normalized index key for a scalar value (numeric coercion mirrors
    the evaluator's loose equality, where bools compare as numbers)."""
    if isinstance(value, (bool, int, float)):
        return ("n", float(value))
    if isinstance(value, str):
        return ("s", value)
    return None


def equality_constraints(node: Node) -> List[tuple]:
    """``(attr, value)`` pairs that every match must satisfy.

    Collected only from the top-level AND spine: anything below an OR or
    NOT may be optional, so it is ignored (sound, possibly not tight).
    """
    out: List[tuple] = []
    if isinstance(node, And):
        out.extend(equality_constraints(node.left))
        out.extend(equality_constraints(node.right))
    elif isinstance(node, Compare) and node.op == "==":
        left, right = node.left, node.right
        if isinstance(left, Attr) and isinstance(right, Literal):
            out.append((left.name, right.value))
        elif isinstance(right, Attr) and isinstance(left, Literal):
            out.append((right.name, left.value))
    return out


class IndexedCollection(Collection):
    """A Collection with inverted indexes over scalar attribute values."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # attr -> key -> set of member LOIDs
        self._index: Dict[str, Dict[tuple, Set[LOID]]] = {}
        self.index_hits = 0
        self.scan_fallbacks = 0

    # -- index maintenance -------------------------------------------------
    def _unindex_record(self, record: CollectionRecord) -> None:
        for attr, value in record.attributes.items():
            self._unindex_value(record.member, attr, value)

    def _unindex_value(self, member: LOID, attr: str, value: Any) -> None:
        values = value if isinstance(value, list) else [value]
        buckets = self._index.get(attr)
        if buckets is None:
            return
        for v in values:
            key = _index_key(v)
            if key is None:
                continue
            bucket = buckets.get(key)
            if bucket is not None:
                bucket.discard(member)
                if not bucket:
                    del buckets[key]

    def _index_value(self, member: LOID, attr: str, value: Any) -> None:
        values = value if isinstance(value, list) else [value]
        buckets = self._index.setdefault(attr, {})
        for v in values:
            key = _index_key(v)
            if key is None:
                continue
            buckets.setdefault(key, set()).add(member)

    # -- overridden mutation paths -------------------------------------------
    def _reindex(self, member: LOID, old: Dict[str, Any]) -> None:
        record = self._records.get(member)
        if record is None:
            return
        for attr, value in old.items():
            self._unindex_value(member, attr, value)
        for attr, value in record.attributes.items():
            self._index_value(member, attr, value)

    def join(self, joiner: LOID, attributes=None):
        old = {}
        existing = self._records.get(joiner)
        if existing is not None:
            old = dict(existing.attributes)
        credential = super().join(joiner, attributes)
        self._reindex(joiner, old)
        return credential

    def leave(self, leaver: LOID, credential=None) -> None:
        record = self._records.get(leaver)
        old = dict(record.attributes) if record is not None else {}
        super().leave(leaver, credential)
        for attr, value in old.items():
            self._unindex_value(leaver, attr, value)

    def update_entry(self, member: LOID, attributes, credential=None
                     ) -> None:
        record = self._records.get(member)
        old = dict(record.attributes) if record is not None else {}
        super().update_entry(member, attributes, credential)
        self._reindex(member, old)

    def pull_from(self, source: Any) -> None:
        record = self._records.get(source.loid)
        old = dict(record.attributes) if record is not None else {}
        super().pull_from(source)
        self._reindex(source.loid, old)

    def merge_record(self, incoming) -> bool:
        record = self._records.get(incoming.member)
        old = dict(record.attributes) if record is not None else {}
        changed = super().merge_record(incoming)
        if changed:
            self._reindex(incoming.member, old)
        return changed

    # -- overridden query path ---------------------------------------------------
    def _candidates(self, ast: Node) -> Optional[List[LOID]]:
        constraints = equality_constraints(ast)
        result: Optional[Set[LOID]] = None
        for attr, value in constraints:
            if attr in self._computed or attr == "loid":
                # computed/implicit attributes never appear in the index;
                # an empty bucket would wrongly exclude everything
                continue
            key = _index_key(value)
            if key is None:
                continue
            buckets = self._index.get(attr)
            bucket = buckets.get(key, set()) if buckets else set()
            result = bucket if result is None else (result & bucket)
            if not result:
                return []
        if result is None:
            return None
        return sorted(result)

    def query(self, query: str) -> List[CollectionRecord]:
        plan = self._plan_for(query)
        candidates = self._candidates(plan.ast)
        if candidates is None:
            self.scan_fallbacks += 1
            return super().query(query)
        self.index_hits += 1
        self.queries_served += 1
        from .collection import _RecordView
        matches_fn = plan.matches
        raw = (not self._computed and not plan.uses_loid
               and not plan.has_calls)
        view = None if raw else _RecordView(None, self._computed)
        out: List[CollectionRecord] = []
        with self.spans.span_if_active("collection.serve", step="2",
                                       path="index") as sp:
            for member in candidates:
                record = self._records.get(member)
                if record is None or self._quarantined(record):
                    continue
                subject = (record.attributes if raw
                           else view._bind(record))
                if matches_fn(subject):
                    out.append(record)
            sp.set_attribute("results", len(out))
        self._record_query_metrics("index", len(candidates), len(out))
        return out
