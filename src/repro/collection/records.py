"""Collection records: per-member attribute snapshots with staleness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from ..naming.loid import LOID

__all__ = ["CollectionRecord"]


@dataclass(slots=True)
class CollectionRecord:
    """The Collection's view of one member object.

    ``attributes`` is a *snapshot* pushed or pulled at ``updated_at``; it is
    stale by construction, which is why schedules computed from Collection
    data can fail at reservation time and the master/variant machinery
    exists (experiments E6, E7, E10).
    """

    member: LOID
    attributes: Dict[str, Any] = field(default_factory=dict)
    joined_at: float = 0.0
    updated_at: float = 0.0
    update_count: int = 0

    def staleness(self, now: float) -> float:
        """Seconds since this record was last refreshed."""
        return max(0.0, now - self.updated_at)

    def version(self) -> Tuple[float, int]:
        """The record's freshness coordinates: later wins, update count
        breaks same-instant ties (several pushes in one event step)."""
        return (self.updated_at, self.update_count)

    def covers(self, attributes: Mapping[str, Any]) -> bool:
        """True if applying ``attributes`` would change nothing — every
        key is already stored with an equal value.  (``apply_update``
        merges rather than replaces, so extra stored keys don't count.)"""
        for key, value in attributes.items():
            if key not in self.attributes:
                return False
            try:
                if self.attributes[key] != value:
                    return False
            except Exception:
                return False
        return True

    def apply_update(self, attributes: Mapping[str, Any],
                     now: float) -> None:
        self.attributes.update(attributes)
        self.updated_at = now
        self.update_count += 1

    def get(self, name: str, default: Any = None) -> Any:
        if name == "loid":
            return str(self.member)
        return self.attributes.get(name, default)
