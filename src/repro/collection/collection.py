"""The Collection: the RMI's information database (paper section 3.2).

"The Collection acts as a repository for information describing the state of
the resources comprising the system.  Each record is stored as a set of
Legion object attributes. ... Collections provide methods to join (with an
optional installment of initial descriptive information) and update records,
thus facilitating a push model for data.  The security facilities of Legion
authenticate the caller to be sure that it is allowed to update the data in
the Collection.  As noted earlier, Collections may also pull data from
resources.  Users, or their agents, obtain information about resources by
issuing queries to a Collection."

Security model: joining yields an opaque HMAC credential bound to the member
LOID; updates and leaves must present it (unless the Collection is built
with ``require_auth=False`` for closed experiments).

Function injection (the planned extension the paper describes, needed for
Network-Weather-Service-style prediction) is implemented two ways:

* **injected query functions** — callable from query text,
  e.g. ``predicted_load($host_load) < 2``;
* **computed attributes** — virtual record fields evaluated at query time,
  e.g. ``$predicted_load < 2`` after ``inject_attribute("predicted_load",
  fn)``.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from typing import Any, Callable, Dict, List, Mapping, Optional

from ..errors import AuthenticationError, NotAMemberError
from ..naming.loid import LOID
from ..net.topology import NetLocation
from ..objects.base import LegionObject
from ..obs.registry import DEFAULT_SIZE_BUCKETS, MetricsRegistry
from ..obs.spans import NULL_SPANS
from .query.ast import Node
from .query.compile import CompiledQuery, compile_query
from .query.evaluate import QueryFunctions
from .query.parser import parse
from .records import CollectionRecord

__all__ = ["Collection", "Credential"]


class Credential:
    """Opaque capability authorizing updates to one member's record."""

    __slots__ = ("member", "_mac")

    def __init__(self, member: LOID, mac: bytes):
        self.member = member
        self._mac = mac

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Credential for {self.member}>"


class _RecordView(Mapping):
    """Read-only mapping over a record's attributes, layering the
    Collection's computed attributes and the implicit ``loid`` field.

    The view is cheap to rebind (:meth:`_bind`): the query loop reuses a
    single instance across all candidate records instead of allocating
    one per record."""

    __slots__ = ("_record", "_computed")

    def __init__(self, record: Optional[CollectionRecord],
                 computed: Dict[str, Callable[[Mapping], Any]]):
        self._record = record
        self._computed = computed

    def _bind(self, record: CollectionRecord) -> "_RecordView":
        self._record = record
        return self

    def __getitem__(self, key: str) -> Any:
        if key == "loid":
            return str(self._record.member)
        if key in self._record.attributes:
            return self._record.attributes[key]
        fn = self._computed.get(key)
        if fn is not None:
            return fn(self._record.attributes)
        raise KeyError(key)

    def get(self, key: str, default: Any = None) -> Any:
        # ``loid`` first (it shadows a stored attribute of the same name,
        # matching __getitem__), then the snapshot, then computed fields —
        # all without raising, since this is the query hot path.
        if key == "loid":
            return str(self._record.member)
        attrs = self._record.attributes
        if key in attrs:
            return attrs[key]
        fn = self._computed.get(key)
        if fn is not None:
            return fn(attrs)
        return default

    def __iter__(self):
        yield "loid"
        yield from self._record.attributes
        for k in self._computed:
            if k not in self._record.attributes:
                yield k

    def __len__(self) -> int:
        return 1 + len(self._record.attributes) + sum(
            1 for k in self._computed
            if k not in self._record.attributes)


class Collection(LegionObject):
    """An attribute-record database with the Fig. 4 interface."""

    def __init__(self, loid: LOID, location: Optional[NetLocation] = None,
                 require_auth: bool = True,
                 clock: Optional[Callable[[], float]] = None,
                 metrics: Optional[MetricsRegistry] = None):
        super().__init__(loid)
        self.location = location
        self.require_auth = require_auth
        self._clock = clock or (lambda: 0.0)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: span tracer (wired by the Metasystem; inert by default)
        self.spans = NULL_SPANS
        self._records: Dict[LOID, CollectionRecord] = {}
        #: guardrails knob: when True, records whose ``host_health``
        #: attribute says "down" are invisible to queries (the HealthMonitor
        #: publishes that attribute; see repro.guardrails.health)
        self.exclude_down_members = False
        self._secret = os.urandom(16)
        self.functions = QueryFunctions()
        self._computed: Dict[str, Callable[[Mapping], Any]] = {}
        self._ast_cache: Dict[str, Node] = {}
        #: query text -> compiled closure plan (compiled once, reused for
        #: every record of every later identical query)
        self._plan_cache: Dict[str, CompiledQuery] = {}
        #: LOID-sorted member list, rebuilt lazily after membership changes
        self._members_cache: Optional[List[LOID]] = None
        #: bumped on every mutation that could change query results; the
        #: Scheduler's viable-hosts cache keys on it (see data_version)
        self.mutation_version = 0
        self.queries_served = 0
        self.updates_applied = 0
        self.auth_failures = 0
        self.plans_compiled = 0

    # -- credentials ---------------------------------------------------------
    def _mac_for(self, member: LOID) -> bytes:
        return hmac.new(self._secret, str(member).encode("utf-8"),
                        hashlib.sha256).digest()

    def _authenticate(self, member: LOID,
                      credential: Optional[Credential]) -> None:
        if not self.require_auth:
            return
        if (credential is None or credential.member != member
                or not hmac.compare_digest(credential._mac,
                                           self._mac_for(member))):
            self.auth_failures += 1
            self.metrics.count("collection_auth_failures_total")
            raise AuthenticationError(
                f"caller is not authorized to modify the record of "
                f"{member}")

    # -- the Fig. 4 interface ---------------------------------------------------
    def join(self, joiner: LOID,
             attributes: Optional[Mapping[str, Any]] = None) -> Credential:
        """JoinCollection — with optional initial descriptive information.

        Joining an existing member refreshes its record.  Returns the
        credential required for future updates.
        """
        now = self._clock()
        record = self._records.get(joiner)
        if record is None:
            record = CollectionRecord(member=joiner, joined_at=now,
                                      updated_at=now)
            self._records[joiner] = record
            self._members_cache = None
        if attributes:
            record.apply_update(attributes, now)
        self.mutation_version += 1
        self.metrics.set_gauge("collection_members", len(self._records))
        return Credential(joiner, self._mac_for(joiner))

    def leave(self, leaver: LOID,
              credential: Optional[Credential] = None) -> None:
        """LeaveCollection."""
        if leaver not in self._records:
            raise NotAMemberError(f"{leaver} is not a member")
        self._authenticate(leaver, credential)
        del self._records[leaver]
        self._members_cache = None
        self.mutation_version += 1
        self.metrics.set_gauge("collection_members", len(self._records))

    def update_entry(self, member: LOID, attributes: Mapping[str, Any],
                     credential: Optional[Credential] = None) -> None:
        """UpdateCollectionEntry — the push model's data path."""
        record = self._records.get(member)
        if record is None:
            raise NotAMemberError(f"{member} is not a member")
        self._authenticate(member, credential)
        record.apply_update(attributes, self._clock())
        self.mutation_version += 1
        self.updates_applied += 1
        self.metrics.count("collection_updates_total", path="push")

    def _plan_for(self, query: str) -> CompiledQuery:
        """The compiled closure plan for ``query`` (parse + compile once)."""
        plan = self._plan_cache.get(query)
        if plan is None:
            ast = self._ast_cache.get(query)
            if ast is None:
                ast = parse(query)
                self._ast_cache[query] = ast
            plan = compile_query(ast, self.functions)
            self._plan_cache[query] = plan
            self.plans_compiled += 1
        return plan

    def _sorted_members(self) -> List[LOID]:
        members = self._members_cache
        if members is None:
            members = self._members_cache = sorted(self._records)
        return members

    def query(self, query: str) -> List[CollectionRecord]:
        """QueryCollection — records whose attributes satisfy the query.

        Matching is evaluated over each record's attribute snapshot plus any
        injected computed attributes; results are returned in deterministic
        (LOID-sorted) order.
        """
        plan = self._plan_for(query)
        self.queries_served += 1
        out: List[CollectionRecord] = []
        records = self._records
        quarantine = self.exclude_down_members
        matches_fn = plan.matches
        # Plans that read only stored attributes (no $loid, no function
        # calls, no computed attributes installed) can match against the
        # raw attribute dict; everything else goes through one reused view.
        raw = not self._computed and not plan.uses_loid and not plan.has_calls
        view = None if raw else _RecordView(None, self._computed)
        with self.spans.span_if_active("collection.serve", step="2",
                                       path="scan") as sp:
            for member in self._sorted_members():
                record = records[member]
                if quarantine and \
                        record.attributes.get("host_health") == "down":
                    continue
                subject = record.attributes if raw else view._bind(record)
                if matches_fn(subject):
                    out.append(record)
            sp.set_attribute("results", len(out))
        self._record_query_metrics("scan", len(records), len(out))
        return out

    def _quarantined(self, record: CollectionRecord) -> bool:
        """Should this record be hidden from query results?

        Shared by the scan path above and the index path in
        :class:`~repro.collection.indexing.IndexedCollection` so both
        honor the guardrails quarantine."""
        return (self.exclude_down_members
                and record.attributes.get("host_health") == "down")

    def _record_query_metrics(self, path: str, candidates: int,
                              results: int) -> None:
        """One query's worth of observability (path = scan | index)."""
        self.metrics.count("collection_queries_total", path=path)
        self.metrics.observe("collection_query_candidates", candidates,
                             buckets=DEFAULT_SIZE_BUCKETS, path=path)
        self.metrics.observe("collection_query_results", results,
                             buckets=DEFAULT_SIZE_BUCKETS, path=path)

    def query_loids(self, query: str) -> List[LOID]:
        return [r.member for r in self.query(query)]

    # -- pull model ----------------------------------------------------------------
    def pull_from(self, source: Any) -> None:
        """Pull fresh attributes directly from a resource object.

        ``source`` must expose ``loid`` and an ``attributes`` database (all
        Legion objects do).  Non-members are auto-joined: the pull path is
        Collection-initiated and trusted.

        Pulls are idempotent: re-pulling a snapshot identical to the
        stored record is a no-op — no timestamp churn, no update-count
        bump, no staleness reset — so a tight daemon sweep over an idle
        host cannot masquerade as fresh information.
        """
        now = self._clock()
        snapshot = source.attributes.snapshot()
        record = self._records.get(source.loid)
        if record is not None and record.covers(snapshot):
            self.metrics.count("collection_updates_total", path="pull-noop")
            return
        if record is None:
            record = CollectionRecord(member=source.loid, joined_at=now,
                                      updated_at=now)
            self._records[source.loid] = record
            self._members_cache = None
        record.apply_update(snapshot, now)
        self.mutation_version += 1
        self.updates_applied += 1
        self.metrics.count("collection_updates_total", path="pull")
        self.metrics.set_gauge("collection_members", len(self._records))

    # -- replication ---------------------------------------------------------------
    def merge_record(self, incoming: CollectionRecord) -> bool:
        """Adopt a peer Collection's record if it is fresher than ours.

        This is the anti-entropy write path (``repro.federation.sync``):
        versions are compared by ``(updated_at, update_count)``, the
        incoming timestamps are *copied* rather than reset to the local
        clock, and merging an identical or older record is a no-op —
        so repeated gossip exchanges of the same record converge instead
        of churning.  Returns True when the local record changed.
        """
        mine = self._records.get(incoming.member)
        if mine is None:
            self._records[incoming.member] = CollectionRecord(
                member=incoming.member,
                attributes=dict(incoming.attributes),
                joined_at=incoming.joined_at,
                updated_at=incoming.updated_at,
                update_count=incoming.update_count)
            self._members_cache = None
            self.mutation_version += 1
            self.metrics.count("collection_updates_total", path="merge")
            self.metrics.set_gauge("collection_members", len(self._records))
            return True
        if incoming.version() <= mine.version():
            return False
        mine.attributes.update(incoming.attributes)
        mine.updated_at = incoming.updated_at
        mine.update_count = incoming.update_count
        self.mutation_version += 1
        self.metrics.count("collection_updates_total", path="merge")
        return True

    # -- function injection ------------------------------------------------------
    def inject_function(self, name: str,
                        fn: Callable[[List[Any], Mapping[str, Any]], Any]
                        ) -> None:
        """Install a query-callable function (section 3.2 extension).

        Compiled plans resolve functions at call time through the shared
        registry, so plans compiled before this call see the new function.
        """
        self.functions.register(name, fn)
        self.mutation_version += 1

    def inject_attribute(self, name: str,
                         fn: Callable[[Mapping[str, Any]], Any]) -> None:
        """Install a computed attribute visible to queries as ``$name``."""
        if not callable(fn):
            raise TypeError("computed attribute requires a callable")
        self._computed[name] = fn
        self.mutation_version += 1

    def record_attr(self, record: CollectionRecord, name: str,
                    default: Any = None) -> Any:
        """An attribute value with this Collection's computed attributes
        layered in — what a query's ``$name`` would see for ``record``."""
        return _RecordView(record, self._computed).get(name, default)

    # -- introspection -------------------------------------------------------------
    def members(self) -> List[LOID]:
        return list(self._sorted_members())

    def data_version(self) -> Any:
        """An opaque token that changes whenever query results could.

        The Scheduler's viable-hosts cache compares tokens for equality;
        it must never serve a stale placement, so every result-affecting
        mutation (record writes, membership churn, injected functions or
        attributes, the quarantine knob) rolls the token.
        """
        return (self.mutation_version, self.exclude_down_members)

    def record_of(self, member: LOID) -> CollectionRecord:
        record = self._records.get(member)
        if record is None:
            raise NotAMemberError(f"{member} is not a member")
        return record

    def mean_staleness(self, now: Optional[float] = None) -> float:
        """Average record age — the E6 staleness metric."""
        if not self._records:
            return float("nan")
        t = self._clock() if now is None else now
        ages = [r.staleness(t) for r in self._records.values()]
        return sum(ages) / len(ages)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, member: LOID) -> bool:
        return member in self._records
