"""The Data Collection Daemon.

Paper section 3.2, footnote 4: "We are implementing an intermediate agent,
the Data Collection Daemon, which pulls data from Hosts and pushes it into
Collections."  The daemon decouples resource objects from Collection
placement: hosts need not know where Collections live, and the daemon's
sweep interval gives the experimenter a single knob for information
staleness (experiment E6 compares push / pull / daemon freshness).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from ..sim.kernel import Simulator
from .collection import Collection

__all__ = ["DataCollectionDaemon"]


class DataCollectionDaemon:
    """Periodically pulls attributes from sources and pushes to Collections."""

    def __init__(self, sim: Simulator, collections: Sequence[Collection],
                 interval: float = 60.0, jitter: float = 0.0,
                 rng=None, metrics: Any = None):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.collections: List[Collection] = list(collections)
        self.interval = interval
        self.jitter = jitter
        self._rng = rng
        self.metrics = metrics
        self._sources: List = []
        self._credentials = {}
        #: optional guardrails hookup (see attach_health)
        self._health = None
        self._evict_after: Optional[float] = None
        self.evictions = 0
        self.sweeps = 0
        self._running = False

    def watch(self, source) -> None:
        """Add a resource object (host, vault) to the pull set."""
        self._sources.append(source)
        for coll in self.collections:
            self._credentials[(id(coll), source.loid)] = coll.join(
                source.loid, source.attributes.snapshot())

    def attach_health(self, monitor: Any,
                      evict_after: Optional[float] = None) -> None:
        """Make sweeps health-aware (guardrails).

        Sources the monitor classifies DOWN are skipped (their stale
        snapshot must not overwrite the quarantine marker), and once a
        source has been DOWN longer than ``evict_after`` virtual seconds
        its records are evicted from every Collection so dead hosts stop
        polluting query results.  Eviction drops the cached credential,
        so a recovered source is re-joined on its next sweep.
        """
        if evict_after is not None and evict_after <= 0:
            raise ValueError("evict_after must be positive")
        self._health = monitor
        self._evict_after = evict_after

    def _evict(self, source) -> None:
        for coll in self.collections:
            cred = self._credentials.pop((id(coll), source.loid), None)
            try:
                coll.leave(source.loid, cred)
            except Exception:
                # already gone (or unauthenticated tombstone) — the point
                # is that the record no longer answers queries
                continue
        self.evictions += 1
        if self.metrics is not None:
            self.metrics.count("collection_evictions_total")

    def sweep(self) -> None:
        """One pull-all/push-all pass."""
        down = 0
        for source in self._sources:
            if self._health is not None:
                state = self._health.state_of(source.loid)
                if state == "down":
                    down += 1
                    since = self._health.down_since(source.loid)
                    if (self._evict_after is not None and since is not None
                            and self.sim.now - since >= self._evict_after):
                        self._evict(source)
                    continue
            snapshot = source.attributes.snapshot()
            for coll in self.collections:
                cred = self._credentials.get((id(coll), source.loid))
                if cred is None:
                    cred = coll.join(source.loid, snapshot)
                    self._credentials[(id(coll), source.loid)] = cred
                else:
                    coll.update_entry(source.loid, snapshot, cred)
        if self.metrics is not None:
            self.metrics.set_gauge("collection_down_members", down)
        self.sweeps += 1

    def start(self) -> None:
        """Begin periodic sweeps on the simulator."""
        if self._running:
            return
        self._running = True

        def tick():
            if not self._running:
                return
            self.sweep()
            delay = self.interval
            if self.jitter > 0 and self._rng is not None:
                delay += float(self._rng.uniform(0, self.jitter))
            self.sim.schedule(delay, tick)

        self.sim.schedule(self.interval, tick)

    def stop(self) -> None:
        self._running = False
