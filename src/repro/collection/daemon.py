"""The Data Collection Daemon.

Paper section 3.2, footnote 4: "We are implementing an intermediate agent,
the Data Collection Daemon, which pulls data from Hosts and pushes it into
Collections."  The daemon decouples resource objects from Collection
placement: hosts need not know where Collections live, and the daemon's
sweep interval gives the experimenter a single knob for information
staleness (experiment E6 compares push / pull / daemon freshness).
"""

from __future__ import annotations

from typing import List, Sequence

from ..sim.kernel import Simulator
from .collection import Collection

__all__ = ["DataCollectionDaemon"]


class DataCollectionDaemon:
    """Periodically pulls attributes from sources and pushes to Collections."""

    def __init__(self, sim: Simulator, collections: Sequence[Collection],
                 interval: float = 60.0, jitter: float = 0.0,
                 rng=None):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.collections: List[Collection] = list(collections)
        self.interval = interval
        self.jitter = jitter
        self._rng = rng
        self._sources: List = []
        self._credentials = {}
        self.sweeps = 0
        self._running = False

    def watch(self, source) -> None:
        """Add a resource object (host, vault) to the pull set."""
        self._sources.append(source)
        for coll in self.collections:
            self._credentials[(id(coll), source.loid)] = coll.join(
                source.loid, source.attributes.snapshot())

    def sweep(self) -> None:
        """One pull-all/push-all pass."""
        for source in self._sources:
            snapshot = source.attributes.snapshot()
            for coll in self.collections:
                cred = self._credentials.get((id(coll), source.loid))
                if cred is None:
                    cred = coll.join(source.loid, snapshot)
                    self._credentials[(id(coll), source.loid)] = cred
                else:
                    coll.update_entry(source.loid, snapshot, cred)
        self.sweeps += 1

    def start(self) -> None:
        """Begin periodic sweeps on the simulator."""
        if self._running:
            return
        self._running = True

        def tick():
            if not self._running:
                return
            self.sweep()
            delay = self.interval
            if self.jitter > 0 and self._rng is not None:
                delay += float(self._rng.uniform(0, self.jitter))
            self.sim.schedule(delay, tick)

        self.sim.schedule(self.interval, tick)

    def stop(self) -> None:
        self._running = False
