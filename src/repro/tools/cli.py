"""``legion-sim`` — command-line driver for simulated metasystem scenarios.

Real Legion shipped user tools (``legion_ls``, ``legion_run``, ...); this
module provides their simulated analogues over a reproducible testbed:

.. code-block:: console

   $ legion-sim hosts --domains 2 --hosts 4
   $ legion-sim context --domains 2 --hosts 4
   $ legion-sim query '$host_load < 1 and $host_arch == "sparc"'
   $ legion-sim run --count 6 --scheduler irs --work 200
   $ legion-sim run --count 4 --trace-out trace.json
   $ legion-sim bench --scheduler random --scheduler load --count 8
   $ legion-sim metrics --count 4 --format table
   $ legion-sim trace critical-path --count 4
   $ legion-sim trace chrome --count 4 --out trace.json
   $ legion-sim run --shards 3 --replication 2 --count 4
   $ legion-sim federation --shards 3 --gossip-interval 30 --wait
   $ legion-sim run --chaos-profile hosts --chaos-seed 7 --wait
   $ legion-sim chaos --profile lossy --compare-retry
   $ legion-sim chaos --profile mixed --retry --out report.json
   $ legion-sim chaos --profile hosts --retry --guardrails
   $ legion-sim guardrails --compare --out BENCH_guardrails.json
   $ legion-sim scale --out BENCH_scale.json
   $ legion-sim scale --sizes 16,32 --check BENCH_scale.json
   $ legion-sim metrics --quantiles p50,p90,p99
   $ legion-sim trace steps --count 6
   $ legion-sim slo --window 30 --chaos-profile hosts --chaos-seed 1
   $ legion-sim slo --guardrails --chaos-profile hosts --out slo.json
   $ legion-sim slo --compare-guardrails --chaos-profile hosts
   $ legion-sim run --count 4 --scheduler cost
   $ legion-sim economy --mode cost --users 3 --budget 100
   $ legion-sim economy --mode time --chaos-profile lossy --retry
   $ legion-sim economy --compare-baselines --out BENCH_economy.json
   $ legion-sim serve --users 1000000 --duration 240 --workers 4
   $ legion-sim serve --queue-cap 0 --allow-exhausted
   $ legion-sim serve --compare-shedding --out BENCH_service.json
   $ legion-sim gameday --seed 7 --kills 2
   $ legion-sim gameday --checkpoint-at 180 --lease-ttl 20
   $ legion-sim gameday --compare-restore --out BENCH_gameday.json

``repro-cli`` is an alias of the same entry point.

Every invocation builds the same seeded testbed (``--seed``), so outputs
are reproducible and scriptable.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from ..bench.harness import ExperimentTable
from ..errors import LegionError
from ..metasystem import Metasystem
from ..scheduler.base import ObjectClassRequest
from ..service.config import BACKPRESSURE_MODES
from ..workload.applications import wait_for_completion
from ..workload.testbed import (
    TestbedSpec,
    build_testbed,
    implementations_for_all_platforms,
)

__all__ = ["main", "build_parser"]


def _build_meta(args: argparse.Namespace) -> Metasystem:
    return build_testbed(TestbedSpec(
        n_domains=args.domains,
        hosts_per_domain=args.hosts,
        platform_mix=args.platforms,
        background_load_mean=args.load,
        seed=args.seed,
        federation_shards=args.shards,
        federation_replication=args.replication,
        gossip_interval=args.gossip_interval,
        federation_cache_ttl=args.cache_ttl,
        chaos_profile=getattr(args, "chaos_profile", ""),
        chaos_seed=getattr(args, "chaos_seed", 0),
        chaos_horizon=getattr(args, "chaos_horizon", 0.0),
        guardrails=getattr(args, "guardrails", False),
        sampler_window=getattr(args, "sampler_window", 0.0)))


def _build_workload(args: argparse.Namespace, out, kind: str = ""):
    """Seeded testbed + the standard ``cli-app`` class + a scheduler —
    the setup every workload subcommand (run / trace / metrics /
    federation / bench) shares.  Returns ``(meta, app, scheduler)``, or
    ``None`` after printing the error when the scheduler kind is
    unknown (callers translate that into exit status 2)."""
    meta = _build_meta(args)
    app = meta.create_class("cli-app",
                            implementations_for_all_platforms(),
                            work_units=args.work)
    try:
        scheduler = meta.make_scheduler(kind or args.scheduler)
    except ValueError as exc:
        print(str(exc), file=out)
        return None
    return meta, app, scheduler


def _campaign_kwargs(args: argparse.Namespace, **extra) -> dict:
    """Testbed-shape and wave kwargs shared by every campaign-style
    subcommand (chaos / guardrails / slo / economy / serve), so each
    runner call starts from one dict instead of re-assembling the same
    spec by hand.  Wave knobs are included only when the subcommand
    defines them; ``extra`` layers on the subcommand-specific ones."""
    kwargs = dict(seed=args.seed,
                  n_domains=args.domains,
                  hosts_per_domain=args.hosts,
                  platform_mix=args.platforms,
                  background_load=args.load)
    for arg_name, key in (("waves", "waves"), ("count", "per_wave"),
                          ("work", "work"),
                          ("wave_interval", "wave_interval")):
        if hasattr(args, arg_name):
            kwargs[key] = getattr(args, arg_name)
    kwargs.update(extra)
    return kwargs


def _add_testbed_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--domains", type=int, default=2,
                        help="administrative domains (default 2)")
    parser.add_argument("--hosts", type=int, default=4,
                        help="hosts per domain (default 4)")
    parser.add_argument("--platforms", type=int, default=2,
                        help="distinct platforms in the mix (default 2)")
    parser.add_argument("--load", type=float, default=0.5,
                        help="mean background load (default 0.5)")
    parser.add_argument("--seed", type=int, default=0,
                        help="experiment seed (default 0)")
    parser.add_argument("--shards", type=int, default=0,
                        help="federate the Collection into N shards "
                             "(default 0 = one monolithic Collection)")
    parser.add_argument("--replication", type=int, default=2,
                        help="replicas per record when federated "
                             "(default 2)")
    parser.add_argument("--gossip-interval", type=float, default=0.0,
                        help="anti-entropy sweep period in virtual "
                             "seconds (default 0 = gossip off)")
    parser.add_argument("--cache-ttl", type=float, default=0.0,
                        help="federation query-cache TTL in virtual "
                             "seconds (default 0 = cache off)")


def cmd_hosts(args: argparse.Namespace, out) -> int:
    meta = _build_meta(args)
    table = ExperimentTable("hosts", ["name", "domain", "arch", "os",
                                      "cpus", "speed", "load",
                                      "slots free"])
    for host in meta.hosts:
        spec = host.machine.spec
        table.add(host.machine.name, host.domain, spec.arch, spec.os_name,
                  spec.cpus, spec.speed,
                  round(host.machine.load_average, 2), host.free_slots)
    table.print(out)
    return 0


def cmd_vaults(args: argparse.Namespace, out) -> int:
    meta = _build_meta(args)
    table = ExperimentTable("vaults", ["name", "domain", "capacity (GB)",
                                       "OPRs"])
    for vault in meta.vaults:
        table.add(vault.location.node_id, vault.location.domain,
                  vault.capacity_bytes / 1e9, vault.opr_count())
    table.print(out)
    return 0


def cmd_context(args: argparse.Namespace, out) -> int:
    meta = _build_meta(args)
    for path, loid in meta.context.walk():
        print(f"{path:32s} {loid}", file=out)
    return 0


def cmd_query(args: argparse.Namespace, out) -> int:
    meta = _build_meta(args)
    try:
        records = meta.collection.query(args.expression)
    except Exception as exc:
        print(f"query error: {exc}", file=out)
        return 2
    for record in records:
        print(f"{record.get('host_name', '?'):16s} {record.member}",
              file=out)
    print(f"{len(records)} record(s)", file=out)
    return 0


def cmd_run(args: argparse.Namespace, out) -> int:
    workload = _build_workload(args, out)
    if workload is None:
        return 2
    meta, app, scheduler = workload
    outcome = scheduler.run([ObjectClassRequest(app, count=args.count)])
    if not outcome.ok:
        print(f"placement failed: {outcome.detail}", file=out)
        return 1
    print(f"placed {len(outcome.created)} instance(s) via "
          f"{args.scheduler} in {outcome.elapsed * 1e3:.1f} virtual ms "
          f"({outcome.collection_queries} Collection queries)", file=out)
    for mapping in outcome.feedback.reserved_entries:
        print(f"  {mapping}", file=out)
    if args.wait:
        n, t = wait_for_completion(meta, app, outcome.created)
        print(f"{n}/{len(outcome.created)} completed by virtual "
              f"t={t:.1f}s", file=out)
    if meta.chaos is not None:
        meta.chaos.teardown()
        stats = meta.chaos.stats()
        print(f"chaos: {sum(stats['injected'].values())} fault(s) "
              f"injected, {stats['jobs_lost']} job(s) lost, "
              f"{len(stats['residual_faults'])} residual after teardown",
              file=out)
    if args.trace:
        from ..bench.sequence import protocol_trace
        print(file=out)
        print(protocol_trace(meta.tracer, limit=args.trace), file=out)
    if args.trace_out:
        from ..obs.trace_export import chrome_trace_json, spans_to_jsonl
        if args.trace_out.endswith(".jsonl"):
            text = spans_to_jsonl(meta.spans.spans)
        else:
            text = chrome_trace_json(meta.spans.spans, indent=2)
        with open(args.trace_out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {len(meta.spans.spans)} span(s) covering "
              f"{len(meta.spans.traces())} trace(s) to {args.trace_out}",
              file=out)
    return 0


def cmd_trace(args: argparse.Namespace, out) -> int:
    """Run a seeded workload and analyse/export its span traces."""
    from ..obs.trace_export import (
        aggregate_step_latencies,
        chrome_trace_json,
        render_critical_path_report,
        render_step_aggregate,
        render_step_table,
        render_tree,
        spans_to_jsonl,
    )
    workload = _build_workload(args, out)
    if workload is None:
        return 2
    meta, app, scheduler = workload
    outcome = scheduler.run([ObjectClassRequest(app, count=args.count)])
    if outcome.ok and args.wait:
        wait_for_completion(meta, app, outcome.created)
    spans = meta.spans.spans
    if args.mode == "tree":
        text = render_tree(spans)
    elif args.mode == "summary":
        text = render_step_table(
            spans,
            title=f"span latency: {args.count} x {args.work:.0f}-unit "
                  f"tasks via {args.scheduler} (seed {args.seed})")
    elif args.mode == "critical-path":
        text = render_critical_path_report(spans)
    elif args.mode == "steps":
        text = render_step_aggregate(
            aggregate_step_latencies(spans),
            title=f"cross-trace step latency: {args.count} x "
                  f"{args.work:.0f}-unit tasks via {args.scheduler} "
                  f"(seed {args.seed})")
    else:  # chrome
        text = chrome_trace_json(spans, indent=2)
    if args.out:
        if args.out.endswith(".jsonl") and args.mode == "chrome":
            text = spans_to_jsonl(spans)
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text if text.endswith("\n") else text + "\n")
        print(f"wrote {args.mode} output for {len(meta.spans.traces())} "
              f"trace(s) to {args.out}", file=out)
    else:
        print(text, file=out)
    return 0 if outcome.ok else 1


def _parse_quantiles(text: str) -> tuple:
    """Parse ``p50,p90,p99``-style quantile lists (bare floats work too)."""
    quantiles = []
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            q = float(token[1:]) / 100.0 if token.lower().startswith("p") \
                else float(token)
        except ValueError:
            raise ValueError(f"bad quantile {token!r}: expected e.g. "
                             f"p50,p90,p99") from None
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile {token!r} out of range (0, 1)")
        quantiles.append(q)
    if not quantiles:
        raise ValueError("no quantiles given")
    return tuple(quantiles)


def cmd_metrics(args: argparse.Namespace, out) -> int:
    """Run a seeded workload and render the metrics snapshot."""
    from ..obs import (
        build_snapshot,
        render_report,
        snapshot_to_json,
        snapshot_to_prometheus,
    )
    workload = _build_workload(args, out)
    if workload is None:
        return 2
    meta, app, scheduler = workload
    outcome = scheduler.run([ObjectClassRequest(app, count=args.count)])
    if outcome.ok and args.wait:
        wait_for_completion(meta, app, outcome.created)
    try:
        quantiles = _parse_quantiles(args.quantiles)
    except ValueError as exc:
        print(str(exc), file=out)
        return 2
    snapshot = build_snapshot(meta.metrics)
    if args.format == "json":
        print(snapshot_to_json(snapshot, indent=2), file=out)
    elif args.format == "prom":
        print(snapshot_to_prometheus(snapshot), end="", file=out)
    else:
        print(render_report(
            snapshot,
            title=f"metrics: {args.count} x {args.work:.0f}-unit tasks "
                  f"via {args.scheduler} (seed {args.seed})",
            quantiles=quantiles), file=out)
    return 0 if outcome.ok else 1


def cmd_bench(args: argparse.Namespace, out) -> int:
    table = ExperimentTable(
        f"scheduler comparison: {args.count} x {args.work:.0f}-unit tasks",
        ["scheduler", "ok", "makespan (s)", "sched latency (ms)"])
    for kind in args.scheduler or ["random", "irs", "load"]:
        workload = _build_workload(args, out, kind=kind)
        if workload is None:
            return 2
        meta, app, scheduler = workload
        outcome = scheduler.run([ObjectClassRequest(app,
                                                    count=args.count)])
        makespan = float("nan")
        if outcome.ok:
            n, t = wait_for_completion(meta, app, outcome.created)
            if n == len(outcome.created):
                makespan = t
        table.add(kind, outcome.ok, makespan, outcome.elapsed * 1e3)
    table.print(out)
    return 0


def cmd_federation(args: argparse.Namespace, out) -> int:
    """Run a seeded federated workload and print ring/gossip stats."""
    if args.shards < 2:
        args.shards = 3  # this subcommand only makes sense federated
    workload = _build_workload(args, out)
    if workload is None:
        return 2
    meta, app, scheduler = workload
    outcome = scheduler.run([ObjectClassRequest(app, count=args.count)])
    if outcome.ok and args.wait:
        wait_for_completion(meta, app, outcome.created)

    router = meta.collection
    ring = router.ring
    table = ExperimentTable(
        f"ring layout: {args.shards} shards, replication "
        f"{router.replication} (seed {args.seed})",
        ["shard", "vnodes", "arc %", "members", "home members"])
    fractions = ring.arc_fractions()
    layout = ring.layout()
    for shard in meta.collection_shards:
        home = sum(1 for m in shard.collection.members()
                   if shard.is_home(m))
        table.add(shard.shard_id, layout[shard.shard_id],
                  round(100.0 * fractions[shard.shard_id], 1),
                  len(shard), home)
    table.print(out)

    print(file=out)
    placement = ExperimentTable(
        "replica placement (hosts)",
        ["member", "home", "replicas"])
    for host in meta.hosts:
        plist = ring.preference_list(str(host.loid), router.replication)
        placement.add(host.machine.name, plist[0], " ".join(plist[1:]))
    placement.print(out)

    print(file=out)
    print("query routing:", file=out)
    print(f"  queries served      {router.queries_served}", file=out)
    print(f"  partial queries     {router.partial_queries}", file=out)
    print(f"  healthy shards      {len(router.healthy_shards())}/"
          f"{len(router.shards)}", file=out)
    cache = router.cache_stats()
    print(f"  cache hit ratio     {cache['hit_ratio']:.2f} "
          f"({cache['hit']:.0f} hits / {cache['miss']:.0f} misses / "
          f"{cache['expired']:.0f} expired)", file=out)
    print(f"  mean staleness      {router.mean_staleness():.1f}s",
          file=out)
    if meta.gossip is not None:
        print("gossip:", file=out)
        print(f"  rounds              {meta.gossip.rounds}", file=out)
        print(f"  records exchanged   {meta.gossip.records_exchanged}",
              file=out)
        print(f"  bytes exchanged     {meta.gossip.bytes_exchanged}",
              file=out)
    else:
        print("gossip: disabled (--gossip-interval 0)", file=out)
    return 0 if outcome.ok else 1


def cmd_chaos(args: argparse.Namespace, out) -> int:
    """Run a seeded fault-injection campaign and report resilience."""
    from ..chaos.campaign import run_campaign
    kwargs = _campaign_kwargs(
        args, profile=args.profile, chaos_seed=args.chaos_seed,
        scheduler=args.scheduler, horizon=args.horizon or None,
        shards=args.shards, guardrails=args.guardrails)
    try:
        if args.compare_retry:
            reports = [run_campaign(retry=False, **kwargs),
                       run_campaign(retry=True, **kwargs)]
        else:
            reports = [run_campaign(retry=args.retry, **kwargs)]
    except LegionError as exc:
        print(f"chaos error: {exc}", file=out)
        return 2
    for i, report in enumerate(reports):
        if i:
            print(file=out)
        print(report.summary(), file=out)
    if args.compare_retry:
        base, with_retry = reports
        print(file=out)
        print(f"retry benefit: placement success "
              f"{100.0 * base.placement_success_rate:.1f}% -> "
              f"{100.0 * with_retry.placement_success_rate:.1f}%, "
              f"completed {base.instances_completed} -> "
              f"{with_retry.instances_completed}", file=out)
    report = reports[-1]
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(report.to_json() + "\n")
        print(f"wrote ResilienceReport to {args.out}", file=out)
    residual = max(len(r.residual_faults) for r in reports)
    if residual:
        print(f"ERROR: {residual} residual fault(s) survived teardown",
              file=out)
        return 1
    return 0


def cmd_guardrails(args: argparse.Namespace, out) -> int:
    """Benchmark the guardrails layer against retries-only and baseline.

    With ``--compare`` (the headline mode) the identical seeded campaign
    runs three times — guardrails+retries, retries-only, and bare — and
    the exit status is nonzero if guardrails *regressed* survival, which
    is what the ``guardrails-smoke`` CI job gates on.
    """
    from ..guardrails.compare import run_comparison
    try:
        cmp = run_comparison(**_campaign_kwargs(
            args, profile=args.profile, chaos_seed=args.chaos_seed,
            scheduler=args.scheduler, horizon=args.horizon or None,
            shards=args.shards, include_events=args.events))
    except LegionError as exc:
        print(f"guardrails error: {exc}", file=out)
        return 2
    print(cmp.summary(), file=out)
    if not args.compare:
        print(file=out)
        print(cmp.reports["guardrails"].summary(), file=out)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(cmp.to_json() + "\n")
        print(f"wrote guardrails comparison to {args.out}", file=out)
    if cmp.survival_delta < 0:
        print(f"ERROR: guardrails regressed survival by "
              f"{-100.0 * cmp.survival_delta:.1f} percentage points",
              file=out)
        return 1
    return 0


def cmd_slo(args: argparse.Namespace, out) -> int:
    """Run a seeded workload under windowed sampling and report SLO
    health: error budgets, burn-rate alerts, breached-window exemplar
    traces, and the critical-path steps behind them.

    The exit status is nonzero when any error budget is exhausted
    (suppress with ``--allow-exhausted``) — what the ``slo-smoke`` CI
    job gates on, together with byte-identical reports across two
    identical seeded runs.
    """
    import json

    from ..obs.report import (
        build_health_report,
        health_report_to_json,
        render_health_report,
    )
    from ..obs.slo import specs_from_dict

    if args.window <= 0:
        print(f"bad --window {args.window:g}: must be > 0", file=out)
        return 2
    specs = None
    if args.spec:
        try:
            with open(args.spec, "r", encoding="utf-8") as fh:
                specs = specs_from_dict(json.load(fh))
        except (OSError, ValueError, KeyError) as exc:
            print(f"bad --spec {args.spec!r}: {exc}", file=out)
            return 2

    if args.compare_guardrails:
        from ..guardrails.compare import run_comparison
        try:
            cmp = run_comparison(**_campaign_kwargs(
                args, profile=args.chaos_profile or "hosts",
                chaos_seed=args.chaos_seed, scheduler=args.scheduler,
                shards=args.shards, sampler_window=args.window))
        except LegionError as exc:
            print(f"slo error: {exc}", file=out)
            return 2
        print(cmp.summary(), file=out)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(cmp.to_json() + "\n")
            print(f"wrote guardrails SLO comparison to {args.out}",
                  file=out)
        exhausted = cmp.reports["guardrails"].slo["exhausted"]
        if exhausted and not args.allow_exhausted:
            print(f"ERROR: {exhausted} error budget(s) exhausted with "
                  f"guardrails on", file=out)
            return 1
        return 0

    args.sampler_window = args.window
    try:
        meta = _build_meta(args)
    except LegionError as exc:
        print(f"slo error: {exc}", file=out)
        return 2
    if args.retry:
        meta.enable_retries()
    app = meta.create_class("cli-app",
                            implementations_for_all_platforms(),
                            work_units=args.work)
    try:
        scheduler = meta.make_scheduler(args.scheduler)
    except ValueError as exc:
        print(str(exc), file=out)
        return 2
    for _wave in range(args.waves):
        try:
            scheduler.run([ObjectClassRequest(app, count=args.count)])
        except LegionError:
            pass
        meta.advance(args.wave_interval)
    if meta.chaos is not None:
        meta.chaos.teardown()

    meta.sampler.flush()
    report = build_health_report(
        meta.sampler,
        list(specs) if specs is not None else meta.default_slos(),
        spans=meta.spans.spans,
        title=f"slo health: {args.waves} x {args.count} instances via "
              f"{args.scheduler} (seed {args.seed}"
              + (f", chaos {args.chaos_profile}/{args.chaos_seed}"
                 if args.chaos_profile else "")
              + (", guardrails" if args.guardrails else "") + ")",
        include_windows=not args.no_windows)
    if args.format == "json":
        print(health_report_to_json(report), file=out)
    else:
        print(render_health_report(report), file=out)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(health_report_to_json(report) + "\n")
        print(f"wrote SLO health report to {args.out}", file=out)
    if not report["healthy"] and not args.allow_exhausted:
        print("ERROR: error budget exhausted "
              f"({report['minutes_lost']:g} SLO minutes lost)", file=out)
        return 1
    return 0


def cmd_scale(args: argparse.Namespace, out) -> int:
    """Run the scale campaign and write/check the BENCH_scale.json ledger.

    ``--check FILE`` compares this run against a committed ledger: the
    exit status is nonzero when a deterministic field drifted (the
    ledger is stale) or events/sec regressed beyond tolerance — what
    the ``scale-smoke`` CI job gates on.
    """
    import json

    from ..bench import scale as scale_bench
    try:
        sizes = tuple(int(s) for s in args.sizes.split(",") if s.strip())
    except ValueError:
        print(f"bad --sizes {args.sizes!r}: expected comma-separated "
              f"integers", file=out)
        return 2
    try:
        report = scale_bench.build_report(
            sizes=sizes, waves=args.waves, per_wave=args.count,
            seed=args.seed, scheduler=args.scheduler,
            members=args.members, reps=args.reps)
    except (LegionError, ValueError) as exc:
        print(f"scale error: {exc}", file=out)
        return 2
    scale_bench.placement_table(report["sizes"]).print(out)
    scale_bench.engine_table(report["query_engines"]).print(out)
    status = 0
    if args.check:
        with open(args.check, "r", encoding="utf-8") as fh:
            committed = json.load(fh)
        problems = scale_bench.check_report(
            committed, report,
            min_ratio=args.min_ratio if args.min_ratio > 0 else None)
        for problem in problems:
            print(f"ERROR: {problem}", file=out)
        if problems:
            status = 1
        else:
            print(f"ledger check passed against {args.check}", file=out)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(scale_bench.report_to_json(report) + "\n")
        print(f"wrote scale ledger to {args.out}", file=out)
    return status


def cmd_economy(args: argparse.Namespace, out) -> int:
    """Run a seeded computational-economy campaign: per-user budgets and
    deadlines, market ask pricing, and reservation auctions.

    With ``--compare-baselines`` (the headline mode) the identical seeded
    world is replayed under the economy scheduler and each baseline; the
    exit status is nonzero unless the economy beats Random *and* IRS on
    both deadline-miss rate and total metered cost — what the
    ``economy-smoke`` CI job gates on.
    """
    from ..economy.campaign import run_economy, run_economy_comparison
    kwargs = _campaign_kwargs(
        args, mode=args.mode, chaos_profile=args.chaos_profile or None,
        chaos_seed=args.chaos_seed, guardrails=args.guardrails,
        retry=args.retry, users=args.users, budget=args.budget,
        deadline=args.deadline, deadline_safety=args.deadline_safety)
    try:
        if args.compare_baselines:
            cmp = run_economy_comparison(**kwargs)
            print(cmp.summary(), file=out)
            print(file=out)
            print(cmp.reports["economy"].summary(), file=out)
            if args.out:
                with open(args.out, "w", encoding="utf-8") as fh:
                    fh.write(cmp.to_json() + "\n")
                print(f"wrote economy comparison to {args.out}", file=out)
            if not cmp.economy_beats_baselines:
                losses = [b for b in cmp.gate_baselines
                          if not cmp.beats(b)]
                print(f"ERROR: economy does not beat "
                      f"{', '.join(losses)} on both deadline-miss rate "
                      f"and total cost", file=out)
                return 1
            return 0
        report = run_economy(scheduler=args.scheduler, **kwargs)
        print(report.summary(), file=out)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(report.to_json() + "\n")
            print(f"wrote EconomyReport to {args.out}", file=out)
        return 0
    except (LegionError, ValueError) as exc:
        print(f"economy error: {exc}", file=out)
        return 2


def cmd_serve(args: argparse.Namespace, out) -> int:
    """Run the live service tier — request gateway, bounded placement
    queue, worker pool — under seeded open-loop diurnal/bursty traffic
    with a deterministic overload surge, and report per-request e2e
    latency joined with the SLO engine's burn-rate verdicts.

    With ``--compare-shedding`` (the headline mode) the identical seeded
    overload runs twice — bounded backlog (shedding on) vs unbounded —
    and the exit status is nonzero unless shedding protects the e2e
    latency SLO: the surge must exhaust the latency error budget with
    shedding off while the bounded run keeps p99 inside its threshold —
    what the ``service-smoke`` CI job gates on.
    """
    from ..service.report import run_service, run_service_comparison
    kwargs = _campaign_kwargs(
        args, scheduler=args.scheduler, users=args.users,
        duration=args.duration, workers=args.workers,
        backpressure=args.backpressure,
        requests_per_user_hour=args.rate,
        surge_multiplier=args.surge,
        slo_threshold=args.slo_threshold,
        host_slots=args.host_slots)
    try:
        if args.compare_shedding:
            cmp = run_service_comparison(queue_cap=args.queue_cap,
                                         **kwargs)
            print(cmp.summary(), file=out)
            print(file=out)
            print(cmp.reports["shedding"].summary(), file=out)
            if args.out:
                with open(args.out, "w", encoding="utf-8") as fh:
                    fh.write(cmp.to_json() + "\n")
                print(f"wrote service comparison to {args.out}", file=out)
            if not cmp.shedding_protects_slo:
                print("ERROR: shedding does not protect the e2e latency "
                      "SLO under this overload", file=out)
                return 1
            return 0
        report = run_service(queue_cap=args.queue_cap, **kwargs)
        print(report.summary(), file=out)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(report.to_json() + "\n")
            print(f"wrote ServiceReport to {args.out}", file=out)
        if report.latency_budget_exhausted and not args.allow_exhausted:
            print("ERROR: e2e latency error budget exhausted", file=out)
            return 1
        return 0
    except (LegionError, ValueError) as exc:
        print(f"serve error: {exc}", file=out)
        return 2


def cmd_gameday(args: argparse.Namespace, out) -> int:
    """Run a recovery game day: chaos kills workers/hosts/links under
    live service traffic while the journal/lease/Supervisor machinery
    keeps every request owned, and the report grades ground truth —
    lost requests and duplicate placements must both be zero, with at
    least one orphan actually recovered.

    With ``--compare-restore`` (the headline mode) the identical seeded
    game day runs twice — straight through, then torn down mid-run and
    restored from a checkpoint — and the exit status is nonzero unless
    both runs pass *and* their report cores match byte for byte, which
    is what the ``gameday-smoke`` CI job gates on.
    """
    from ..recovery import run_gameday, run_gameday_comparison
    kwargs = dict(seed=args.seed, users=args.users, duration=args.duration,
                  workers=args.workers, queue_cap=args.queue_cap,
                  backpressure=args.backpressure, scheduler=args.scheduler,
                  work=args.work, requests_per_user_hour=args.rate,
                  surge_multiplier=args.surge, kills=args.kills,
                  lease_ttl=args.lease_ttl,
                  heartbeat_interval=args.heartbeat_interval,
                  scan_interval=args.scan_interval,
                  n_domains=args.domains, hosts_per_domain=args.hosts,
                  platform_mix=args.platforms, host_slots=args.host_slots,
                  background_load=args.load)
    try:
        if args.compare_restore:
            cmp = run_gameday_comparison(
                checkpoint_at=args.checkpoint_at or None, **kwargs)
            print(cmp.summary(), file=out)
            if args.out:
                with open(args.out, "w", encoding="utf-8") as fh:
                    fh.write(cmp.to_json() + "\n")
                print(f"wrote gameday comparison to {args.out}", file=out)
            if not cmp.passed:
                problems = []
                for tag, rep in (("straight", cmp.straight),
                                 ("restored", cmp.restored)):
                    if rep.lost:
                        problems.append(f"{tag}: {rep.lost} request(s) lost")
                    if rep.duplicates:
                        problems.append(f"{tag}: {rep.duplicates} duplicate "
                                        f"placement(s)")
                    if not rep.recovered:
                        problems.append(f"{tag}: no orphan recovered")
                if not cmp.byte_identical:
                    problems.append("restored run diverged from the "
                                    "uninterrupted run")
                for problem in problems or ["gameday gate failed"]:
                    print(f"ERROR: {problem}", file=out)
                return 1
            return 0
        report = run_gameday(checkpoint_at=args.checkpoint_at or None,
                             **kwargs)
        print(report.summary(), file=out)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(report.to_json() + "\n")
            print(f"wrote GamedayReport to {args.out}", file=out)
        return 0 if report.passed else 1
    except (LegionError, ValueError) as exc:
        print(f"gameday error: {exc}", file=out)
        return 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="legion-sim",
        description="Drive a simulated Legion metasystem from the "
                    "command line.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("hosts", help="list simulated hosts")
    _add_testbed_args(p)
    p.set_defaults(fn=cmd_hosts)

    p = sub.add_parser("vaults", help="list vaults")
    _add_testbed_args(p)
    p.set_defaults(fn=cmd_vaults)

    p = sub.add_parser("context", help="walk the context space")
    _add_testbed_args(p)
    p.set_defaults(fn=cmd_context)

    p = sub.add_parser("query", help="query the Collection")
    _add_testbed_args(p)
    p.add_argument("expression", help="Collection query expression")
    p.set_defaults(fn=cmd_query)

    p = sub.add_parser("run", help="schedule instances of a class")
    _add_testbed_args(p)
    p.add_argument("--count", type=int, default=4)
    p.add_argument("--work", type=float, default=200.0)
    p.add_argument("--scheduler", default="irs",
                   help="random | irs | load | mct | round-robin | kofn | cost | economy")
    p.add_argument("--wait", action="store_true",
                   help="advance virtual time until completion")
    p.add_argument("--trace", type=int, default=0, metavar="N",
                   help="print a sequence diagram of the first N "
                        "protocol invocations")
    p.add_argument("--trace-out", default="", metavar="FILE",
                   help="export span traces to FILE (Chrome trace-event "
                        "JSON; a .jsonl suffix dumps one span per line)")
    p.add_argument("--chaos-profile", default="",
                   help="arm a fault-injection campaign over the run "
                        "(light | hosts | partitions | lossy | mixed | "
                        "heavy)")
    p.add_argument("--chaos-seed", type=int, default=0,
                   help="campaign seed (independent of --seed)")
    p.add_argument("--chaos-horizon", type=float, default=0.0,
                   help="stop injecting after this much virtual time "
                        "(default: profile horizon)")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("metrics",
                       help="run a workload and export the metrics "
                            "snapshot")
    _add_testbed_args(p)
    p.add_argument("--count", type=int, default=4)
    p.add_argument("--work", type=float, default=200.0)
    p.add_argument("--scheduler", default="irs",
                   help="random | irs | load | mct | round-robin | kofn | cost | economy")
    p.add_argument("--wait", action="store_true",
                   help="advance virtual time until completion")
    p.add_argument("--format", choices=("table", "json", "prom"),
                   default="table",
                   help="output format (default table)")
    p.add_argument("--quantiles", default="p50,p90", metavar="LIST",
                   help="histogram quantile columns for the table "
                        "format, e.g. p50,p90,p99 (default p50,p90)")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser("trace",
                       help="run a workload and analyse its span traces")
    p.add_argument("mode",
                   choices=("tree", "summary", "critical-path", "steps",
                            "chrome"),
                   help="tree = ASCII trace trees, summary = per-step "
                        "latency table, critical-path = dominant step "
                        "per request, steps = cross-trace per-step "
                        "count/mean/p95 aggregate, chrome = trace-event "
                        "JSON")
    _add_testbed_args(p)
    p.add_argument("--count", type=int, default=4)
    p.add_argument("--work", type=float, default=200.0)
    p.add_argument("--scheduler", default="irs",
                   help="random | irs | load | mct | round-robin | kofn | cost | economy")
    p.add_argument("--wait", action="store_true",
                   help="advance virtual time until completion")
    p.add_argument("--out", default="", metavar="FILE",
                   help="write output to FILE instead of stdout "
                        "(chrome mode + .jsonl suffix dumps spans as "
                        "JSONL)")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("federation",
                       help="run a federated workload and print ring "
                            "layout, replica placement, and "
                            "gossip/staleness stats")
    _add_testbed_args(p)
    p.add_argument("--count", type=int, default=4)
    p.add_argument("--work", type=float, default=200.0)
    p.add_argument("--scheduler", default="irs",
                   help="random | irs | load | mct | round-robin | kofn | cost | economy")
    p.add_argument("--wait", action="store_true",
                   help="advance virtual time until completion")
    p.set_defaults(fn=cmd_federation)

    p = sub.add_parser("chaos",
                       help="run a seeded fault-injection campaign and "
                            "report survival statistics")
    _add_testbed_args(p)
    p.add_argument("--profile", default="mixed",
                   help="campaign profile: light | hosts | partitions | "
                        "lossy | mixed | heavy (default mixed)")
    p.add_argument("--chaos-seed", type=int, default=0,
                   help="campaign seed (independent of --seed)")
    p.add_argument("--waves", type=int, default=6,
                   help="placement waves to attempt (default 6)")
    p.add_argument("--count", type=int, default=4,
                   help="instances requested per wave (default 4)")
    p.add_argument("--work", type=float, default=250.0)
    p.add_argument("--wave-interval", type=float, default=90.0,
                   help="virtual seconds between waves (default 90)")
    p.add_argument("--horizon", type=float, default=0.0,
                   help="campaign horizon override in virtual seconds")
    p.add_argument("--scheduler", default="irs",
                   help="random | irs | load | mct | round-robin | kofn | cost | economy")
    p.add_argument("--retry", action="store_true",
                   help="enable the RetryPolicy resilience layer")
    p.add_argument("--guardrails", action="store_true",
                   help="enable the guardrails self-healing layer")
    p.add_argument("--compare-retry", action="store_true",
                   help="run the identical campaign retry-off then "
                        "retry-on and print both survival rates")
    p.add_argument("--out", default="", metavar="FILE",
                   help="write the ResilienceReport JSON to FILE")
    p.set_defaults(fn=cmd_chaos)

    p = sub.add_parser("guardrails",
                       help="benchmark the guardrails self-healing layer "
                            "against retries-only and bare baselines")
    _add_testbed_args(p)
    p.add_argument("--profile", default="hosts",
                   help="campaign profile (default hosts — crash-"
                        "dominated, the guardrails sweet spot)")
    p.add_argument("--chaos-seed", type=int, default=1,
                   help="campaign seed (default 1)")
    p.add_argument("--waves", type=int, default=6,
                   help="placement waves to attempt (default 6)")
    p.add_argument("--count", type=int, default=4,
                   help="instances requested per wave (default 4)")
    p.add_argument("--work", type=float, default=250.0)
    p.add_argument("--wave-interval", type=float, default=90.0,
                   help="virtual seconds between waves (default 90)")
    p.add_argument("--horizon", type=float, default=0.0,
                   help="campaign horizon override in virtual seconds")
    p.add_argument("--scheduler", default="irs",
                   help="random | irs | load | mct | round-robin | kofn | cost | economy")
    p.add_argument("--compare", action="store_true",
                   help="print only the three-mode comparison table "
                        "(omits the full guardrails-mode report)")
    p.add_argument("--events", action="store_true",
                   help="include per-fault event logs in --out JSON")
    p.add_argument("--out", default="", metavar="FILE",
                   help="write the comparison JSON to FILE")
    p.set_defaults(fn=cmd_guardrails)

    p = sub.add_parser("slo",
                       help="run a workload under windowed sampling and "
                            "report SLO health: error budgets, burn-rate "
                            "alerts, and breached-window exemplar traces")
    _add_testbed_args(p)
    p.add_argument("--window", type=float, default=30.0,
                   help="sampling window in virtual seconds (default 30)")
    p.add_argument("--spec", default="", metavar="FILE",
                   help="JSON file of SLO objectives ({\"slos\": [...]}; "
                        "default: the stock Legion objectives)")
    p.add_argument("--waves", type=int, default=6,
                   help="placement waves to attempt (default 6)")
    p.add_argument("--count", type=int, default=4,
                   help="instances requested per wave (default 4)")
    p.add_argument("--work", type=float, default=250.0)
    p.add_argument("--wave-interval", type=float, default=90.0,
                   help="virtual seconds between waves (default 90)")
    p.add_argument("--scheduler", default="irs",
                   help="random | irs | load | mct | round-robin | kofn | cost | economy")
    p.add_argument("--chaos-profile", default="",
                   help="arm a fault-injection campaign over the run "
                        "(light | hosts | partitions | lossy | mixed | "
                        "heavy)")
    p.add_argument("--chaos-seed", type=int, default=0,
                   help="campaign seed (independent of --seed)")
    p.add_argument("--chaos-horizon", type=float, default=0.0,
                   help="stop injecting after this much virtual time")
    p.add_argument("--retry", action="store_true",
                   help="enable the RetryPolicy resilience layer")
    p.add_argument("--guardrails", action="store_true",
                   help="enable the guardrails self-healing layer")
    p.add_argument("--compare-guardrails", action="store_true",
                   help="run the identical seeded campaign off / "
                        "retries / guardrails and compare SLO minutes "
                        "lost across the three modes")
    p.add_argument("--format", choices=("table", "json"),
                   default="table",
                   help="output format (default table)")
    p.add_argument("--no-windows", action="store_true",
                   help="omit per-window verdict rows from the report")
    p.add_argument("--allow-exhausted", action="store_true",
                   help="exit 0 even when an error budget is exhausted")
    p.add_argument("--out", default="", metavar="FILE",
                   help="write the health report JSON to FILE")
    p.set_defaults(fn=cmd_slo)

    p = sub.add_parser("scale",
                       help="run the scale campaign and write/check the "
                            "BENCH_scale.json speed ledger")
    p.add_argument("--sizes", default="64,256,1024",
                   help="comma-separated total host counts, each "
                        "divisible by 4 (default 64,256,1024)")
    p.add_argument("--waves", type=int, default=4,
                   help="placement waves per size (default 4)")
    p.add_argument("--count", type=int, default=6,
                   help="instances requested per wave (default 6)")
    p.add_argument("--seed", type=int, default=0,
                   help="experiment seed (default 0)")
    p.add_argument("--scheduler", default="irs",
                   help="random | irs | load | mct | round-robin | kofn | cost | economy")
    p.add_argument("--members", type=int, default=4096,
                   help="member count for the query-engine microbench "
                        "(default 4096)")
    p.add_argument("--reps", type=int, default=20,
                   help="timing repetitions per engine (default 20)")
    p.add_argument("--check", default="", metavar="FILE",
                   help="compare this run against a committed ledger; "
                        "exit nonzero on staleness or speed regression")
    p.add_argument("--min-ratio", type=float, default=0.0,
                   help="events/sec tolerance floor as a fraction of "
                        "the committed speed (default: the committed "
                        "ledger's own min_ratio)")
    p.add_argument("--out", default="", metavar="FILE",
                   help="write the scale ledger JSON to FILE")
    p.set_defaults(fn=cmd_scale)

    p = sub.add_parser("economy",
                       help="run a computational-economy campaign: "
                            "budgets, deadlines, market pricing, and "
                            "reservation auctions")
    _add_testbed_args(p)
    p.add_argument("--mode", choices=("time", "cost"), default="cost",
                   help="economy optimization mode: minimize completion "
                        "time within budget, or cost within deadline "
                        "(default cost)")
    p.add_argument("--scheduler", default="economy",
                   help="economy | random | irs | cost (single-report "
                        "mode only; default economy)")
    p.add_argument("--users", type=int, default=2,
                   help="concurrent users, each with their own budget, "
                        "deadline, and application class (default 2)")
    p.add_argument("--budget", type=float, default=40.0,
                   help="per-user budget in currency units (default 40)")
    p.add_argument("--deadline", type=float, default=900.0,
                   help="per-user experiment deadline in virtual seconds "
                        "from first submission (default 900)")
    p.add_argument("--deadline-safety", type=float, default=0.6,
                   help="fraction of the remaining deadline a host's "
                        "estimated completion must fit within "
                        "(default 0.6)")
    p.add_argument("--waves", type=int, default=6,
                   help="placement waves per user (default 6)")
    p.add_argument("--count", type=int, default=2,
                   help="instances requested per user per wave "
                        "(default 2)")
    p.add_argument("--work", type=float, default=250.0)
    p.add_argument("--wave-interval", type=float, default=90.0,
                   help="virtual seconds between waves (default 90)")
    p.add_argument("--chaos-profile", default="",
                   help="arm a fault-injection campaign over the run "
                        "(light | hosts | partitions | lossy | mixed | "
                        "heavy)")
    p.add_argument("--chaos-seed", type=int, default=0,
                   help="campaign seed (independent of --seed)")
    p.add_argument("--guardrails", action="store_true",
                   help="enable the guardrails self-healing layer")
    p.add_argument("--retry", action="store_true",
                   help="enable the RetryPolicy resilience layer")
    p.add_argument("--compare-baselines", action="store_true",
                   help="replay the identical seeded campaign under "
                        "random/irs/cost baselines; exit nonzero unless "
                        "the economy beats random and irs on both "
                        "deadline-miss rate and total cost")
    p.add_argument("--out", default="", metavar="FILE",
                   help="write the report/comparison JSON to FILE")
    p.set_defaults(fn=cmd_economy)

    p = sub.add_parser("serve",
                       help="run the live service tier under seeded "
                            "open-loop traffic: request gateway, bounded "
                            "placement queue, worker pool, and SLO "
                            "verdicts")
    _add_testbed_args(p)
    # the serve campaign's stock world (matches run_service defaults)
    p.set_defaults(domains=3, hosts=6, platforms=3, load=0.3)
    p.add_argument("--users", type=int, default=1_000_000,
                   help="traffic population size; arrival cost is "
                        "O(requests), not O(users), so millions are fine "
                        "(default 1000000)")
    p.add_argument("--duration", type=float, default=240.0,
                   help="open-loop traffic window in virtual seconds "
                        "(default 240)")
    p.add_argument("--workers", type=int, default=4,
                   help="worker daemons draining the placement queue "
                        "(default 4)")
    p.add_argument("--queue-cap", type=int, default=64,
                   help="bounded backlog size; 0 = unbounded, i.e. "
                        "shedding off (default 64)")
    p.add_argument("--backpressure", choices=BACKPRESSURE_MODES,
                   default="shed",
                   help="what a full backlog does to a new submit "
                        "(default shed)")
    p.add_argument("--scheduler", default="irs",
                   help="random | irs | load | mct | round-robin | kofn | cost | economy")
    p.add_argument("--work", type=float, default=10.0,
                   help="work units per placed service instance "
                        "(default 10)")
    p.add_argument("--rate", type=float, default=0.0036,
                   help="requests per user per hour (default 0.0036 — "
                        "1 req/s at a million users)")
    p.add_argument("--surge", type=float, default=12.0,
                   help="overload surge rate multiplier through the "
                        "middle fifth of the run (default 12)")
    p.add_argument("--slo-threshold", type=float, default=30.0,
                   help="e2e latency SLO threshold in virtual seconds "
                        "(default 30)")
    p.add_argument("--host-slots", type=int, default=8,
                   help="reservation slots per host (default 8)")
    p.add_argument("--compare-shedding", action="store_true",
                   help="run the identical seeded overload with the "
                        "bounded backlog on then off; exit nonzero "
                        "unless shedding keeps p99 inside the SLO while "
                        "the unbounded run exhausts its error budget")
    p.add_argument("--allow-exhausted", action="store_true",
                   help="exit 0 even when the e2e latency error budget "
                        "is exhausted (single-run mode)")
    p.add_argument("--out", default="", metavar="FILE",
                   help="write the report/comparison JSON to FILE")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("gameday",
                       help="run a recovery game day: chaos kills "
                            "workers under live service traffic; gates "
                            "on zero lost requests, zero duplicate "
                            "placements, and byte-identical "
                            "checkpoint/restore")
    _add_testbed_args(p)
    # the game day runs on the serve campaign's stock world
    p.set_defaults(domains=3, hosts=6, platforms=3, load=0.3)
    p.add_argument("--users", type=int, default=1_000_000,
                   help="traffic population size (default 1000000)")
    p.add_argument("--duration", type=float, default=240.0,
                   help="open-loop traffic window in virtual seconds "
                        "(default 240)")
    p.add_argument("--workers", type=int, default=4,
                   help="worker daemons draining the placement queue "
                        "(default 4)")
    p.add_argument("--queue-cap", type=int, default=64,
                   help="bounded backlog size; 0 = unbounded "
                        "(default 64)")
    p.add_argument("--backpressure", choices=BACKPRESSURE_MODES,
                   default="shed",
                   help="what a full backlog does to a new submit "
                        "(default shed)")
    p.add_argument("--scheduler", default="irs",
                   help="random | irs | load | mct | round-robin | kofn | cost | economy")
    p.add_argument("--work", type=float, default=10.0,
                   help="work units per placed service instance "
                        "(default 10)")
    p.add_argument("--rate", type=float, default=0.0036,
                   help="requests per user per hour (default 0.0036)")
    p.add_argument("--surge", type=float, default=12.0,
                   help="overload surge rate multiplier (default 12)")
    p.add_argument("--kills", type=int, default=2,
                   help="worker crashes injected inside the surge "
                        "(default 2; the pass gate requires >= 2)")
    p.add_argument("--lease-ttl", type=float, default=20.0,
                   help="request-ownership lease TTL in virtual "
                        "seconds (default 20)")
    p.add_argument("--heartbeat-interval", type=float, default=5.0,
                   help="worker lease-renewal period (default 5)")
    p.add_argument("--scan-interval", type=float, default=5.0,
                   help="Supervisor expired-lease scan period "
                        "(default 5)")
    p.add_argument("--checkpoint-at", type=float, default=0.0,
                   help="from this virtual time on, poll for a safe "
                        "point, then checkpoint/teardown/restore the "
                        "tier mid-run (default 0 = off)")
    p.add_argument("--host-slots", type=int, default=8,
                   help="reservation slots per host (default 8)")
    p.add_argument("--compare-restore", action="store_true",
                   help="run the identical seeded game day straight "
                        "through and with a mid-run checkpoint/restore; "
                        "exit nonzero unless both pass and their report "
                        "cores are byte-identical")
    p.add_argument("--out", default="", metavar="FILE",
                   help="write the report/comparison JSON to FILE")
    p.set_defaults(fn=cmd_gameday)

    p = sub.add_parser("bench", help="compare schedulers on one workload")
    _add_testbed_args(p)
    p.add_argument("--count", type=int, default=6)
    p.add_argument("--work", type=float, default=200.0)
    p.add_argument("--scheduler", action="append",
                   help="repeatable; default random, irs, load")
    p.set_defaults(fn=cmd_bench)
    return parser


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args, out or sys.stdout)


if __name__ == "__main__":
    sys.exit(main())
