"""Command-line tools for driving simulated metasystem scenarios."""

from .cli import build_parser, main

__all__ = ["main", "build_parser"]
