"""Event tracing for experiments and debugging.

A :class:`Tracer` records timestamped, categorized trace records.  The
benchmark harness uses traces to compute per-step protocol latency (E3),
reservation-thrashing counts (E7), and migration timelines (E12).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, MutableSequence, Optional

__all__ = ["TraceRecord", "Tracer", "NullTracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped trace entry."""

    time: float
    category: str
    event: str
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        kv = " ".join(f"{k}={v}" for k, v in self.details.items())
        return f"[{self.time:12.6f}] {self.category}/{self.event} {kv}".rstrip()


class Tracer:
    """Collects :class:`TraceRecord` entries, with category filtering.

    With ``max_records`` set, ``records`` becomes a ring buffer holding
    only the most recent entries — long soak runs stay bounded — while
    :meth:`count` and :attr:`total_records` remain exact over the whole
    run.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 enabled_categories: Optional[set] = None,
                 max_records: Optional[int] = None):
        if max_records is not None and max_records < 1:
            raise ValueError("max_records must be >= 1")
        self._clock = clock or (lambda: 0.0)
        self.max_records = max_records
        self.records: MutableSequence[TraceRecord] = (
            [] if max_records is None else deque(maxlen=max_records))
        self.enabled_categories = enabled_categories  # None = everything
        self._counts: Dict[str, int] = {}
        self.total_records = 0
        #: span bridge: a :class:`~repro.obs.spans.SpanTracer` (set by the
        #: Metasystem) receiving every emitted record as a span event on
        #: the currently open span, giving flat traces causal context
        self.span_sink: Optional[Any] = None

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the virtual clock after construction."""
        self._clock = clock

    def emit(self, category: str, event: str, **details: Any) -> None:
        """Record one entry (no-op if the category is filtered out)."""
        if (self.enabled_categories is not None
                and category not in self.enabled_categories):
            return
        self.records.append(
            TraceRecord(self._clock(), category, event, details))
        self.total_records += 1
        key = f"{category}/{event}"
        self._counts[key] = self._counts.get(key, 0) + 1
        if self.span_sink is not None:
            self.span_sink.event(category, event, **details)

    def count(self, category: str, event: Optional[str] = None) -> int:
        """Number of records matching category (and optionally event)."""
        if event is not None:
            return self._counts.get(f"{category}/{event}", 0)
        prefix = category + "/"
        return sum(v for k, v in self._counts.items() if k.startswith(prefix))

    def select(self, category: Optional[str] = None,
               event: Optional[str] = None) -> Iterator[TraceRecord]:
        """Iterate records filtered by category and/or event name."""
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if event is not None and rec.event != event:
                continue
            yield rec

    def clear(self) -> None:
        self.records.clear()
        self._counts.clear()
        self.total_records = 0

    def __len__(self) -> int:
        return len(self.records)


class NullTracer(Tracer):
    """A tracer that records nothing — for hot benchmark loops."""

    def __init__(self) -> None:
        super().__init__()

    def emit(self, category: str, event: str, **details: Any) -> None:
        return
