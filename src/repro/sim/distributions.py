"""Parametric samplers used by the metasystem substrate.

Each distribution is a small immutable object with a ``sample(rng)`` method
taking a :class:`numpy.random.Generator`; workload and latency models are
configured with these so experiments can sweep distributional assumptions
without touching component code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "Distribution",
    "Constant",
    "Uniform",
    "Exponential",
    "Normal",
    "LogNormal",
    "Pareto",
    "Weibull",
    "Empirical",
    "Shifted",
    "Clipped",
]


class Distribution:
    """Abstract sampler.  Subclasses must implement :meth:`sample`."""

    def sample(self, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Vectorized sampling; the default loops, subclasses vectorize."""
        return np.array([self.sample(rng) for _ in range(n)], dtype=float)

    @property
    def mean(self) -> float:
        """Analytic mean where known; ``nan`` otherwise."""
        return float("nan")


@dataclass(frozen=True)
class Constant(Distribution):
    """Degenerate distribution: always ``value``."""

    value: float

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.value)

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, float(self.value))

    @property
    def mean(self) -> float:
        return float(self.value)


@dataclass(frozen=True)
class Uniform(Distribution):
    low: float
    high: float

    def __post_init__(self):
        if self.high < self.low:
            raise ValueError(f"Uniform high {self.high} < low {self.low}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential with the given *mean* (not rate)."""

    mean_value: float

    def __post_init__(self):
        if self.mean_value <= 0:
            raise ValueError("Exponential mean must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean_value))

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(self.mean_value, size=n)

    @property
    def mean(self) -> float:
        return self.mean_value


@dataclass(frozen=True)
class Normal(Distribution):
    mu: float
    sigma: float

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.normal(self.mu, self.sigma))

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.normal(self.mu, self.sigma, size=n)

    @property
    def mean(self) -> float:
        return self.mu


@dataclass(frozen=True)
class LogNormal(Distribution):
    """Log-normal parameterized by the underlying normal's mu/sigma."""

    mu: float
    sigma: float

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self.mu, self.sigma))

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size=n)

    @property
    def mean(self) -> float:
        return math.exp(self.mu + 0.5 * self.sigma ** 2)


@dataclass(frozen=True)
class Pareto(Distribution):
    """Pareto (heavy tail) with shape ``alpha`` and scale ``xm`` (minimum)."""

    alpha: float
    xm: float = 1.0

    def __post_init__(self):
        if self.alpha <= 0 or self.xm <= 0:
            raise ValueError("Pareto alpha and xm must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.xm * (1.0 + rng.pareto(self.alpha)))

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.xm * (1.0 + rng.pareto(self.alpha, size=n))

    @property
    def mean(self) -> float:
        if self.alpha <= 1:
            return float("inf")
        return self.alpha * self.xm / (self.alpha - 1)


@dataclass(frozen=True)
class Weibull(Distribution):
    """Weibull with shape ``k`` and scale ``lam`` — used for failure times."""

    k: float
    lam: float = 1.0

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.lam * rng.weibull(self.k))

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.lam * rng.weibull(self.k, size=n)

    @property
    def mean(self) -> float:
        return self.lam * math.gamma(1.0 + 1.0 / self.k)


class Empirical(Distribution):
    """Resample uniformly from an observed trace."""

    def __init__(self, values: Sequence[float]):
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            raise ValueError("Empirical requires at least one value")
        self.values = arr

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.values[rng.integers(0, self.values.size)])

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        idx = rng.integers(0, self.values.size, size=n)
        return self.values[idx]

    @property
    def mean(self) -> float:
        return float(self.values.mean())

    def __repr__(self) -> str:  # pragma: no cover
        return f"Empirical(n={self.values.size}, mean={self.mean:.3g})"


@dataclass(frozen=True)
class Shifted(Distribution):
    """``base + offset`` — e.g. a minimum network propagation delay."""

    base: Distribution
    offset: float

    def sample(self, rng: np.random.Generator) -> float:
        return self.base.sample(rng) + self.offset

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.base.sample_n(rng, n) + self.offset

    @property
    def mean(self) -> float:
        return self.base.mean + self.offset


@dataclass(frozen=True)
class Clipped(Distribution):
    """Clamp a base distribution into ``[low, high]``."""

    base: Distribution
    low: float = 0.0
    high: float = float("inf")

    def __post_init__(self):
        if self.high < self.low:
            raise ValueError("Clipped high < low")

    def sample(self, rng: np.random.Generator) -> float:
        return float(min(max(self.base.sample(rng), self.low), self.high))

    def sample_n(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.clip(self.base.sample_n(rng, n), self.low, self.high)
