"""Discrete-event simulation substrate: kernel, RNG streams, distributions,
tracing, and online statistics."""

from .kernel import AllOf, AnyOf, Event, Interrupt, Process, Simulator, Timeout
from .rng import RngRegistry, derive_seed
from .distributions import (
    Clipped,
    Constant,
    Distribution,
    Empirical,
    Exponential,
    LogNormal,
    Normal,
    Pareto,
    Shifted,
    Uniform,
    Weibull,
)
from .stats import Histogram, RunningStats, TimeWeightedStats, summarize
from .tracing import NullTracer, TraceRecord, Tracer

__all__ = [
    "Simulator", "Process", "Event", "Timeout", "AllOf", "AnyOf", "Interrupt",
    "RngRegistry", "derive_seed",
    "Distribution", "Constant", "Uniform", "Exponential", "Normal",
    "LogNormal", "Pareto", "Weibull", "Empirical", "Shifted", "Clipped",
    "RunningStats", "TimeWeightedStats", "Histogram", "summarize",
    "Tracer", "NullTracer", "TraceRecord",
]
