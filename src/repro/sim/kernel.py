"""Discrete-event simulation kernel.

The kernel drives the *world dynamics* of the simulated metasystem: background
load random walks on machines, job completions inside queue-management
systems, owner activity on cycle-scavenged workstations, host failures, and
periodic host attribute re-assessment (paper section 3.1).

Design
------
Processes are Python generators that ``yield`` waitable objects:

* :class:`Timeout` — resume after a virtual-time delay;
* :class:`Event` — resume when the event is succeeded (or failed);
* :class:`AllOf` / :class:`AnyOf` — composite conditions;
* another :class:`Process` — resume when that process terminates.

The event queue is a binary heap ordered by ``(time, priority, seq)`` so that
simultaneous events fire in deterministic FIFO order.  This determinism — plus
the seeded RNG streams in :mod:`repro.sim.rng` — makes every experiment in the
benchmark harness exactly reproducible.

The RMI protocol itself (Scheduler/Enactor/Host negotiation) does *not* run as
generator processes; it executes on the Python stack via
:class:`repro.net.transport.Transport`, which advances the clock and calls
:meth:`Simulator.run_until` to bring the world up to date first.  See
DESIGN.md section 4 for the rationale.
"""

from __future__ import annotations

import itertools
import math
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from ..errors import ProcessError, SimTimeError

__all__ = [
    "Simulator",
    "Process",
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "grid_delay",
]


def grid_delay(now: float, interval: float, phase: float = 0.0) -> float:
    """Delay from ``now`` to the next strict point ``k*interval + phase``.

    Daemons that poll on an *absolute* time grid (``k * interval``)
    rather than relative to their last wake-up are memoryless while
    idle: a daemon recreated mid-run (checkpoint/restore, worker
    revival) falls back into exactly the poll schedule its predecessor
    would have kept, which is what makes restored runs byte-identical
    to uninterrupted ones.  A small epsilon absorbs float error so a
    wake-up *at* a grid point always waits a full interval.

    ``phase`` shifts the whole grid: daemons sharing an ``interval``
    but given distinct phases never wake at the same instant, so which
    of them reacts first to a pending item is a function of absolute
    time alone, not of event-heap insertion order — the other half of
    restore transparency.
    """
    if interval <= 0:
        raise ValueError("grid interval must be positive")
    k = math.floor((now - phase) / interval + 1e-9) + 1
    delay = k * interval + phase - now
    if delay <= 0:  # float fallback; never returns a zero delay
        delay = interval
    return delay


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot waitable occurrence.

    An event starts *pending*; exactly one call to :meth:`succeed` or
    :meth:`fail` resolves it, waking every waiting process.  Waiting on an
    already-resolved event resumes the waiter immediately (at the current
    simulation time).
    """

    PENDING = "pending"
    SUCCEEDED = "succeeded"
    FAILED = "failed"

    __slots__ = ("sim", "name", "state", "value", "_waiters")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self.state = Event.PENDING
        self.value: Any = None
        self._waiters: List[Callable[["Event"], None]] = []

    # -- resolution --------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Resolve the event successfully, delivering ``value`` to waiters."""
        if self.state != Event.PENDING:
            raise ProcessError(f"event {self.name!r} already {self.state}")
        self.state = Event.SUCCEEDED
        self.value = value
        self._notify()
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Resolve the event with an exception, raised inside each waiter."""
        if self.state != Event.PENDING:
            raise ProcessError(f"event {self.name!r} already {self.state}")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self.state = Event.FAILED
        self.value = exc
        self._notify()
        return self

    @property
    def resolved(self) -> bool:
        return self.state != Event.PENDING

    @property
    def ok(self) -> bool:
        return self.state == Event.SUCCEEDED

    # -- waiting -----------------------------------------------------------
    def _add_waiter(self, callback: Callable[["Event"], None]) -> None:
        if self.resolved:
            # fire on the next kernel step at the current time
            self.sim.schedule(0.0, lambda: callback(self))
        else:
            self._waiters.append(callback)

    def _notify(self) -> None:
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            self.sim.schedule(0.0, lambda cb=callback: cb(self))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Event {self.name!r} {self.state}>"


class Timeout(Event):
    """An event that succeeds after a fixed virtual-time delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimTimeError(f"negative timeout delay {delay!r}")
        super().__init__(sim, name=f"timeout({delay})")
        self.delay = delay
        sim.schedule(delay, lambda: self.succeed(value))


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event], name: str):
        super().__init__(sim, name=name)
        self.events: Tuple[Event, ...] = tuple(events)
        if not self.events:
            # vacuous condition resolves immediately
            self.succeed({})
            return
        for ev in self.events:
            ev._add_waiter(self._on_child)

    def _on_child(self, ev: Event) -> None:
        raise NotImplementedError

    def _collect(self) -> dict:
        return {e: e.value for e in self.events if e.ok}


class AllOf(_Condition):
    """Succeeds when every child event has succeeded; fails on first failure."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, name="all_of")

    def _on_child(self, ev: Event) -> None:
        if self.resolved:
            return
        if ev.state == Event.FAILED:
            self.fail(ev.value)
        elif all(e.ok for e in self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Succeeds when the first child succeeds; fails if all children fail."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, name="any_of")

    def _on_child(self, ev: Event) -> None:
        if self.resolved:
            return
        if ev.state == Event.SUCCEEDED:
            self.succeed(self._collect())
        elif all(e.state == Event.FAILED for e in self.events):
            self.fail(ev.value)


class Process(Event):
    """A running generator process.

    A process is itself an :class:`Event` that resolves when the generator
    returns (success, with the return value) or raises (failure).
    """

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        if not hasattr(gen, "send"):
            raise ProcessError(f"process body must be a generator, got {gen!r}")
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        # First step happens as a scheduled kernel action so that creating a
        # process inside another process is safe.
        sim.schedule(0.0, lambda: self._step(None, None))

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.resolved:
            return
        self._waiting_on = None  # the pending wakeup will be ignored
        self.sim.schedule(0.0, lambda: self._throw(Interrupt(cause)))

    # -- stepping ----------------------------------------------------------
    def _on_wakeup(self, ev: Event) -> None:
        if self._waiting_on is not ev:
            return  # stale wakeup after an interrupt
        self._waiting_on = None
        if ev.state == Event.FAILED:
            self._throw(ev.value)
        else:
            self._step(ev.value, None)

    def _throw(self, exc: BaseException) -> None:
        if self.resolved:
            return
        self._step(None, exc)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.resolved:
            return
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except Interrupt as unhandled:
            self.fail(unhandled)
            return
        except Exception as err:
            self.fail(err)
            return
        if isinstance(target, (int, float)):
            target = Timeout(self.sim, float(target))
        if not isinstance(target, Event):
            self.fail(ProcessError(f"process yielded non-waitable {target!r}"))
            return
        self._waiting_on = target
        target._add_waiter(self._on_wakeup)


class Simulator:
    """The discrete-event simulation kernel and virtual clock.

    The clock unit is abstract; throughout this library one unit is one
    second of metasystem time.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Tuple[float, int, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self.events_processed = 0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def queue_depth(self) -> int:
        """Number of actions currently scheduled on the event heap."""
        return len(self._heap)

    # -- scheduling primitives ----------------------------------------------
    def schedule(self, delay: float, action: Callable[[], None],
                 priority: int = 0) -> None:
        """Schedule ``action()`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimTimeError(f"cannot schedule in the past (delay={delay})")
        heappush(
            self._heap, (self._now + delay, priority, next(self._seq), action)
        )

    def schedule_at(self, when: float, action: Callable[[], None],
                    priority: int = 0) -> None:
        """Schedule ``action()`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimTimeError(
                f"cannot schedule at {when} before now={self._now}")
        heappush(self._heap, (when, priority, next(self._seq), action))

    # -- waitable factories --------------------------------------------------
    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start a generator as a simulated process."""
        return Process(self, gen, name=name)

    # -- execution -----------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled action, or ``float('inf')`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> bool:
        """Run the single next action.  Returns False when the heap is empty."""
        if not self._heap:
            return False
        when, _prio, _seq, action = heappop(self._heap)
        self._now = when
        self.events_processed += 1
        action()
        return True

    def run_until(self, until: float) -> None:
        """Process every action scheduled at or before ``until``.

        Advances the clock to exactly ``until`` (even if no event lands
        there), so the caller can interleave stack-based protocol execution
        with world dynamics.  ``until`` in the past is a no-op rather than an
        error, which lets zero-latency local calls remain cheap.

        This is the kernel's hottest entry point (the transport calls it
        for every message hop), so the dispatch loop is inlined: the heap
        list and heappop are bound locally, and an empty heap or a no-op
        advance falls through with no per-event work at all.  Scheduling
        from inside an action is safe — ``self._heap`` is the same list
        object the loop holds — and reentrant run_until calls each count
        their own pops into ``events_processed``.
        """
        heap = self._heap
        if heap and heap[0][0] <= until:
            pop = heappop
            processed = 0
            while heap and heap[0][0] <= until:
                when, _prio, _seq, action = pop(heap)
                self._now = when
                processed += 1
                action()
            self.events_processed += processed
        if until > self._now:
            self._now = until

    def run(self, until: Optional[float] = None) -> None:
        """Run to quiescence, or until virtual time ``until``."""
        if until is None:
            while self.step():
                pass
        else:
            self.run_until(until)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator t={self._now:.3f} pending={len(self._heap)}>"
