"""Reproducible random-number streams.

Every stochastic component of the simulated metasystem (per-machine load
walks, network latency sampling, scheduler tie-breaking, failure injection)
draws from its *own* named stream derived from a single experiment seed.
This guarantees that, e.g., adding one more scheduler does not perturb the
load traces — a standard variance-reduction discipline for simulation
studies (common random numbers).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Sequence

import numpy as np

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(root_seed: int, *names: str) -> int:
    """Derive a 64-bit child seed from a root seed and a name path.

    Uses SHA-256 over the root seed and the path components so that streams
    are independent of creation order and stable across runs and platforms.
    """
    h = hashlib.sha256()
    h.update(str(int(root_seed)).encode("utf-8"))
    for name in names:
        h.update(b"\x00")
        h.update(str(name).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big")


class RngRegistry:
    """Factory and cache of named :class:`numpy.random.Generator` streams.

    >>> rngs = RngRegistry(seed=42)
    >>> a = rngs.stream("machine", "host-3", "load")
    >>> b = rngs.stream("machine", "host-3", "load")
    >>> a is b
    True
    """

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[Sequence[str], np.random.Generator] = {}

    def stream(self, *names: str) -> np.random.Generator:
        """Return (creating if needed) the stream for the given name path."""
        key = tuple(str(n) for n in names)
        gen = self._streams.get(key)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.seed, *key))
            self._streams[key] = gen
        return gen

    def fork(self, *names: str) -> "RngRegistry":
        """A child registry whose root is derived from this one's seed."""
        return RngRegistry(derive_seed(self.seed, *names))

    def reset(self, *names: Optional[str]) -> None:
        """Drop cached streams (all, or the one matching the name path)."""
        if names and names[0] is not None:
            self._streams.pop(tuple(str(n) for n in names), None)
        else:
            self._streams.clear()
