"""Online statistics helpers for experiment metrics.

:class:`RunningStats` implements Welford's numerically stable online
mean/variance; :class:`TimeWeightedStats` integrates a piecewise-constant
signal over virtual time (e.g. host utilization); :func:`summarize` renders
percentile summaries for benchmark tables.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence

import numpy as np

__all__ = ["RunningStats", "TimeWeightedStats", "Histogram", "summarize"]


class RunningStats:
    """Welford online mean / variance / min / max."""

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")

    def add(self, x: float) -> None:
        x = float(x)
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.minimum:
            self.minimum = x
        if x > self.maximum:
            self.maximum = x

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        return self._mean if self.n else float("nan")

    @property
    def variance(self) -> float:
        """Sample (n-1) variance."""
        if self.n < 2:
            return float("nan")
        return self._m2 / (self.n - 1)

    @property
    def std(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else float("nan")

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two independent accumulators (Chan et al.)."""
        out = RunningStats()
        out.n = self.n + other.n
        if out.n == 0:
            return out
        delta = other._mean - self._mean
        out._mean = self._mean + delta * other.n / out.n
        out._m2 = (self._m2 + other._m2
                   + delta * delta * self.n * other.n / out.n)
        out.minimum = min(self.minimum, other.minimum)
        out.maximum = max(self.maximum, other.maximum)
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return (f"RunningStats(n={self.n}, mean={self.mean:.4g}, "
                f"std={self.std:.4g})")


class TimeWeightedStats:
    """Time-integral of a piecewise-constant signal.

    ``update(t, value)`` records that the signal changed to ``value`` at time
    ``t``; :attr:`average` is the time-weighted mean over the observed span.
    """

    def __init__(self, start_time: float = 0.0, initial: float = 0.0):
        self._last_t = start_time
        self._value = initial
        self._area = 0.0
        self._span = 0.0

    def update(self, t: float, value: float) -> None:
        if t < self._last_t:
            raise ValueError(f"time went backwards: {t} < {self._last_t}")
        dt = t - self._last_t
        self._area += self._value * dt
        self._span += dt
        self._last_t = t
        self._value = float(value)

    def finish(self, t: float) -> None:
        """Close the integration window at ``t`` without changing the value."""
        self.update(t, self._value)

    @property
    def current(self) -> float:
        return self._value

    @property
    def average(self) -> float:
        return self._area / self._span if self._span > 0 else float("nan")


class Histogram:
    """Fixed-bin histogram over ``[low, high)`` with under/overflow bins."""

    def __init__(self, low: float, high: float, nbins: int = 20):
        if high <= low or nbins < 1:
            raise ValueError("invalid histogram bounds/bins")
        self.low, self.high, self.nbins = low, high, nbins
        self.counts = np.zeros(nbins + 2, dtype=np.int64)  # [under, ..., over]
        self._width = (high - low) / nbins

    def add(self, x: float) -> None:
        if x < self.low:
            self.counts[0] += 1
        elif x >= self.high:
            self.counts[-1] += 1
        else:
            self.counts[1 + int((x - self.low) / self._width)] += 1

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def bin_edges(self) -> np.ndarray:
        return np.linspace(self.low, self.high, self.nbins + 1)


def summarize(values: Sequence[float],
              percentiles: Sequence[float] = (50, 90, 99)) -> Dict[str, float]:
    """Dict of mean/std/min/max/pXX for a sample; empty-safe."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        out: Dict[str, float] = {"n": 0, "mean": float("nan"),
                                 "std": float("nan"),
                                 "min": float("nan"), "max": float("nan")}
        for p in percentiles:
            out[f"p{int(p)}"] = float("nan")
        return out
    out = {
        "n": int(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "max": float(arr.max()),
    }
    for p in percentiles:
        out[f"p{int(p)}"] = float(np.percentile(arr, p))
    return out
