"""repro.obs — the runtime observability subsystem.

A :class:`MetricsRegistry` of Counter/Gauge/Histogram instruments with
labeled children, virtual-clock :class:`Timer` spans, deterministic
snapshots, and JSON/prometheus exporters.  Every Metasystem owns one
(``meta.metrics``, alongside ``meta.tracer``); the metric name catalogue
is documented in ``docs/observability.md``.
"""

from .export import (
    build_snapshot,
    json_to_snapshot,
    render_report,
    snapshot_to_json,
    snapshot_to_prometheus,
)
from .registry import (
    Counter,
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
    Timer,
)

__all__ = [
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "build_snapshot",
    "snapshot_to_json",
    "json_to_snapshot",
    "snapshot_to_prometheus",
    "render_report",
]
