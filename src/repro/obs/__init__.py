"""repro.obs — the runtime observability subsystem.

A :class:`MetricsRegistry` of Counter/Gauge/Histogram instruments with
labeled children, virtual-clock :class:`Timer` spans, deterministic
snapshots, and JSON/prometheus exporters, plus causal span tracing: a
:class:`SpanTracer` of per-request :class:`Span` trees over the placement
protocol, with critical-path analysis and Chrome-trace export in
:mod:`repro.obs.trace_export`.  On top of both: windowed time-series
history (:mod:`repro.obs.timeseries`), declarative SLOs with error
budgets and burn-rate alerts (:mod:`repro.obs.slo`), and the unified
health report behind ``legion-sim slo`` (:mod:`repro.obs.report`).
Every Metasystem owns one of each
(``meta.metrics``, ``meta.spans``, alongside ``meta.tracer``); the metric
and span catalogues are documented in ``docs/observability.md``.
"""

from .export import (
    build_snapshot,
    json_to_snapshot,
    render_report,
    snapshot_to_json,
    snapshot_to_prometheus,
)
from .registry import (
    Counter,
    DEFAULT_SIZE_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
    Timer,
)
from .spans import (
    NULL_SPANS,
    NullSpanTracer,
    Span,
    SpanTracer,
    TraceContext,
)
from .trace_export import (
    aggregate_step_latencies,
    chrome_trace,
    chrome_trace_json,
    critical_path,
    render_critical_path_report,
    render_step_aggregate,
    render_step_table,
    render_tree,
    spans_to_jsonl,
    trace_summary,
    validate_chrome_trace,
)
from .timeseries import (
    MetricsSampler,
    Window,
    series_key,
    sparkline,
    windows_to_jsonl,
)
from .slo import (
    BurnAlert,
    SLOResult,
    SLOSpec,
    WindowVerdict,
    default_legion_slos,
    evaluate_slo,
    evaluate_slos,
    specs_from_dict,
    specs_to_dict,
)
from .report import (
    build_health_report,
    health_report_to_json,
    render_health_report,
)

__all__ = [
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "build_snapshot",
    "snapshot_to_json",
    "json_to_snapshot",
    "snapshot_to_prometheus",
    "render_report",
    "Span",
    "SpanTracer",
    "NullSpanTracer",
    "NULL_SPANS",
    "TraceContext",
    "chrome_trace",
    "chrome_trace_json",
    "critical_path",
    "render_critical_path_report",
    "render_step_table",
    "render_tree",
    "spans_to_jsonl",
    "trace_summary",
    "aggregate_step_latencies",
    "render_step_aggregate",
    "validate_chrome_trace",
    "MetricsSampler",
    "Window",
    "series_key",
    "sparkline",
    "windows_to_jsonl",
    "SLOSpec",
    "SLOResult",
    "WindowVerdict",
    "BurnAlert",
    "evaluate_slo",
    "evaluate_slos",
    "specs_from_dict",
    "specs_to_dict",
    "default_legion_slos",
    "build_health_report",
    "health_report_to_json",
    "render_health_report",
]
