"""Snapshot and export formats for the metrics registry.

Three renderings of one deterministic snapshot structure:

* :func:`build_snapshot` — the canonical JSON-safe dict (sorted names,
  sorted label keys, no NaN/Inf);
* :func:`snapshot_to_json` / :func:`json_to_snapshot` — a byte-stable
  round-trip (``json_to_snapshot(snapshot_to_json(s)) == s``, pinned by
  ``tests/test_obs.py``);
* :func:`snapshot_to_prometheus` — prometheus text exposition format
  (``name{label="v"} value`` plus ``_bucket``/``_sum``/``_count`` for
  histograms);
* :func:`render_report` — the human-readable table behind
  ``repro-cli metrics``.

Bucket upper bounds are serialized as strings (``"0.005"``, ``"+Inf"``)
so the JSON stays standard (no ``Infinity`` literals).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "build_snapshot",
    "snapshot_to_json",
    "json_to_snapshot",
    "snapshot_to_prometheus",
    "render_report",
]


def _finite(x: float) -> Optional[float]:
    """A float suitable for strict JSON; None for NaN/Inf/empty."""
    if x != x or x in (float("inf"), float("-inf")):
        return None
    return float(x)


def _bound_str(bound: float) -> str:
    return repr(float(bound))


def build_snapshot(registry) -> Dict[str, Any]:
    """The canonical snapshot dict for a :class:`MetricsRegistry`."""
    metrics: List[Dict[str, Any]] = []
    for name in registry.names():
        instrument = registry.get(name)
        series_out: List[Dict[str, Any]] = []
        for labels, leaf in instrument._series():
            entry: Dict[str, Any] = {"labels": labels}
            if instrument.kind == "histogram":
                cumulative = leaf.cumulative_counts()
                bounds = [_bound_str(b) for b in leaf.bounds] + ["+Inf"]
                entry.update({
                    "count": leaf.count,
                    "sum": _finite(leaf.sum) or 0.0,
                    "min": _finite(leaf.stats.minimum),
                    "max": _finite(leaf.stats.maximum),
                    "mean": _finite(leaf.stats.mean),
                    "buckets": [[b, c] for b, c in zip(bounds, cumulative)],
                    "exemplars": [
                        [bounds[idx], _finite(value) or 0.0, trace_id]
                        for idx, (value, trace_id)
                        in sorted(leaf.exemplars.items())
                    ],
                })
            else:
                entry["value"] = _finite(leaf.value) or 0.0
            series_out.append(entry)
        metrics.append({
            "name": name,
            "kind": instrument.kind,
            "help": instrument.help,
            "labelnames": list(instrument.labelnames),
            "series": series_out,
        })
    return {"metrics": metrics}


def snapshot_to_json(snapshot: Dict[str, Any],
                     indent: Optional[int] = None) -> str:
    return json.dumps(snapshot, sort_keys=True, indent=indent,
                      separators=(",", ": ") if indent else (",", ":"),
                      allow_nan=False)


def json_to_snapshot(text: str) -> Dict[str, Any]:
    return json.loads(text)


def _label_str(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + body + "}"


def _merge_label_str(labels: Dict[str, str], extra: Dict[str, str]) -> str:
    merged = dict(labels)
    merged.update(extra)
    return _label_str(merged)


def snapshot_to_prometheus(snapshot: Dict[str, Any]) -> str:
    """Prometheus text exposition of a snapshot."""
    lines: List[str] = []
    for metric in snapshot["metrics"]:
        name = metric["name"]
        if metric["help"]:
            lines.append(f"# HELP {name} {metric['help']}")
        lines.append(f"# TYPE {name} {metric['kind']}")
        for series in metric["series"]:
            labels = series["labels"]
            if metric["kind"] == "histogram":
                for bound, cum in series["buckets"]:
                    lines.append(
                        f"{name}_bucket"
                        f"{_merge_label_str(labels, {'le': bound})} {cum}")
                lines.append(
                    f"{name}_sum{_label_str(labels)} {series['sum']}")
                lines.append(
                    f"{name}_count{_label_str(labels)} {series['count']}")
            else:
                lines.append(
                    f"{name}{_label_str(labels)} {series['value']}")
    return "\n".join(lines) + ("\n" if lines else "")


def _series_quantile(series: Dict[str, Any], q: float) -> Optional[float]:
    """Interpolated quantile recomputed from a snapshot's bucket counts."""
    count = series["count"]
    if not count:
        return None
    rank = q * count
    prev_cum = 0
    prev_bound = series["min"]
    for bound, cum in series["buckets"]:
        upper = series["max"] if bound == "+Inf" else float(bound)
        if rank <= cum:
            width = cum - prev_cum
            frac = (rank - prev_cum) / width if width else 1.0
            value = prev_bound + (upper - prev_bound) * frac
            return min(max(value, series["min"]), series["max"])
        if cum > prev_cum:
            prev_bound = upper
        prev_cum = cum
    return series["max"]


def _fmt(x: Optional[float]) -> str:
    if x is None:
        return "-"
    if x == int(x) and abs(x) < 1e15:
        return str(int(x))
    return f"{x:.6g}"


def _max_exemplar(series: Dict[str, Any]) -> str:
    """Trace id of the largest exemplared observation in a series."""
    exemplars = series.get("exemplars") or []
    if not exemplars:
        return "-"
    return max(exemplars, key=lambda e: e[1])[2]


def render_report(snapshot: Dict[str, Any], title: str = "metrics",
                  quantiles: Sequence[float] = (0.5, 0.9)) -> str:
    """Human-readable report: one line per series, the requested
    quantiles for histograms (interpolated from cumulative buckets),
    and the trace exemplar nearest the max observation."""
    qcols = "".join(f" {'p' + format(100.0 * q, 'g'):>10s}"
                    for q in quantiles)
    lines = [f"== {title} ==",
             f"{'metric':44s} {'value/count':>12s} "
             f"{'mean':>10s}{qcols} {'max':>10s} "
             f"{'trace':>10s}"]
    for metric in snapshot["metrics"]:
        for series in metric["series"]:
            label = metric["name"] + _label_str(series["labels"])
            if metric["kind"] == "histogram":
                qvals = "".join(
                    f" {_fmt(_series_quantile(series, q)):>10s}"
                    for q in quantiles)
                lines.append(
                    f"{label:44s} {series['count']:>12d} "
                    f"{_fmt(series['mean']):>10s}"
                    f"{qvals} "
                    f"{_fmt(series['max']):>10s} "
                    f"{_max_exemplar(series):>10s}")
            else:
                dashes = "".join(f" {'-':>10s}" for _ in quantiles)
                lines.append(
                    f"{label:44s} {_fmt(series['value']):>12s} "
                    f"{'-':>10s}{dashes} {'-':>10s} "
                    f"{'-':>10s}")
    return "\n".join(lines)
