"""Causal span tracing: per-request timelines over the placement protocol.

The flat :class:`~repro.sim.tracing.Tracer` answers "what happened";
spans answer "what happened *to this request*, and what dominated its
latency".  A :class:`SpanTracer` produces a tree of :class:`Span`\\ s per
trace — one trace per placement request (rooted by
:meth:`~repro.scheduler.base.Scheduler.run`) or per migration — with
every protocol step a named child span.  Sibling subtrees make master
retries and variant-schedule fallbacks directly visible.

Design points:

* **virtual-clock timestamps** — start/end come from the simulator's
  clock, so span durations are exactly the latencies the experiments
  measure;
* **deterministic IDs** — trace and span IDs are drawn from sequence
  counters, never wall clocks or :mod:`uuid`, so two identical seeded
  runs export byte-identical traces (pinned by
  ``tests/test_determinism.py``);
* **explicit context propagation** — a :class:`TraceContext` names the
  current (trace, span); it rides outgoing messages
  (:class:`~repro.net.transport.Call` carries one) so callee-side spans
  parent correctly even when the transport defers execution, mirroring
  W3C trace-context propagation;
* **single-threaded stack** — protocol code runs on one Python stack
  (see ``docs/architecture.md``), so the active context is a simple
  stack, not thread-local storage;
* **quiet by default** — :meth:`SpanTracer.span_if_active` records only
  when a trace is already open.  Background activity (periodic host
  reassessment, daemon sweeps) therefore produces no traces; only the
  explicit roots (placement, migration) do.

Analysis and export (trees, critical paths, Chrome trace-event JSON)
live in :mod:`repro.obs.trace_export`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = [
    "TraceContext",
    "Span",
    "SpanTracer",
    "NullSpanTracer",
    "NULL_SPANS",
]


@dataclass(frozen=True)
class TraceContext:
    """The (trace, span) coordinates new child spans attach under.

    This is the propagation token: the co-allocator stamps it onto each
    outgoing :class:`~repro.net.transport.Call` so the host-side
    reservation span parents under the caller's reserve span.
    """

    trace_id: str
    span_id: str


@dataclass
class Span:
    """One timed, attributed node in a trace tree."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start: float
    end: Optional[float] = None
    attributes: Dict[str, Any] = field(default_factory=dict)
    #: "ok" | "error" | "unset" (still open)
    status: str = "unset"
    #: bridged flat-tracer records: (time, category, event, details)
    events: List[tuple] = field(default_factory=list)
    #: global creation sequence number — the deterministic export order
    seq: int = 0

    @property
    def duration(self) -> float:
        """Virtual seconds from start to end (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def context(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id)

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def set_status(self, status: str) -> None:
        self.status = status

    def add_event(self, time: float, category: str, event: str,
                  details: Optional[Dict[str, Any]] = None) -> None:
        self.events.append((time, category, event, dict(details or {})))

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<Span {self.name!r} {self.trace_id}/{self.span_id} "
                f"parent={self.parent_id} status={self.status}>")


class SpanTracer:
    """Produces trees of :class:`Span`\\ s with deterministic IDs.

    Spans are appended to :attr:`spans` in creation order (the
    deterministic document order every exporter uses).  The active
    context is a stack; :meth:`activate` pushes a foreign
    :class:`TraceContext` so work triggered by a carried message
    parents under its sender.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or (lambda: 0.0)
        self.spans: List[Span] = []
        self._stack: List[TraceContext] = []
        self._open: Dict[str, Span] = {}
        self._trace_seq = 0
        self._span_seq = 0

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the virtual clock after construction."""
        self._clock = clock

    @property
    def enabled(self) -> bool:
        return True

    # -- context ------------------------------------------------------------
    def current_context(self) -> Optional[TraceContext]:
        """The context children created right now would attach under."""
        return self._stack[-1] if self._stack else None

    @property
    def current_trace_id(self) -> Optional[str]:
        """The open trace's ID, or None — the metrics exemplar hook."""
        return self._stack[-1].trace_id if self._stack else None

    @contextmanager
    def activate(self, context: Optional[TraceContext]) -> Iterator[None]:
        """Parent subsequent spans under a carried context.

        With ``context=None`` this is a no-op, so call sites can pass an
        optional carried context straight through.
        """
        if context is None:
            yield
            return
        self._stack.append(context)
        try:
            yield
        finally:
            for i in range(len(self._stack) - 1, -1, -1):
                if self._stack[i] == context:
                    del self._stack[i]
                    break

    # -- span lifecycle -------------------------------------------------------
    def start_span(self, name: str,
                   parent: Optional[TraceContext] = None,
                   **attributes: Any) -> Span:
        """Open a span (child of ``parent``/the current context, or a new
        trace root) and make it the current context."""
        if parent is None:
            parent = self.current_context()
        if parent is None:
            self._trace_seq += 1
            trace_id = f"t{self._trace_seq:06d}"
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        self._span_seq += 1
        span = Span(trace_id=trace_id,
                    span_id=f"s{self._span_seq:06d}",
                    parent_id=parent_id, name=name,
                    start=self._clock(),
                    attributes=dict(attributes),
                    seq=self._span_seq)
        self.spans.append(span)
        self._open[span.span_id] = span
        self._stack.append(span.context)
        return span

    def end_span(self, span: Span, status: Optional[str] = None) -> None:
        """Close a span and pop it (and anything left above it) off the
        context stack."""
        span.end = self._clock()
        if status is not None:
            span.status = status
        elif span.status == "unset":
            span.status = "ok"
        self._open.pop(span.span_id, None)
        ctx = span.context
        if ctx in self._stack:
            while self._stack and self._stack[-1] != ctx:
                self._stack.pop()
            if self._stack:
                self._stack.pop()

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Context manager: a child of the current context, or — with no
        context open — the root of a new trace.  An escaping exception
        marks the span (and its open ancestors' statuses stay theirs)
        as ``error`` with the exception recorded."""
        span = self.start_span(name, **attributes)
        try:
            yield span
        except BaseException as exc:
            span.attributes.setdefault(
                "error", f"{type(exc).__name__}: {exc}")
            self.end_span(span, status="error")
            raise
        self.end_span(span)

    @contextmanager
    def span_if_active(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Like :meth:`span`, but records nothing unless a trace is open.

        Every instrumented subsystem below the trace roots uses this, so
        untraced activity (unit tests poking a Host directly, periodic
        reassessment) does not spawn junk traces.
        """
        if not self._stack:
            yield _NULL_SPAN
            return
        with self.span(name, **attributes) as span:
            yield span

    def record_span(self, name: str, start: float, end: float,
                    status: str = "ok", **attributes: Any) -> Span:
        """Record a completed, detached root span over ``[start, end]``.

        Unlike :meth:`start_span` this never touches the context stack, so
        daemons (e.g. the chaos injector annotating a fault window from a
        scheduled callback) can emit spans without re-parenting whatever
        request trace happens to be open.
        """
        self._trace_seq += 1
        self._span_seq += 1
        span = Span(trace_id=f"t{self._trace_seq:06d}",
                    span_id=f"s{self._span_seq:06d}",
                    parent_id=None, name=name,
                    start=float(start), end=float(end),
                    attributes=dict(attributes), status=status,
                    seq=self._span_seq)
        self.spans.append(span)
        return span

    # -- flat-tracer bridge ---------------------------------------------------
    def event(self, category: str, event: str, **details: Any) -> None:
        """Attach a flat trace record to the innermost open span.

        This is the legacy :class:`~repro.sim.tracing.Tracer` bridge:
        ``Tracer.emit`` forwards here (via ``span_sink``), so E3/E7/E12
        benchmark traces gain causal context without call-site rewrites.
        Dropped silently when no span is open.
        """
        ctx = self.current_context()
        if ctx is None:
            return
        span = self._open.get(ctx.span_id)
        if span is None:
            return
        span.add_event(self._clock(), category, event, details)

    # -- introspection --------------------------------------------------------
    def traces(self) -> Dict[str, List[Span]]:
        """Spans grouped by trace, both in first-seen order."""
        out: Dict[str, List[Span]] = {}
        for span in self.spans:
            out.setdefault(span.trace_id, []).append(span)
        return out

    def trace_roots(self) -> List[Span]:
        return [s for s in self.spans if s.parent_id is None]

    def find(self, name: str) -> List[Span]:
        """All spans with the given name, in creation order."""
        return [s for s in self.spans if s.name == name]

    def clear(self) -> None:
        self.spans.clear()
        self._open.clear()
        self._stack.clear()

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<SpanTracer spans={len(self.spans)} "
                f"traces={self._trace_seq} open={len(self._open)}>")


#: shared inert span handed out by null/no-op paths; mutating it is a
#: silent no-op by construction (one shared instance, never exported)
class _NullSpan(Span):
    def __init__(self) -> None:
        super().__init__(trace_id="", span_id="", parent_id=None,
                         name="null", start=0.0)

    def set_attribute(self, key: str, value: Any) -> None:
        return

    def set_status(self, status: str) -> None:
        return

    def add_event(self, time: float, category: str, event: str,
                  details: Optional[Dict[str, Any]] = None) -> None:
        return


_NULL_SPAN = _NullSpan()


class NullSpanTracer(SpanTracer):
    """Records nothing — the span analogue of ``NullTracer`` /
    ``NullMetricsRegistry`` for hot soak/benchmark loops
    (``Metasystem(tracing="flat")`` or ``tracing="off"``)."""

    def __init__(self) -> None:
        super().__init__()

    @property
    def enabled(self) -> bool:
        return False

    @contextmanager
    def _null_cm(self) -> Iterator[Span]:
        yield _NULL_SPAN

    def start_span(self, name: str,
                   parent: Optional[TraceContext] = None,
                   **attributes: Any) -> Span:
        return _NULL_SPAN

    def end_span(self, span: Span, status: Optional[str] = None) -> None:
        return

    def record_span(self, name: str, start: float, end: float,
                    status: str = "ok", **attributes: Any) -> Span:
        return _NULL_SPAN

    def span(self, name: str, **attributes: Any):
        return self._null_cm()

    def span_if_active(self, name: str, **attributes: Any):
        return self._null_cm()

    def activate(self, context: Optional[TraceContext]):
        return self._null_cm()

    def event(self, category: str, event: str, **details: Any) -> None:
        return


#: shared do-nothing span tracer
NULL_SPANS = NullSpanTracer()
