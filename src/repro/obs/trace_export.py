"""Analysis and export of causal span traces.

Consumes the :class:`~repro.obs.spans.Span` list a
:class:`~repro.obs.spans.SpanTracer` accumulated and renders it four ways:

* :func:`render_tree` — ASCII trace trees for the terminal;
* :func:`trace_summary` / :func:`render_step_table` — per-trace and
  per-step latency breakdowns (inclusive and *self* time, so the
  dominant protocol step is visible even when spans nest);
* :func:`critical_path` / :func:`render_critical_path_report` — the
  root-to-leaf chain that determined each trace's end time, and which
  step on it dominated;
* :func:`chrome_trace` / :func:`chrome_trace_json` — Chrome trace-event
  JSON loadable in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``, with bridged flat-tracer records as instant
  events; :func:`spans_to_jsonl` — a line-per-span dump for ad-hoc
  processing.

All output is deterministic: spans arrive in creation order (their IDs
are sequence counters), timestamps are virtual-clock values, and every
JSON serialization sorts its keys — two identical seeded runs export
byte-identical traces (pinned by ``tests/test_determinism.py``).

Chrome trace-event mapping: one *process* per trace (pid = the trace
sequence number) and a single *thread* per trace (tid 1).  The protocol
is synchronous on one simulated stack, so nested ``ph="X"`` complete
events on one thread row render exactly as the span tree.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from .spans import Span

__all__ = [
    "children_of",
    "self_time",
    "critical_path",
    "dominant_step",
    "trace_summary",
    "aggregate_step_latencies",
    "render_step_aggregate",
    "render_tree",
    "render_step_table",
    "render_critical_path_report",
    "chrome_trace",
    "chrome_trace_json",
    "spans_to_jsonl",
    "validate_chrome_trace",
]


# ---------------------------------------------------------------------------
# tree structure
# ---------------------------------------------------------------------------
def children_of(spans: Sequence[Span]) -> Dict[Optional[str], List[Span]]:
    """Parent span id -> children (in creation order); key None = roots."""
    out: Dict[Optional[str], List[Span]] = {}
    for span in spans:
        out.setdefault(span.parent_id, []).append(span)
    return out


def _end(span: Span) -> float:
    return span.start if span.end is None else span.end


def self_time(span: Span, children: Dict[Optional[str], List[Span]]
              ) -> float:
    """Duration minus time spent in child spans (clamped at 0)."""
    spent = sum(c.duration for c in children.get(span.span_id, ()))
    return max(0.0, span.duration - spent)


def _group_by_trace(spans: Sequence[Span]) -> Dict[str, List[Span]]:
    out: Dict[str, List[Span]] = {}
    for span in spans:
        out.setdefault(span.trace_id, []).append(span)
    return out


# ---------------------------------------------------------------------------
# critical path
# ---------------------------------------------------------------------------
def critical_path(trace_spans: Sequence[Span]) -> List[Span]:
    """The root-to-leaf chain that determined this trace's end time.

    From the root, repeatedly descend into the child whose end time is
    latest (ties go to the later-created sibling) — the subtree that the
    trace was waiting on when it finished.
    """
    if not trace_spans:
        return []
    children = children_of(trace_spans)
    roots = children.get(None, [])
    if not roots:
        return []
    path = [roots[0]]
    while True:
        kids = children.get(path[-1].span_id, [])
        if not kids:
            return path
        path.append(max(kids, key=lambda s: (_end(s), s.seq)))


def dominant_step(trace_spans: Sequence[Span]) -> Optional[Span]:
    """The span on the critical path with the most *self* time — the
    protocol step that dominated this request's latency."""
    path = critical_path(trace_spans)
    if not path:
        return None
    children = children_of(trace_spans)
    return max(path, key=lambda s: (self_time(s, children), -s.seq))


# ---------------------------------------------------------------------------
# summaries
# ---------------------------------------------------------------------------
def trace_summary(spans: Sequence[Span]) -> List[Dict[str, Any]]:
    """One deterministic record per trace (in first-seen order)."""
    out: List[Dict[str, Any]] = []
    for trace_id, trace_spans in _group_by_trace(spans).items():
        children = children_of(trace_spans)
        roots = children.get(None, [])
        root = roots[0] if roots else trace_spans[0]
        dom = dominant_step(trace_spans)
        out.append({
            "trace_id": trace_id,
            "root": root.name,
            "status": root.status,
            "start": root.start,
            "duration": root.duration,
            "spans": len(trace_spans),
            "dominant_step": dom.name if dom is not None else "",
            "dominant_self_time": (self_time(dom, children)
                                   if dom is not None else 0.0),
        })
    return out


def _sorted_quantile(values: Sequence[float], q: float) -> float:
    """Interpolated q-quantile of a pre-sorted sample list (0.0 empty)."""
    if not values:
        return 0.0
    if len(values) == 1:
        return values[0]
    rank = q * (len(values) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(values) - 1)
    frac = rank - lo
    return values[lo] + (values[hi] - values[lo]) * frac


def aggregate_step_latencies(spans: Sequence[Span],
                             p: float = 0.95) -> List[Dict[str, Any]]:
    """Cross-trace per-step latency aggregation.

    One record per span name across *all* traces — count, errors,
    mean/p-quantile/max duration, and total self time — sorted by name
    so the output is deterministic.  This is the step-timing view the
    SLO health report and ``legion-sim trace steps`` share, so latency
    targets and trace tooling agree on what each protocol step costs.
    """
    children = children_of(spans)
    rows: Dict[str, Dict[str, Any]] = {}
    durations: Dict[str, List[float]] = {}
    for span in spans:
        row = rows.setdefault(span.name, {
            "step": span.name, "count": 0, "errors": 0,
            "total": 0.0, "self": 0.0, "max": 0.0})
        row["count"] += 1
        if span.status == "error":
            row["errors"] += 1
        row["total"] += span.duration
        row["self"] += self_time(span, children)
        row["max"] = max(row["max"], span.duration)
        durations.setdefault(span.name, []).append(span.duration)
    out: List[Dict[str, Any]] = []
    for name in sorted(rows):
        row = rows[name]
        sample = sorted(durations[name])
        row["mean"] = row["total"] / row["count"] if row["count"] else 0.0
        row["quantile"] = p
        row["p"] = _sorted_quantile(sample, p)
        out.append(row)
    return out


def render_step_aggregate(rows: Sequence[Dict[str, Any]],
                          title: str = "step latency across traces"
                          ) -> str:
    """Terminal table for :func:`aggregate_step_latencies` output."""
    q_label = (f"p{rows[0]['quantile'] * 100:g}_s" if rows else "p95_s")
    lines = [f"== {title} ==",
             f"{'step':26s} {'count':>6s} {'errors':>6s} "
             f"{'mean_s':>12s} {q_label:>12s} {'max_s':>12s} "
             f"{'self_s':>12s}"]
    for row in rows:
        lines.append(
            f"{row['step']:26s} {int(row['count']):>6d} "
            f"{int(row['errors']):>6d} {row['mean']:>12.6f} "
            f"{row['p']:>12.6f} {row['max']:>12.6f} "
            f"{row['self']:>12.6f}")
    return "\n".join(lines)


def render_tree(spans: Sequence[Span],
                trace_id: Optional[str] = None) -> str:
    """ASCII tree rendering of one trace (or all of them)."""
    lines: List[str] = []
    for tid, trace_spans in _group_by_trace(spans).items():
        if trace_id is not None and tid != trace_id:
            continue
        children = children_of(trace_spans)

        def walk(span: Span, depth: int) -> None:
            mark = " !" if span.status == "error" else ""
            attrs = " ".join(f"{k}={v}"
                             for k, v in sorted(span.attributes.items()))
            lines.append(
                f"{'  ' * depth}{span.name}  "
                f"[{span.start:.6f} +{span.duration:.6f}s]"
                f"{mark}{('  ' + attrs) if attrs else ''}")
            for tm, category, event, details in span.events:
                kv = " ".join(f"{k}={v}" for k, v in details.items())
                lines.append(f"{'  ' * (depth + 1)}* {category}/{event} "
                             f"@{tm:.6f}{(' ' + kv) if kv else ''}")
            for child in children.get(span.span_id, []):
                walk(child, depth + 1)

        lines.append(f"trace {tid}")
        for root in children.get(None, []):
            walk(root, 1)
    return "\n".join(lines) if lines else "(no traces recorded)"


def render_step_table(spans: Sequence[Span],
                      title: str = "span latency by step") -> str:
    """Per-span-name latency aggregation across every trace."""
    children = children_of(spans)
    agg: Dict[str, Dict[str, float]] = {}
    for span in spans:
        row = agg.setdefault(span.name, {
            "count": 0, "errors": 0, "total": 0.0, "self": 0.0,
            "max": 0.0})
        row["count"] += 1
        if span.status == "error":
            row["errors"] += 1
        row["total"] += span.duration
        row["self"] += self_time(span, children)
        row["max"] = max(row["max"], span.duration)
    lines = [f"== {title} ==",
             f"{'span':26s} {'count':>6s} {'errors':>6s} "
             f"{'total_s':>12s} {'self_s':>12s} {'mean_s':>12s} "
             f"{'max_s':>12s}"]
    for name in sorted(agg):
        row = agg[name]
        mean = row["total"] / row["count"] if row["count"] else 0.0
        lines.append(f"{name:26s} {int(row['count']):>6d} "
                     f"{int(row['errors']):>6d} {row['total']:>12.6f} "
                     f"{row['self']:>12.6f} {mean:>12.6f} "
                     f"{row['max']:>12.6f}")
    return "\n".join(lines)


def render_critical_path_report(spans: Sequence[Span],
                                title: str = "critical paths") -> str:
    """Per-trace critical path and the step that dominated it."""
    lines = [f"== {title} ==",
             f"{'trace':10s} {'root':12s} {'status':7s} "
             f"{'duration_s':>12s} {'dominant step':26s} "
             f"{'self_s':>12s} {'share':>7s}"]
    dominants: Dict[str, int] = {}
    for row in trace_summary(spans):
        share = (row["dominant_self_time"] / row["duration"]
                 if row["duration"] > 0 else 0.0)
        dominants[row["dominant_step"]] = (
            dominants.get(row["dominant_step"], 0) + 1)
        lines.append(
            f"{row['trace_id']:10s} {row['root']:12s} "
            f"{row['status']:7s} {row['duration']:>12.6f} "
            f"{row['dominant_step']:26s} "
            f"{row['dominant_self_time']:>12.6f} {share:>6.1%}")
    if dominants:
        ranked = sorted(dominants.items(), key=lambda kv: (-kv[1], kv[0]))
        lines.append("")
        lines.append("dominant step overall: " + ", ".join(
            f"{name or '(none)'} x{n}" for name, n in ranked))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# exports
# ---------------------------------------------------------------------------
def _us(t: float) -> float:
    """Virtual seconds -> trace-event microseconds."""
    return t * 1e6


def _assign_lanes(trace_spans: Sequence[Span]) -> Dict[str, int]:
    """span_id -> thread lane, such that spans sharing a lane nest
    properly in time (complete events on one Chrome thread row must).

    Parallel siblings (e.g. a co-allocation batch's rpc spans) overlap
    without nesting, so they spread across lanes greedily; deterministic
    because the sweep order is (start, -end, seq).
    """
    order = sorted(trace_spans,
                   key=lambda s: (s.start, -(_end(s)), s.seq))
    lanes: List[List[Span]] = []          # per-lane stack of open spans
    assignment: Dict[str, int] = {}
    for span in order:
        placed = False
        for lane_no, stack in enumerate(lanes):
            while stack and _end(stack[-1]) <= span.start:
                stack.pop()
            if not stack or _end(span) <= _end(stack[-1]):
                stack.append(span)
                assignment[span.span_id] = lane_no + 1
                placed = True
                break
        if not placed:
            lanes.append([span])
            assignment[span.span_id] = len(lanes)
    return assignment


def chrome_trace(spans: Sequence[Span]) -> Dict[str, Any]:
    """The Chrome trace-event dict (Perfetto / chrome://tracing).

    One process per trace; nested complete events reproduce the span
    tree, parallel siblings fan out across thread lanes, and bridged
    flat-tracer records become instant events.
    """
    events: List[Dict[str, Any]] = []
    for trace_index, (trace_id, trace_spans) in enumerate(
            _group_by_trace(spans).items(), start=1):
        try:
            pid = int(trace_id.lstrip("t"))
        except ValueError:
            pid = trace_index
        roots = [s for s in trace_spans if s.parent_id is None]
        label = roots[0].name if roots else trace_spans[0].name
        events.append({
            "ph": "M", "pid": pid, "tid": 1, "name": "process_name",
            "args": {"name": f"{label} {trace_id}"},
        })
        lanes = _assign_lanes(trace_spans)
        for span in trace_spans:
            tid = lanes.get(span.span_id, 1)
            args = {k: v for k, v in sorted(span.attributes.items())}
            args.update({"span_id": span.span_id,
                         "parent_id": span.parent_id or "",
                         "status": span.status})
            events.append({
                "ph": "X", "pid": pid, "tid": tid,
                "name": span.name, "cat": label,
                "ts": _us(span.start), "dur": _us(span.duration),
                "args": args,
            })
            for tm, category, event, details in span.events:
                events.append({
                    "ph": "i", "pid": pid, "tid": tid, "s": "t",
                    "name": f"{category}/{event}", "cat": category,
                    "ts": _us(tm),
                    "args": dict(sorted(details.items())),
                })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(spans: Sequence[Span],
                      indent: Optional[int] = None) -> str:
    """Byte-stable Chrome trace JSON (sorted keys, no NaN)."""
    return json.dumps(chrome_trace(spans), sort_keys=True, indent=indent,
                      separators=(",", ": ") if indent else (",", ":"),
                      allow_nan=False, default=str)


def spans_to_jsonl(spans: Sequence[Span]) -> str:
    """One JSON object per span per line, in creation order."""
    lines = []
    for span in spans:
        lines.append(json.dumps({
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            "name": span.name,
            "start": span.start,
            "end": span.end,
            "status": span.status,
            "attributes": span.attributes,
            "events": [
                {"time": tm, "category": category, "event": event,
                 "details": details}
                for tm, category, event, details in span.events],
        }, sort_keys=True, separators=(",", ":"), allow_nan=False,
            default=str))
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# validation (the CI smoke check)
# ---------------------------------------------------------------------------
_REQUIRED_BY_PHASE = {
    "X": ("name", "pid", "tid", "ts", "dur"),
    "i": ("name", "pid", "tid", "ts"),
    "M": ("name", "pid"),
}


def validate_chrome_trace(obj: Any) -> List[str]:
    """Problems that would make a trace-event file unloadable; [] = valid."""
    problems: List[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = event.get("ph")
        if not isinstance(ph, str) or not ph:
            problems.append(f"event {i}: missing ph")
            continue
        for key in _REQUIRED_BY_PHASE.get(ph, ("name", "pid", "tid", "ts")):
            if key not in event:
                problems.append(f"event {i} (ph={ph}): missing {key}")
        for key in ("ts", "dur"):
            if key in event and not isinstance(event[key], (int, float)):
                problems.append(f"event {i}: {key} must be a number")
        if "dur" in event and isinstance(event["dur"], (int, float)) \
                and event["dur"] < 0:
            problems.append(f"event {i}: negative dur")
    return problems
