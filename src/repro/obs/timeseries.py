"""Time-series telemetry: windowed metric history over the registry.

The registry (:mod:`repro.obs.registry`) answers "what happened in
total"; this module answers "how did the system behave *over time*".  A
:class:`MetricsSampler` is a kernel daemon that closes a fixed
virtual-time **window** every ``window`` seconds: it snapshots every
registry series, diffs it against the previous snapshot, and appends one
:class:`Window` row to a bounded ring.  The Network Weather Service
(PAPERS.md) is exactly such a time-series-of-measurements substrate for
grid resources; GridSim ships time-resolved statistics for the same
reason — aggregate totals cannot show a burst, a stall, or a recovery.

Per-series window semantics:

* **counter** — the delta accumulated inside the window plus the
  running total and a per-second ``rate`` (delta / window length);
* **gauge** — the instantaneous reading at window close (gauge-last);
* **histogram** — the *non-cumulative* per-bucket count deltas, the
  windowed observation count and sum, and the trace IDs of exemplars
  that first appeared (or moved) during the window — the hook the SLO
  engine uses to link a breached window to the causal trace that
  breached it.

Design points:

* **deterministic** — window boundaries are virtual-time multiples of
  the window length, rows iterate series in sorted key order, and the
  JSONL export sorts keys, so two identical seeded runs produce
  byte-identical histories (pinned by ``tests/test_timeseries.py``);
* **bounded** — the ring keeps the last ``max_windows`` rows and counts
  what it dropped, so soak runs cannot grow without limit;
* **opt-in** — nothing samples unless a sampler is started, so
  sampler-off runs schedule no extra kernel events and existing
  benchmark ledgers stay byte-identical.

The ASCII sparkline renderer (:func:`sparkline`) turns any per-window
numeric column into a one-line shape for terminal reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Window",
    "MetricsSampler",
    "series_key",
    "sparkline",
    "windows_to_jsonl",
]

#: ascii ramp used by :func:`sparkline` (space = zero / no data)
SPARK_LEVELS = " .:-=+*#%@"


def series_key(name: str, labels: Dict[str, str]) -> str:
    """Canonical series key: ``name{k="v",...}`` with sorted label keys
    (prometheus selector syntax, and the key format of
    :attr:`Window.series`)."""
    if not labels:
        return name
    body = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return name + "{" + body + "}"


@dataclass
class Window:
    """One closed sampling window: per-series deltas over [start, end)."""

    index: int
    start: float
    end: float
    #: series key -> row dict (see module docstring for per-kind shapes)
    series: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def length(self) -> float:
        return self.end - self.start

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        return self.series.get(key)

    def matching(self, name: str,
                 labels: Optional[Dict[str, str]] = None
                 ) -> List[Dict[str, Any]]:
        """Rows for every series of metric ``name`` whose labels include
        ``labels`` (subset match; None/{} matches all series of the
        metric), in sorted key order."""
        out = []
        for key in sorted(self.series):
            row = self.series[key]
            if row["name"] != name:
                continue
            if labels:
                row_labels = row["labels"]
                if any(row_labels.get(k) != str(v)
                       for k, v in labels.items()):
                    continue
            out.append(row)
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "start": self.start,
            "end": self.end,
            "series": {key: dict(row) for key, row in
                       sorted(self.series.items())},
        }


class MetricsSampler:
    """Kernel daemon snapshotting registry deltas on a fixed window.

    ``start()`` schedules a tick every ``window`` virtual seconds; each
    tick closes the window ending at that boundary.  ``flush()`` closes
    the current partial window (end = now) — call it once at the end of
    a run so the tail of the history is not lost.  The ring keeps the
    last ``max_windows`` rows; older rows are dropped and counted.
    """

    def __init__(self, sim: Any, registry: Any, window: float = 30.0,
                 max_windows: int = 256):
        if window <= 0:
            raise ValueError("sampler window must be positive")
        if max_windows < 1:
            raise ValueError("max_windows must be at least 1")
        self.sim = sim
        self.registry = registry
        self.window = float(window)
        self.max_windows = int(max_windows)
        self.windows: List[Window] = []
        self.dropped = 0
        self.samples_taken = 0
        self._running = False
        self._next_index = 0
        self._last_close = 0.0
        #: (name, label_tuple) -> previous raw reading
        self._prev: Dict[Tuple[str, Tuple[str, ...]], Any] = {}

    # -- raw capture --------------------------------------------------------
    def _capture(self) -> Dict[Tuple[str, Tuple[str, ...]], Any]:
        """Raw per-series state: enough to diff, cheap to hold."""
        state: Dict[Tuple[str, Tuple[str, ...]], Any] = {}
        for name in self.registry.names():
            instrument = self.registry.get(name)
            if instrument is None:
                continue
            for labels, leaf in instrument._series():
                key = (name, tuple(f"{k}={v}"
                                   for k, v in sorted(labels.items())))
                if instrument.kind == "counter":
                    state[key] = ("counter", labels, float(leaf.value))
                elif instrument.kind == "gauge":
                    state[key] = ("gauge", labels, float(leaf.value))
                elif instrument.kind == "histogram":
                    state[key] = ("histogram", labels,
                                  list(leaf._counts),
                                  leaf.count,
                                  float(leaf.sum),
                                  tuple(leaf.bounds),
                                  dict(leaf.exemplars))
        return state

    @staticmethod
    def _bound_strs(bounds: Sequence[float]) -> List[str]:
        return [repr(float(b)) for b in bounds] + ["+Inf"]

    def _diff_row(self, key: Tuple[str, Tuple[str, ...]], cur: Any,
                  prev: Any) -> Dict[str, Any]:
        name = key[0]
        kind = cur[0]
        labels = {k: str(v) for k, v in cur[1].items()}
        row: Dict[str, Any] = {"name": name, "kind": kind,
                               "labels": labels}
        length = max(self.window, 1e-12)
        if kind == "counter":
            total = cur[2]
            before = prev[2] if prev is not None else 0.0
            delta = max(0.0, total - before)
            row.update({"delta": delta, "total": total,
                        "rate": delta / length})
        elif kind == "gauge":
            row.update({"value": cur[2]})
        else:  # histogram
            counts, count, total_sum, bounds, exemplars = cur[2:]
            if prev is not None:
                prev_counts, prev_count, prev_sum = prev[2], prev[3], prev[4]
                prev_exemplars = prev[6]
            else:
                prev_counts = [0] * len(counts)
                prev_count, prev_sum = 0, 0.0
                prev_exemplars = {}
            deltas = [max(0, a - b)
                      for a, b in zip(counts, prev_counts)]
            bound_strs = self._bound_strs(bounds)
            fresh = sorted(
                trace_id
                for idx, (value, trace_id) in exemplars.items()
                if prev_exemplars.get(idx) != (value, trace_id)
                and trace_id)
            row.update({
                "count": max(0, count - prev_count),
                "sum": max(0.0, total_sum - prev_sum),
                "buckets": [[b, d] for b, d in zip(bound_strs, deltas)],
                "exemplars": fresh,
            })
        return row

    # -- window lifecycle ---------------------------------------------------
    def _close_window(self, end: float) -> Optional[Window]:
        """Diff the registry against the previous close and append a row."""
        if end <= self._last_close:
            return None
        state = self._capture()
        window = Window(index=self._next_index,
                        start=self._last_close, end=end)
        for key in sorted(state):
            cur = state[key]
            prev = self._prev.get(key)
            row = self._diff_row(key, cur, prev)
            window.series[series_key(key[0], row["labels"])] = row
        self._prev = state
        self._last_close = end
        self._next_index += 1
        self.samples_taken += 1
        self.windows.append(window)
        if len(self.windows) > self.max_windows:
            overflow = len(self.windows) - self.max_windows
            del self.windows[:overflow]
            self.dropped += overflow
        return window

    def start(self) -> "MetricsSampler":
        """Begin periodic window closes on the simulator."""
        if self._running:
            return self
        self._running = True
        self._last_close = self.sim.now
        self._prev = self._capture()

        def tick():
            if not self._running:
                return
            self._close_window(self.sim.now)
            self.sim.schedule(self.window, tick)

        self.sim.schedule(self.window, tick)
        return self

    def stop(self) -> None:
        self._running = False

    def flush(self) -> Optional[Window]:
        """Close the current partial window at the present virtual time
        (no-op when the clock sits exactly on the last boundary)."""
        return self._close_window(self.sim.now)

    # -- introspection ------------------------------------------------------
    def __len__(self) -> int:
        return len(self.windows)

    def column(self, name: str, field_name: str = "rate",
               labels: Optional[Dict[str, str]] = None,
               reducer: Callable[[Sequence[float]], float] = sum
               ) -> List[float]:
        """One numeric value per retained window for metric ``name``:
        the ``field_name`` entries of every matching series, combined by
        ``reducer`` (default sum; 0.0 for windows without the series)."""
        out: List[float] = []
        for window in self.windows:
            values = [float(row.get(field_name, 0.0) or 0.0)
                      for row in window.matching(name, labels)]
            out.append(float(reducer(values)) if values else 0.0)
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<MetricsSampler window={self.window} "
                f"windows={len(self.windows)} dropped={self.dropped}>")


def sparkline(values: Sequence[float], width: int = 0) -> str:
    """ASCII sparkline of ``values`` scaled to the observed maximum.

    Zero (and missing) values render as spaces so gaps are visible;
    ``width`` > 0 keeps only the most recent ``width`` values.
    """
    vals = [max(0.0, float(v)) for v in values]
    if width > 0:
        vals = vals[-width:]
    if not vals:
        return ""
    top = max(vals)
    if top <= 0:
        return " " * len(vals)
    out = []
    levels = len(SPARK_LEVELS) - 1
    for v in vals:
        idx = 0 if v <= 0 else max(1, int(round(levels * v / top)))
        out.append(SPARK_LEVELS[idx])
    return "".join(out)


def windows_to_jsonl(windows: Sequence[Window]) -> str:
    """One JSON object per window per line, byte-stable (sorted keys)."""
    lines = [json.dumps(w.to_dict(), sort_keys=True,
                        separators=(",", ":"), allow_nan=False)
             for w in windows]
    return "\n".join(lines) + ("\n" if lines else "")
