"""The unified SLO health report.

Joins everything the observability stack knows about one seeded run
into a single renderable/exportable document:

* the windowed metric history a
  :class:`~repro.obs.timeseries.MetricsSampler` captured;
* per-objective :class:`~repro.obs.slo.SLOResult` verdicts — error
  budgets, burn-rate alerts, SLO minutes lost;
* exemplar trace IDs from breached windows (the histogram exemplar
  hook), so a blown budget links straight to the causal timelines that
  blew it;
* the top critical-path steps across traces
  (:func:`~repro.obs.trace_export.aggregate_step_latencies` plus a
  dominant-step tally), so the report names *which protocol step* to
  attack first.

The JSON export sorts keys and contains only virtual-clock values, so
two identical seeded runs produce byte-identical reports — the property
the ``slo-smoke`` CI job pins.  ``legion-sim slo`` renders either form.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from .slo import SLOResult, SLOSpec, evaluate_slos
from .timeseries import MetricsSampler, sparkline

__all__ = [
    "build_health_report",
    "health_report_to_json",
    "render_health_report",
]

#: how many step rows the critical-step section keeps
TOP_STEPS = 8


def _dominant_tally(spans: Sequence[Any]) -> List[Dict[str, Any]]:
    """How often each step dominated a trace's critical path."""
    from .trace_export import trace_summary
    tally: Dict[str, int] = {}
    for row in trace_summary(spans):
        name = row["dominant_step"]
        if name:
            tally[name] = tally.get(name, 0) + 1
    return [{"step": name, "traces_dominated": count}
            for name, count in sorted(tally.items(),
                                      key=lambda kv: (-kv[1], kv[0]))]


def build_health_report(sampler: MetricsSampler,
                        specs: Sequence[SLOSpec],
                        spans: Optional[Sequence[Any]] = None,
                        results: Optional[Sequence[SLOResult]] = None,
                        title: str = "slo health",
                        include_windows: bool = True) -> Dict[str, Any]:
    """Evaluate ``specs`` over the sampler's history and join the rest.

    Pass ``results`` to reuse an evaluation already computed; ``spans``
    (a SpanTracer's span list) feeds the critical-step section and is
    optional.  The returned dict is JSON-safe and deterministic.
    """
    if results is None:
        results = evaluate_slos(specs, sampler.windows)
    windows = sampler.windows
    report: Dict[str, Any] = {
        "title": title,
        "sampler": {
            "window_seconds": sampler.window,
            "windows": len(windows),
            "dropped_windows": sampler.dropped,
            "start": windows[0].start if windows else 0.0,
            "end": windows[-1].end if windows else 0.0,
        },
        "slos": [r.to_dict(include_windows=include_windows)
                 for r in results],
        "healthy": all(not r.exhausted for r in results),
        "alerts": sorted(
            (a.to_dict() for r in results for a in r.alerts),
            key=lambda a: (a["fired_at"], a["slo"], a["severity"])),
        "minutes_lost": round(sum(r.minutes_lost for r in results), 6),
        "breached_exemplars": sorted(
            {t for r in results for t in r.breached_exemplars()}),
    }
    if spans is not None:
        from .trace_export import aggregate_step_latencies
        steps = aggregate_step_latencies(spans)
        steps.sort(key=lambda r: (-r["self"], r["step"]))
        report["critical_steps"] = [
            {"step": r["step"], "count": r["count"],
             "errors": r["errors"],
             "mean_s": round(r["mean"], 6),
             "p95_s": round(r["p"], 6),
             "max_s": round(r["max"], 6),
             "self_s": round(r["self"], 6)}
            for r in steps[:TOP_STEPS]]
        report["dominant_steps"] = _dominant_tally(spans)
    return report


def health_report_to_json(report: Dict[str, Any],
                          indent: Optional[int] = 2) -> str:
    """Byte-stable JSON (sorted keys, no NaN)."""
    return json.dumps(report, sort_keys=True, indent=indent,
                      separators=(",", ": ") if indent else (",", ":"),
                      allow_nan=False)


def _budget_bar(remaining: float, width: int = 20) -> str:
    """[#####-----] budget meter, clamped to [0, 1]."""
    filled = int(round(max(0.0, min(1.0, remaining)) * width))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def render_health_report(report: Dict[str, Any]) -> str:
    """The terminal rendering ``legion-sim slo`` prints by default."""
    sampler = report["sampler"]
    lines = [
        f"== {report['title']} ==",
        f"windows: {sampler['windows']} x "
        f"{sampler['window_seconds']:g}s "
        f"(virtual t={sampler['start']:g}s..{sampler['end']:g}s, "
        f"{sampler['dropped_windows']} dropped)",
        "",
    ]
    for slo in report["slos"]:
        spec = slo["spec"]
        budget = slo["budget"]
        events = slo["events"]
        verdict = "EXHAUSTED" if budget["exhausted"] else "ok"
        lines.append(
            f"slo {spec['name']:<22s} target {spec['target']:.3f}  "
            f"compliance {slo['compliance']:.4f}  "
            f"budget {_budget_bar(budget['remaining'])} "
            f"{100.0 * max(0.0, budget['remaining']):5.1f}%  {verdict}")
        lines.append(
            f"    events good/bad/total "
            f"{events['good']:g}/{events['bad']:g}/{events['total']:g}"
            f"  minutes lost {slo['minutes_lost']:g}"
            f"  breached windows {slo['breached_windows']}"
            f"  alerts {len(slo['alerts'])}")
        if "windows" in slo:
            burns = [v["burn_rate"] for v in slo["windows"]]
            lines.append(f"    burn {sparkline(burns, width=60)}")
        if slo["breached_exemplars"]:
            shown = slo["breached_exemplars"][:6]
            more = len(slo["breached_exemplars"]) - len(shown)
            lines.append(
                "    exemplar traces " + " ".join(shown)
                + (f" (+{more} more)" if more > 0 else ""))
    if report["alerts"]:
        lines.append("")
        lines.append("burn-rate alerts:")
        for alert in report["alerts"]:
            lines.append(
                f"  t={alert['fired_at']:>9.1f}s  {alert['severity']:<5s}"
                f" {alert['slo']:<22s} burn {alert['burn_rate']:.2f}"
                f" (window {alert['window_index']})")
    if report.get("critical_steps"):
        lines.append("")
        lines.append("top critical-path steps (by total self time):")
        lines.append(f"  {'step':26s} {'count':>6s} {'mean_s':>10s} "
                     f"{'p95_s':>10s} {'self_s':>10s}")
        for row in report["critical_steps"]:
            lines.append(
                f"  {row['step']:26s} {row['count']:>6d} "
                f"{row['mean_s']:>10.6f} {row['p95_s']:>10.6f} "
                f"{row['self_s']:>10.6f}")
    if report.get("dominant_steps"):
        lines.append("dominant step overall: " + ", ".join(
            f"{row['step']} x{row['traces_dominated']}"
            for row in report["dominant_steps"][:5]))
    lines.append("")
    lines.append("overall: " + ("HEALTHY" if report["healthy"]
                                else "BUDGET EXHAUSTED")
                 + f" ({report['minutes_lost']:g} SLO minutes lost)")
    return "\n".join(lines)
